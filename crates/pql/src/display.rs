//! Pretty-printing of PQL programs.
//!
//! `Display` output is valid PQL: `parse(program.to_string())` round-trips
//! to the same AST (property-tested). Useful for debugging compiled
//! queries and for emitting canned queries to files.

use crate::ast::{Atom, Head, HeadArg, Literal, Program, Rule, Term};
use crate::eval::value::Value;
use std::fmt;

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lit}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match arg {
                HeadArg::Plain(t) => write!(f, "{t}")?,
                HeadArg::Agg(func, t) => {
                    let name = match func {
                        crate::ast::AggFunc::Count => "count",
                        crate::ast::AggFunc::Sum => "sum",
                        crate::ast::AggFunc::Min => "min",
                        crate::ast::AggFunc::Max => "max",
                        crate::ast::AggFunc::Avg => "avg",
                    };
                    write!(f, "{name}({t})")?;
                }
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Positive(a) => write!(f, "{a}"),
            Literal::Negated(a) => write!(f, "!{a}"),
            Literal::Compare(l, op, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write_const(f, c),
            Term::Param(p) => write!(f, "${p}"),
            Term::Arith(l, op, r) => {
                // Parenthesize nested arithmetic for unambiguous re-parse.
                write_operand(f, l)?;
                write!(f, " {op} ")?;
                write_operand(f, r)
            }
        }
    }
}

fn write_operand(f: &mut fmt::Formatter<'_>, t: &Term) -> fmt::Result {
    match t {
        Term::Arith(_, _, _) => write!(f, "({t})"),
        other => write!(f, "{other}"),
    }
}

fn write_const(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        // Vertex-id constants have no literal syntax; they re-parse as
        // integers, which compare equal to ids (coerced at id columns).
        Value::Id(n) => write!(f, "{n}"),
        Value::Int(n) => write!(f, "{n}"),
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() {
                write!(f, "{x:.1}")
            } else {
                write!(f, "{x}")
            }
        }
        Value::Bool(b) => write!(f, "{b}"),
        Value::Str(s) => write!(f, "{s:?}"),
        other => write!(f, "{other}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;
    use proptest::prelude::*;

    #[test]
    fn renders_canonical_forms() {
        let p = parse(
            "change(x, i) :- evolution(x, j, i), value(x, d1, i), udf_diff(d1, d1, $eps), i > 0.",
        )
        .unwrap();
        let s = p.to_string();
        assert!(s.contains("change(x, i) :- evolution(x, j, i)"));
        assert!(s.contains("$eps"));
        assert!(s.contains("i > 0."));
    }

    #[test]
    fn roundtrips_paper_queries() {
        for src in [
            "in_degree(x, count(y)) :- in_edge(x, y).",
            "p(x, s / d) :- q(x, s), r(x, d).",
            "a(x) :- b(x, y), !c(y), y != 0.",
            "f(x, v, i) :- receive_message(x, y, m, i), f(y, w, j), value(x, v, i).",
            "t(x, i) :- superstep(x, i), i = 3 - 1 + 2.",
        ] {
            let p1 = parse(src).unwrap();
            let p2 = parse(&p1.to_string()).unwrap();
            // Line numbers may shift; compare everything else.
            for (r1, r2) in p1.rules.iter().zip(&p2.rules) {
                assert_eq!(r1.head, r2.head, "head mismatch for {src}");
                assert_eq!(r1.body, r2.body, "body mismatch for {src}");
            }
        }
    }

    proptest! {
        /// Any program that parses re-parses identically from its
        /// pretty-printed form (modulo line numbers).
        #[test]
        fn display_parse_roundtrip(
            preds in proptest::collection::vec("[a-z][a-z0-9_]{0,6}", 1..4),
            vars in proptest::collection::vec("[a-z]", 1..3),
        ) {
            // Assemble a small program from the generated names.
            let head_var = &vars[0];
            let mut src = String::new();
            for (i, p) in preds.iter().enumerate() {
                src.push_str(&format!(
                    "{p}({head_var}, {i}) :- superstep({head_var}, i), i >= {i}.\n"
                ));
            }
            let Ok(p1) = parse(&src) else { return Ok(()); };
            let p2 = parse(&p1.to_string()).unwrap();
            for (r1, r2) in p1.rules.iter().zip(&p2.rules) {
                prop_assert_eq!(&r1.head, &r2.head);
                prop_assert_eq!(&r1.body, &r2.body);
            }
        }
    }
}
