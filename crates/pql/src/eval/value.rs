//! The dynamic value type flowing through PQL relations.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A PQL value: vertex ids, numbers, booleans, strings and small vectors
/// (ALS feature vectors travel through provenance as `List`s).
///
/// `Value` implements total `Ord`/`Eq`/`Hash` (floats via
/// [`f64::total_cmp`] / bit patterns) so relations can be deterministic
/// ordered sets.
#[derive(Clone, Debug)]
pub enum Value {
    /// A vertex id (kept distinct from `Int` so ids never mix with
    /// supersteps or data in comparisons).
    Id(u64),
    /// Integer data (supersteps, counts, labels).
    Int(i64),
    /// Floating-point data (ranks, distances, errors).
    Float(f64),
    /// Booleans.
    Bool(bool),
    /// Interned strings.
    Str(Arc<str>),
    /// Vectors (e.g. ALS feature vectors).
    List(Arc<Vec<Value>>),
    /// The unit value used when an analytic's messages carry no payload.
    Unit,
}

impl Value {
    /// String constructor.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// List constructor from f64s (the common ALS case).
    pub fn floats(v: &[f64]) -> Value {
        Value::List(Arc::new(v.iter().map(|&x| Value::Float(x)).collect()))
    }

    /// Numeric view as f64 (Int and Float only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (Int only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Vertex-id view (Id only).
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Id(v) => Some(*v),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view for *comparisons*: unlike [`Value::as_f64`], vertex
    /// ids participate, so `x = 0` in query text matches vertex 0.
    fn cmp_f64(&self) -> Option<f64> {
        match self {
            Value::Id(v) => Some(*v as f64),
            _ => self.as_f64(),
        }
    }

    /// Whether two values are numerically equal (Int 1 equals Float 1.0,
    /// and a vertex-id constant written as an integer matches the id).
    pub fn num_eq(&self, other: &Value) -> bool {
        match (self.cmp_f64(), other.cmp_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }

    /// Numeric comparison with Int/Float/Id promotion; `None` when either
    /// side is non-numeric and the values are not identically typed.
    pub fn num_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self.cmp_f64(), other.cmp_f64()) {
            (Some(a), Some(b)) => Some(a.total_cmp(&b)),
            _ => {
                if std::mem::discriminant(self) == std::mem::discriminant(other) {
                    Some(self.cmp(other))
                } else {
                    None
                }
            }
        }
    }

    /// Approximate heap + inline footprint in bytes, for the provenance
    /// size accounting of Tables 3 and 4.
    pub fn byte_size(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => inline + s.len(),
            Value::List(v) => inline + v.iter().map(Value::byte_size).sum::<usize>(),
            _ => inline,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Id(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Bool(_) => 3,
            Value::Str(_) => 4,
            Value::List(_) => 5,
            Value::Unit => 6,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Id(a), Id(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Unit, Unit) => Ordering::Equal,
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Id(v) => v.hash(state),
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Bool(v) => v.hash(state),
            Value::Str(v) => v.hash(state),
            Value::List(v) => v.hash(state),
            Value::Unit => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Id(v) => write!(f, "v{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Unit => write!(f, "()"),
        }
    }
}

/// Arithmetic on values with Int/Float promotion. Division always
/// produces a Float (the paper's `avg_error` divides a sum by a count).
pub fn arith(op: crate::ast::ArithOp, a: &Value, b: &Value) -> Option<Value> {
    use crate::ast::ArithOp::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(match op {
            Add => Value::Int(x + y),
            Sub => Value::Int(x - y),
            Mul => Value::Int(x * y),
            Div => Value::Float(*x as f64 / *y as f64),
        }),
        _ => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            Some(Value::Float(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ArithOp;

    #[test]
    fn ordering_is_total() {
        let mut vals = [Value::Float(2.0),
            Value::Id(1),
            Value::Int(3),
            Value::Bool(true),
            Value::str("a"),
            Value::Unit,
            Value::Float(f64::NAN)];
        vals.sort(); // must not panic
        assert_eq!(vals[0], Value::Id(1));
    }

    #[test]
    fn float_nan_is_hashable_and_equal_to_itself() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Float(f64::NAN));
        assert!(!s.insert(Value::Float(f64::NAN)));
    }

    #[test]
    fn id_and_int_are_distinct_for_storage_but_compare_numerically() {
        // Strict equality (joins, dedup) keeps them apart...
        assert_ne!(Value::Id(3), Value::Int(3));
        // ...but comparisons written in query text promote.
        assert!(Value::Id(3).num_eq(&Value::Int(3)));
        assert_eq!(
            Value::Id(1).num_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn numeric_promotion() {
        assert!(Value::Int(1).num_eq(&Value::Float(1.0)));
        assert_eq!(
            Value::Int(1).num_cmp(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("a").num_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            arith(ArithOp::Sub, &Value::Int(5), &Value::Int(2)),
            Some(Value::Int(3))
        );
        assert_eq!(
            arith(ArithOp::Add, &Value::Float(1.5), &Value::Int(1)),
            Some(Value::Float(2.5))
        );
        assert_eq!(
            arith(ArithOp::Div, &Value::Int(1), &Value::Int(2)),
            Some(Value::Float(0.5))
        );
        assert_eq!(arith(ArithOp::Add, &Value::Bool(true), &Value::Int(1)), None);
    }

    #[test]
    fn byte_sizes() {
        assert!(Value::Int(1).byte_size() > 0);
        assert!(Value::str("hello").byte_size() > Value::Int(1).byte_size());
        assert!(Value::floats(&[1.0, 2.0]).byte_size() > Value::Float(1.0).byte_size());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Id(4).to_string(), "v4");
        assert_eq!(Value::floats(&[1.0]).to_string(), "[1]");
        assert_eq!(Value::Unit.to_string(), "()");
    }
}
