//! Rule-body evaluation: enumerate the satisfying valuations of an
//! analyzed rule over a database.
//!
//! The step list produced by analysis is executed left to right with a
//! backtracking environment. `Scan` steps join (using relation indexes on
//! the already-bound argument positions); `Assign` binds; `Filter`,
//! `Udf` and `Neg` check. Semi-naive evaluation passes a *pivot*: the
//! index of one `Scan` step restricted to the delta window of its
//! relation.

use crate::analysis::{AnalyzedRule, Step};
use crate::ast::{CmpOp, Term};
use crate::error::PqlError;
use crate::eval::database::Database;
use crate::eval::udf::UdfRegistry;
use crate::eval::value::{arith, Value};
use std::collections::BTreeMap;
use std::ops::Range;

/// Variable bindings during rule evaluation. Keys borrow from the
/// analyzed rule (and the caller's seed), so binding a variable never
/// allocates.
pub type Env<'r> = BTreeMap<&'r str, Value>;

/// Evaluate a term under an environment. Returns `None` only for unbound
/// variables, which analysis has ruled out on well-ordered step lists.
pub fn eval_term(term: &Term, env: &Env<'_>) -> Option<Value> {
    match term {
        Term::Var(v) => env.get(v.as_str()).cloned(),
        Term::Const(c) => Some(c.clone()),
        Term::Param(_) => None, // substituted away during analysis
        Term::Arith(l, op, r) => {
            let (a, b) = (eval_term(l, env)?, eval_term(r, env)?);
            arith(*op, &a, &b)
        }
    }
}

/// Check a comparison between two bound terms. Numeric comparisons
/// promote Int/Float; incomparable values make ordering comparisons
/// false and `!=` true.
pub fn eval_compare(lhs: &Value, op: CmpOp, rhs: &Value) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => lhs.num_eq(rhs),
        CmpOp::Ne => !lhs.num_eq(rhs),
        _ => match lhs.num_cmp(rhs) {
            None => false,
            Some(ord) => matches!(
                (op, ord),
                (CmpOp::Lt, Less)
                    | (CmpOp::Le, Less)
                    | (CmpOp::Le, Equal)
                    | (CmpOp::Gt, Greater)
                    | (CmpOp::Ge, Greater)
                    | (CmpOp::Ge, Equal)
            ),
        },
    }
}

/// Restriction of one `Scan` step to a tuple-index window (semi-naive
/// delta evaluation).
#[derive(Clone, Debug)]
pub struct Pivot {
    /// Index into the rule's step list (must be a `Scan`).
    pub step: usize,
    /// Window of tuple indices to draw from.
    pub window: Range<usize>,
}

/// Enumerate satisfying valuations of `rule` over `db`, invoking `emit`
/// for each. `seed` pre-binds variables (the per-vertex evaluators bind
/// the head location to the evaluating vertex). `pivot` optionally
/// restricts one scan to a delta window.
pub fn for_each_valuation<'r>(
    rule: &'r AnalyzedRule,
    db: &Database,
    udfs: &UdfRegistry,
    seed: &Env<'r>,
    pivot: Option<&Pivot>,
    emit: &mut dyn FnMut(&Env<'r>),
) -> Result<(), PqlError> {
    for_each_valuation_steps(rule, &rule.steps, db, udfs, seed, pivot, emit)
}

/// Like [`for_each_valuation`] but over an explicit step list — used by
/// the semi-naive evaluator to run a rule's reordered
/// [`crate::analysis::PivotVariant`]s.
pub fn for_each_valuation_steps<'r>(
    rule: &'r AnalyzedRule,
    steps: &'r [Step],
    db: &Database,
    udfs: &UdfRegistry,
    seed: &Env<'r>,
    pivot: Option<&Pivot>,
    emit: &mut dyn FnMut(&Env<'r>),
) -> Result<(), PqlError> {
    let mut stats = ScanStats::default();
    for_each_valuation_steps_stats(rule, steps, db, udfs, seed, pivot, emit, &mut stats)
}

/// Scan-scratch efficiency counters for one rule invocation.
///
/// Purely a function of the join structure and the data — deterministic
/// across thread counts — because the pool is private to the invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Buffer requests served from the recycled pool.
    pub reuse: u64,
    /// Buffer requests that had to allocate a fresh `Vec`.
    pub alloc: u64,
}

impl ScanStats {
    /// Accumulate another invocation's counters.
    pub fn merge(&mut self, other: ScanStats) {
        self.reuse += other.reuse;
        self.alloc += other.alloc;
    }
}

/// Like [`for_each_valuation_steps`], additionally accumulating the
/// invocation's [`ScanStats`] into `stats`.
#[allow(clippy::too_many_arguments)]
pub fn for_each_valuation_steps_stats<'r>(
    rule: &'r AnalyzedRule,
    steps: &'r [Step],
    db: &Database,
    udfs: &UdfRegistry,
    seed: &Env<'r>,
    pivot: Option<&Pivot>,
    emit: &mut dyn FnMut(&Env<'r>),
    stats: &mut ScanStats,
) -> Result<(), PqlError> {
    let mut env = seed.clone();
    let mut scratch = ScanScratch::default();
    let result = descend(rule, steps, db, udfs, 0, &mut env, pivot, &mut scratch, emit);
    stats.merge(scratch.stats);
    result
}

/// Reusable scan buffers threaded through [`descend`].
///
/// Scans are the inner loop of semi-naive join evaluation: every probe
/// used to clone the relation's posting list and allocate fresh
/// column/key/binding vectors. These buffers amortize all of that to one
/// allocation per recursion depth per rule invocation. `cols`/`key` are
/// only live while probing (dead before the recursive call), so a single
/// pair serves every depth; the per-depth buffers round-trip through
/// `pools`, a stack of recycled `Vec`s.
#[derive(Default)]
struct ScanScratch {
    /// Bound column positions of the scan currently probing.
    cols: Vec<usize>,
    /// Key values aligned with `cols`.
    key: Vec<Value>,
    /// Recycled index buffers (candidate postings, free/added argument
    /// positions). Each recursion depth pops what it needs and pushes it
    /// back before returning.
    pools: Vec<Vec<usize>>,
    /// Pool hit/miss counters reported through [`ScanStats`].
    stats: ScanStats,
}

impl ScanScratch {
    fn take(&mut self) -> Vec<usize> {
        match self.pools.pop() {
            Some(mut v) => {
                self.stats.reuse += 1;
                v.clear();
                v
            }
            None => {
                self.stats.alloc += 1;
                Vec::new()
            }
        }
    }

    fn put(&mut self, v: Vec<usize>) {
        self.pools.push(v);
    }
}

/// The variable name at argument position `pos` (positions in the free
/// list always hold `Term::Var`s by construction).
fn var_at(args: &[Term], pos: usize) -> &str {
    match &args[pos] {
        Term::Var(v) => v.as_str(),
        other => unreachable!("free scan position {pos} holds non-variable {other:?}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn descend<'r>(
    rule: &'r AnalyzedRule,
    steps: &'r [Step],
    db: &Database,
    udfs: &UdfRegistry,
    at: usize,
    env: &mut Env<'r>,
    pivot: Option<&Pivot>,
    scratch: &mut ScanScratch,
    emit: &mut dyn FnMut(&Env<'r>),
) -> Result<(), PqlError> {
    let Some(step) = steps.get(at) else {
        emit(env);
        return Ok(());
    };
    match step {
        Step::Scan {
            pred,
            args,
            exists_only,
        } => {
            let Some(rel) = db.relation(pred) else {
                return Ok(()); // empty relation: no valuations
            };
            // Partition argument positions into bound (filter) and free,
            // into the shared scratch buffers (live only until the probe).
            let mut cols = std::mem::take(&mut scratch.cols);
            let mut key = std::mem::take(&mut scratch.key);
            cols.clear();
            key.clear();
            let mut free = scratch.take();
            for (pos, t) in args.iter().enumerate() {
                match t {
                    Term::Var(v) => match env.get(v.as_str()) {
                        Some(val) => {
                            cols.push(pos);
                            key.push(val.clone());
                        }
                        None => free.push(pos),
                    },
                    Term::Const(c) => {
                        cols.push(pos);
                        key.push(c.clone());
                    }
                    other => {
                        scratch.put(free);
                        scratch.cols = cols;
                        scratch.key = key;
                        return Err(PqlError::analysis(
                            rule.line,
                            format!("unexpected term {other:?} in scan of {pred:?}"),
                        ));
                    }
                }
            }
            let window = pivot.and_then(|p| (p.step == at).then(|| p.window.clone()));
            // Existence-only scans (all free vars anonymous): one witness
            // suffices, and nothing needs binding or materializing.
            if *exists_only {
                let witnessed = if cols.is_empty() {
                    match &window {
                        Some(w) => w.start < rel.len(),
                        None => !rel.is_empty(),
                    }
                } else {
                    rel.matches_any(&cols, &key, |idx| {
                        window.as_ref().map(|w| w.contains(&idx)).unwrap_or(true)
                    })
                };
                scratch.put(free);
                key.clear();
                scratch.cols = cols;
                scratch.key = key;
                if witnessed {
                    return descend(rule, steps, db, udfs, at + 1, env, pivot, scratch, emit);
                }
                return Ok(());
            }
            // Materialize candidates into a recycled buffer; the index
            // borrow is dropped before descending, so self-joins re-enter
            // the relation safely.
            let mut candidates = scratch.take();
            if cols.is_empty() {
                candidates.extend(0..rel.len());
            } else {
                rel.select_into(&cols, &key, &mut candidates);
            }
            // Release the probe buffers for deeper scans before recursing.
            key.clear();
            scratch.cols = cols;
            scratch.key = key;
            let mut added = scratch.take();
            let mut result = Ok(());
            for &idx in &candidates {
                if let Some(w) = &window {
                    if !w.contains(&idx) {
                        continue;
                    }
                }
                let tuple = rel.get(idx);
                // Bind free positions; repeated free variables must agree.
                added.clear();
                let mut ok = true;
                for &pos in &free {
                    let var = var_at(args, pos);
                    match env.get(var) {
                        Some(existing) => {
                            if *existing != tuple[pos] {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            env.insert(var, tuple[pos].clone());
                            added.push(pos);
                        }
                    }
                }
                if ok {
                    if let Err(e) =
                        descend(rule, steps, db, udfs, at + 1, env, pivot, scratch, emit)
                    {
                        result = Err(e);
                    }
                }
                for &pos in &added {
                    env.remove(var_at(args, pos));
                }
                if result.is_err() {
                    break;
                }
            }
            scratch.put(added);
            scratch.put(candidates);
            scratch.put(free);
            result
        }
        Step::Neg { pred, args } => {
            let tuple: Option<Vec<Value>> = args.iter().map(|t| eval_term(t, env)).collect();
            let Some(tuple) = tuple else {
                return Err(PqlError::analysis(
                    rule.line,
                    format!("negation over {pred:?} with unbound variables"),
                ));
            };
            let present = db.relation(pred).is_some_and(|r| r.contains(&tuple));
            if present {
                Ok(())
            } else {
                descend(rule, steps, db, udfs, at + 1, env, pivot, scratch, emit)
            }
        }
        Step::Assign { var, term } => {
            let Some(value) = eval_term(term, env) else {
                return Ok(()); // non-numeric arithmetic: no valuation
            };
            match env.get(var.as_str()) {
                Some(existing) => {
                    if existing.num_eq(&value) {
                        descend(rule, steps, db, udfs, at + 1, env, pivot, scratch, emit)
                    } else {
                        Ok(())
                    }
                }
                None => {
                    env.insert(var.as_str(), value);
                    let r = descend(rule, steps, db, udfs, at + 1, env, pivot, scratch, emit);
                    env.remove(var.as_str());
                    r
                }
            }
        }
        Step::Filter { lhs, op, rhs } => {
            let (Some(a), Some(b)) = (eval_term(lhs, env), eval_term(rhs, env)) else {
                return Ok(());
            };
            if eval_compare(&a, *op, &b) {
                descend(rule, steps, db, udfs, at + 1, env, pivot, scratch, emit)
            } else {
                Ok(())
            }
        }
        Step::Udf { name, args } => {
            let Some(f) = udfs.get(name) else {
                return Err(PqlError::analysis(
                    rule.line,
                    format!("unknown predicate or UDF {name:?}"),
                ));
            };
            let vals: Option<Vec<Value>> = args.iter().map(|t| eval_term(t, env)).collect();
            let Some(vals) = vals else {
                return Ok(());
            };
            if f(&vals) {
                descend(rule, steps, db, udfs, at + 1, env, pivot, scratch, emit)
            } else {
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, parse, Catalog, Params};

    fn rule(src: &str) -> crate::AnalyzedQuery {
        analyze(&parse(src).unwrap(), &Catalog::standard(), &Params::new()).unwrap()
    }

    fn db_with_edges(edges: &[(u64, u64)]) -> Database {
        let mut db = Database::new();
        for &(a, b) in edges {
            db.insert("edge", vec![Value::Id(a), Value::Id(b)]);
        }
        db
    }

    fn collect(q: &crate::AnalyzedQuery, db: &Database) -> Vec<BTreeMap<String, Value>> {
        let mut out = Vec::new();
        for_each_valuation(
            &q.rules[0],
            db,
            &UdfRegistry::standard(),
            &Env::new(),
            None,
            &mut |env| out.push(env.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()),
        )
        .unwrap();
        out
    }

    #[test]
    fn joins_bind_variables() {
        let q = rule("two_hop(x, z) :- edge(x, y), edge(y, z).");
        let db = db_with_edges(&[(1, 2), (2, 3), (2, 4)]);
        let vals = collect(&q, &db);
        assert_eq!(vals.len(), 2);
        let zs: Vec<u64> = vals.iter().map(|e| e["z"].as_id().unwrap()).collect();
        assert_eq!(zs, vec![3, 4]);
    }

    #[test]
    fn repeated_variables_unify() {
        let q = rule("selfloop(x, x2) :- edge(x, x2), edge(x2, x2).");
        let mut db = db_with_edges(&[(1, 2), (2, 2)]);
        db.insert("edge", vec![Value::Id(3), Value::Id(3)]);
        let vals = collect(&q, &db);
        // x->x2 with x2->x2: (1,2) ok (2 loops), (2,2) ok, (3,3) ok.
        assert_eq!(vals.len(), 3);
    }

    #[test]
    fn filters_and_assignments() {
        let q = rule("p(x, j) :- edge(x, y), j = 10 + 1, y = x.");
        let mut db = Database::new();
        db.insert("edge", vec![Value::Id(5), Value::Id(5)]);
        db.insert("edge", vec![Value::Id(5), Value::Id(6)]);
        let vals = collect(&q, &db);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0]["j"], Value::Int(11));
    }

    #[test]
    fn negation_filters() {
        let q = rule("dead_end(x, y) :- edge(x, y), !edge(y, x).");
        let db = db_with_edges(&[(1, 2), (2, 1), (2, 3)]);
        let vals = collect(&q, &db);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0]["y"].as_id(), Some(3));
    }

    #[test]
    fn udf_calls() {
        let q = rule("close(x, y) :- value(x, d1, i), value(y, d2, i), udf_diff(d1, d2, 0.5), x != y.");
        let mut db = Database::new();
        db.insert("value", vec![Value::Id(1), Value::Float(1.0), Value::Int(0)]);
        db.insert("value", vec![Value::Id(2), Value::Float(1.2), Value::Int(0)]);
        db.insert("value", vec![Value::Id(3), Value::Float(9.0), Value::Int(0)]);
        let vals = collect(&q, &db);
        // (1,2) and (2,1) are close; 3 is far from both.
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn unknown_udf_is_an_error() {
        let q = rule("p(x) :- edge(x, y), no_such_udf(y).");
        let db = db_with_edges(&[(1, 2)]);
        let err = for_each_valuation(
            &q.rules[0],
            &db,
            &UdfRegistry::standard(),
            &Env::new(),
            None,
            &mut |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("no_such_udf"));
    }

    #[test]
    fn seed_restricts_location() {
        let q = rule("out(x, y) :- edge(x, y).");
        let db = db_with_edges(&[(1, 2), (3, 4)]);
        let mut seed = Env::new();
        seed.insert("x", Value::Id(3));
        let mut out = Vec::new();
        for_each_valuation(
            &q.rules[0],
            &db,
            &UdfRegistry::standard(),
            &seed,
            None,
            &mut |env| out.push(env["y"].clone()),
        )
        .unwrap();
        assert_eq!(out, vec![Value::Id(4)]);
    }

    #[test]
    fn pivot_restricts_scan() {
        let q = rule("out(x, y) :- edge(x, y).");
        let db = db_with_edges(&[(1, 2), (3, 4), (5, 6)]);
        let mut out = Vec::new();
        for_each_valuation(
            &q.rules[0],
            &db,
            &UdfRegistry::standard(),
            &Env::new(),
            Some(&Pivot { step: 0, window: 1..2 }),
            &mut |env| out.push(env["x"].clone()),
        )
        .unwrap();
        assert_eq!(out, vec![Value::Id(3)]);
    }

    #[test]
    fn compare_semantics() {
        assert!(eval_compare(&Value::Int(1), CmpOp::Lt, &Value::Float(1.5)));
        assert!(eval_compare(&Value::Int(2), CmpOp::Ge, &Value::Int(2)));
        assert!(eval_compare(&Value::Id(1), CmpOp::Eq, &Value::Int(1)));
        assert!(eval_compare(&Value::Id(1), CmpOp::Lt, &Value::Int(2)));
        assert!(eval_compare(&Value::str("a"), CmpOp::Lt, &Value::str("b")));
        assert!(eval_compare(&Value::str("a"), CmpOp::Ne, &Value::Int(1)));
    }
}
