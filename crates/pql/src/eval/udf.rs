//! Boolean user-defined functions callable from PQL rule bodies.
//!
//! The paper parameterizes the apt query "by a vertex value comparison
//! function such as the difference or euclidean distance" (§2.2); these
//! are the built-ins here. Additional UDFs can be registered by name.

use crate::eval::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A boolean UDF over evaluated argument values.
pub type Udf = Arc<dyn Fn(&[Value]) -> bool + Send + Sync>;

/// A registry of named boolean UDFs.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    funcs: HashMap<String, Udf>,
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<_> = self.funcs.keys().collect();
        names.sort();
        f.debug_struct("UdfRegistry").field("funcs", &names).finish()
    }
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard registry with the paper's comparison functions:
    ///
    /// * `udf_diff(d1, d2, eps)` — true when `|d1 - d2| <= eps`
    ///   (a "small change"; the apt query's `change` rule);
    /// * `udf_diff_strict(d1, d2, eps)` — strict variant, `|d1 - d2| < eps`:
    ///   the right notion of "small change" for nominal integer values
    ///   like WCC component labels, where only a zero change is small;
    /// * `udf_big_diff(d1, d2, eps)` — the complement, `|d1 - d2| > eps`;
    /// * `udf_out_of_range(v, lo, hi)` — true when `v` falls outside
    ///   `[lo, hi]` (the ALS rating-range checks of Query 7);
    /// * `udf_euclidean(v1, v2, eps)` — true when the euclidean distance
    ///   of two feature vectors is at most `eps` (ALS).
    pub fn standard() -> Self {
        let mut r = Self::new();
        r.register("udf_diff", |args| {
            numeric3(args).map(|(a, b, e)| (a - b).abs() <= e).unwrap_or(false)
        });
        r.register("udf_diff_strict", |args| {
            numeric3(args).map(|(a, b, e)| (a - b).abs() < e).unwrap_or(false)
        });
        r.register("udf_big_diff", |args| {
            numeric3(args).map(|(a, b, e)| (a - b).abs() > e).unwrap_or(false)
        });
        r.register("udf_out_of_range", |args| {
            numeric3(args)
                .map(|(v, lo, hi)| v < lo || v > hi)
                .unwrap_or(false)
        });
        r.register("udf_euclidean", |args| {
            if args.len() != 3 {
                return false;
            }
            let (Some(a), Some(b), Some(e)) =
                (args[0].as_list(), args[1].as_list(), args[2].as_f64())
            else {
                return false;
            };
            if a.len() != b.len() {
                return false;
            }
            let d2: f64 = a
                .iter()
                .zip(b)
                .filter_map(|(x, y)| Some((x.as_f64()? - y.as_f64()?).powi(2)))
                .sum();
            d2.sqrt() <= e
        });
        r
    }

    /// Register a UDF under `name`.
    pub fn register(&mut self, name: &str, f: impl Fn(&[Value]) -> bool + Send + Sync + 'static) {
        self.funcs.insert(name.to_string(), Arc::new(f));
    }

    /// Look up a UDF.
    pub fn get(&self, name: &str) -> Option<&Udf> {
        self.funcs.get(name)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(name)
    }
}

fn numeric3(args: &[Value]) -> Option<(f64, f64, f64)> {
    if args.len() != 3 {
        return None;
    }
    Some((args[0].as_f64()?, args[1].as_f64()?, args[2].as_f64()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_udf() {
        let r = UdfRegistry::standard();
        let f = r.get("udf_diff").unwrap();
        assert!(f(&[Value::Float(1.0), Value::Float(1.005), Value::Float(0.01)]));
        assert!(!f(&[Value::Float(1.0), Value::Float(2.0), Value::Float(0.01)]));
        // Int/Float promotion.
        assert!(f(&[Value::Int(5), Value::Int(4), Value::Int(1)]));
        // Wrong arity or types → false, not panic.
        assert!(!f(&[Value::Float(1.0)]));
        assert!(!f(&[Value::str("a"), Value::Float(1.0), Value::Float(1.0)]));
    }

    #[test]
    fn strict_diff() {
        let r = UdfRegistry::standard();
        let f = r.get("udf_diff_strict").unwrap();
        assert!(f(&[Value::Int(5), Value::Int(5), Value::Int(1)]));
        assert!(!f(&[Value::Int(5), Value::Int(4), Value::Int(1)]));
    }

    #[test]
    fn big_diff_is_complement() {
        let r = UdfRegistry::standard();
        let small = r.get("udf_diff").unwrap();
        let big = r.get("udf_big_diff").unwrap();
        let args = [Value::Float(1.0), Value::Float(3.0), Value::Float(0.5)];
        assert!(!small(&args));
        assert!(big(&args));
    }

    #[test]
    fn euclidean_udf() {
        let r = UdfRegistry::standard();
        let f = r.get("udf_euclidean").unwrap();
        let a = Value::floats(&[0.0, 0.0]);
        let b = Value::floats(&[3.0, 4.0]);
        assert!(f(&[a.clone(), b.clone(), Value::Float(5.0)]));
        assert!(!f(&[a.clone(), b.clone(), Value::Float(4.9)]));
        // Length mismatch.
        assert!(!f(&[a, Value::floats(&[1.0]), Value::Float(10.0)]));
    }

    #[test]
    fn custom_registration() {
        let mut r = UdfRegistry::new();
        r.register("always", |_| true);
        assert!(r.contains("always"));
        assert!(r.get("always").unwrap()(&[]));
        assert!(!r.contains("udf_diff"));
    }
}
