//! Incremental view maintenance under EDB retractions — the
//! delete-and-rederive (DRed) pass that makes the evaluator *truly*
//! online.
//!
//! The semi-naive evaluator ([`crate::eval::seminaive`]) is append-only:
//! delta frontiers only ever advance, so a retracted EDB tuple would
//! leave *ghost* derived tuples behind (provenance justified by messages
//! that no longer exist). [`Evaluator::maintain`] closes that gap:
//!
//! 1. **Overdelete** — starting from the retracted EDB tuples, propagate
//!    deletions through every positive stratum: a rule firing whose body
//!    used a deleted tuple marks its head tuple deleted too, to fixpoint.
//!    This over-approximates (a head tuple with an alternative
//!    derivation is deleted anyway), which is what makes it safe.
//! 2. **Delete** — remove the overdeleted tuples (and the retracted EDB
//!    tuples themselves) from their relations.
//! 3. **Rederive** — re-run each stratum's fixpoint over the reduced
//!    database. Survivors are a subset of the new least fixpoint (every
//!    derivation that could have used a deleted tuple was removed in
//!    step 1), so seeding the monotone fixpoint from them converges to
//!    exactly the cold-evaluation result — no ghosts, no losses.
//!
//! Strata containing **negation or aggregation** are non-monotone — a
//! retraction can *add* derived tuples there — so DRed does not apply.
//! Those strata (and any stratum reading their heads) fall back to
//! clear-and-recompute: drop the stratum's head relations and re-run its
//! fixpoint on the maintained lower strata, which is exact by
//! stratification. [`MaintainReport::rebuilt_strata`] reports which
//! strata took that path; `docs/PQL.md` lists which standard EDB
//! predicates support retraction and why.
//!
//! Insert-only deltas skip all of the above and run one ordinary
//! semi-naive [`Evaluator::step`] — retraction is the only case that
//! costs more than the append path.
//!
//! Overdeletion bookkeeping lives in transient shadow relations named
//! `~del~<pred>` inside the database being maintained (the parser
//! rejects `~` in identifiers, so no user predicate can collide); they
//! are dropped before `maintain` returns.


#![warn(missing_docs)]
use crate::analysis::Step;
use crate::error::PqlError;
use crate::eval::binding::{for_each_valuation_steps_stats, Pivot, ScanStats};
use crate::eval::database::Database;
use crate::eval::relation::Tuple;
use crate::eval::seminaive::{head_tuple, seed_env, EvalState, EvalStats, Evaluator};
use crate::eval::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Shadow relation holding the (over)deleted tuples of `pred` during one
/// maintenance pass.
fn shadow_del(pred: &str) -> String {
    format!("~del~{pred}")
}

/// A batch of EDB changes to apply and propagate: tuple insertions and
/// tuple retractions. Only EDB predicates may appear — derived (IDB)
/// facts change exclusively through rules.
#[derive(Clone, Debug, Default)]
pub struct EdbDelta {
    additions: Vec<(String, Tuple)>,
    retractions: Vec<(String, Tuple)>,
}

impl EdbDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a tuple insertion. Inserting a tuple already present is a
    /// no-op at apply time (relations deduplicate).
    pub fn insert(&mut self, pred: &str, tuple: Tuple) -> &mut Self {
        self.additions.push((pred.to_string(), tuple));
        self
    }

    /// Queue a tuple retraction. Retracting an absent tuple is a no-op
    /// at apply time.
    pub fn retract(&mut self, pred: &str, tuple: Tuple) -> &mut Self {
        self.retractions.push((pred.to_string(), tuple));
        self
    }

    /// Whether the delta queues any change.
    pub fn is_empty(&self) -> bool {
        self.additions.is_empty() && self.retractions.is_empty()
    }

    /// Total queued operations.
    pub fn len(&self) -> usize {
        self.additions.len() + self.retractions.len()
    }

    /// Whether the delta retracts anything (the condition that routes
    /// maintenance through DRed instead of plain semi-naive).
    pub fn has_retractions(&self) -> bool {
        !self.retractions.is_empty()
    }
}

/// Which maintenance path a delta took.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MaintainMode {
    /// No retractions: ordinary semi-naive append.
    InsertOnly,
    /// Retractions present: overdelete, delete, rederive.
    Dred,
}

/// What one [`Evaluator::maintain`] call did.
#[derive(Clone, Debug)]
pub struct MaintainReport {
    /// Evaluation work counters (overdeletion rule firings included).
    pub stats: EvalStats,
    /// Which path the delta took.
    pub mode: MaintainMode,
    /// EDB tuples actually removed (queued retractions of absent tuples
    /// are dropped silently).
    pub retracted: u64,
    /// Derived tuples removed by overdeletion. An over-approximation by
    /// design: some are re-derived in the rederivation phase.
    pub overdeleted: u64,
    /// Strata that fell back to clear-and-recompute (negation,
    /// aggregation, or dependence on a rebuilt stratum).
    pub rebuilt_strata: Vec<usize>,
}

impl Default for MaintainReport {
    fn default() -> Self {
        MaintainReport {
            stats: EvalStats::default(),
            mode: MaintainMode::InsertOnly,
            retracted: 0,
            overdeleted: 0,
            rebuilt_strata: Vec::new(),
        }
    }
}

impl Evaluator {
    /// Apply an EDB delta and restore the database to exactly the state
    /// a cold [`Evaluator::run`] over the mutated EDB would produce.
    ///
    /// `state` is the same incremental state used by
    /// [`Evaluator::step`]; on the retraction path it is reset (tuple
    /// removal compacts relation indices, invalidating every frontier)
    /// and rebuilt by the rederivation pass, so callers can keep
    /// streaming appends through `step` afterwards.
    ///
    /// Errors if the delta names an IDB predicate: derived facts can
    /// only change through their rules.
    pub fn maintain(
        &self,
        db: &mut Database,
        state: &mut EvalState,
        loc: Option<&Value>,
        delta: &EdbDelta,
    ) -> Result<MaintainReport, PqlError> {
        let q = self.query();
        for (pred, _) in delta.additions.iter().chain(&delta.retractions) {
            if q.idbs.contains_key(pred) {
                return Err(PqlError::analysis(
                    0,
                    format!("cannot mutate IDB predicate '{pred}': derived facts change only through rules"),
                ));
            }
        }

        let mut report = MaintainReport::default();

        // Append-only fast path: plain semi-naive.
        if !delta.has_retractions() {
            for (pred, t) in &delta.additions {
                db.insert(pred, t.clone());
            }
            self.step_stats(db, state, loc, &mut report.stats)?;
            return Ok(report);
        }
        report.mode = MaintainMode::Dred;

        // Classify strata: DRed handles positive rules only. Negation and
        // aggregation are non-monotone under retraction, and a stratum
        // reading a rebuilt stratum's head has no tuple-level delta to
        // propagate — both rebuild.
        let mut rebuild = vec![false; q.strata.len()];
        let mut rebuilt_preds: BTreeSet<&str> = BTreeSet::new();
        for (si, stratum) in q.strata.iter().enumerate() {
            let mut rb = false;
            for &ri in stratum {
                let rule = &q.rules[ri];
                if rule.has_aggregate {
                    rb = true;
                }
                for step in &rule.steps {
                    match step {
                        Step::Neg { .. } => rb = true,
                        Step::Scan { pred, .. } if rebuilt_preds.contains(pred.as_str()) => {
                            rb = true
                        }
                        _ => {}
                    }
                }
            }
            if rb {
                rebuild[si] = true;
                for &ri in stratum {
                    rebuilt_preds.insert(q.rules[ri].pred.as_str());
                }
            }
        }

        // Seed the deleted sets with the retractions actually present.
        let mut shadow_preds: BTreeSet<String> = BTreeSet::new();
        for (pred, t) in &delta.retractions {
            if db.relation(pred).is_some_and(|r| r.contains(t)) {
                let shadow = shadow_del(pred);
                if db.relation_mut(&shadow, t.len()).insert(t.clone()) {
                    report.retracted += 1;
                }
                shadow_preds.insert(pred.clone());
            }
        }

        // Phase 1: overdeletion, stratum by stratum, against the *old*
        // database (nothing removed yet). Each round snapshots the shadow
        // lengths, pivots every scan over its unconsumed deleted window,
        // and marks derived heads deleted; new shadow tuples feed the
        // next round until quiescent.
        let mut consumed: BTreeMap<(usize, String), usize> = BTreeMap::new();
        for (si, stratum) in q.strata.iter().enumerate() {
            if rebuild[si] {
                continue;
            }
            loop {
                let mut ends: BTreeMap<String, usize> = BTreeMap::new();
                for &ri in stratum {
                    for step in &q.rules[ri].steps {
                        if let Step::Scan { pred, .. } = step {
                            ends.entry(pred.clone())
                                .or_insert_with(|| db.len(&shadow_del(pred)));
                        }
                    }
                }
                let mut any = false;
                for &ri in stratum {
                    let rule = &q.rules[ri];
                    for (step_i, step) in rule.steps.iter().enumerate() {
                        let Step::Scan { pred, .. } = step else {
                            continue;
                        };
                        let to = ends[pred];
                        let from = consumed
                            .get(&(si, pred.clone()))
                            .copied()
                            .unwrap_or(0);
                        if from >= to {
                            continue;
                        }
                        any = true;
                        report.stats.delta_tuples += (to - from) as u64;

                        // Evaluate the rule's pivot variant with the
                        // pivot scan redirected at the shadow relation:
                        // one body atom deleted, the rest over the old
                        // database — the standard DRed delta-rule.
                        let variant = rule
                            .pivot_variants
                            .iter()
                            .find(|v| v.scan_step == step_i)
                            .expect("pivot step is a scan");
                        let mut steps = variant.steps.clone();
                        if let Step::Scan { pred, .. } = &mut steps[0] {
                            *pred = shadow_del(pred);
                        }
                        let seed = seed_env(rule, loc);
                        let mut dead: Vec<Tuple> = Vec::new();
                        let mut scan = ScanStats::default();
                        for_each_valuation_steps_stats(
                            rule,
                            &steps,
                            db,
                            self.udfs(),
                            &seed,
                            Some(&Pivot {
                                step: 0,
                                window: from..to,
                            }),
                            &mut |env| {
                                if let Some(t) = head_tuple(rule, env) {
                                    dead.push(t);
                                }
                            },
                            &mut scan,
                        )?;
                        report.stats.rule_firings += 1;
                        report.stats.scratch_reuse += scan.reuse;
                        report.stats.scratch_alloc += scan.alloc;
                        for t in dead {
                            if db.relation(&rule.pred).is_some_and(|r| r.contains(&t)) {
                                let shadow = shadow_del(&rule.pred);
                                if db.relation_mut(&shadow, t.len()).insert(t) {
                                    report.overdeleted += 1;
                                }
                                shadow_preds.insert(rule.pred.clone());
                            }
                        }
                    }
                }
                for (pred, to) in ends {
                    let f = consumed.entry((si, pred)).or_insert(0);
                    if *f < to {
                        *f = to;
                    }
                }
                report.stats.fixpoint_rounds += 1;
                if !any {
                    break;
                }
            }
        }

        // Phase 2: apply the deletions, then the additions.
        for pred in &shadow_preds {
            let dead: HashSet<Tuple> = db
                .relation(&shadow_del(pred))
                .map(|r| r.scan().iter().cloned().collect())
                .unwrap_or_default();
            db.retain(pred, |t| !dead.contains(t));
        }
        for (pred, t) in &delta.additions {
            db.insert(pred, t.clone());
        }

        // Phase 3: rederive. Removal compacted tuple indices, so every
        // frontier is stale — reset the whole incremental state and
        // re-run each stratum's fixpoint in order. DRed strata seed from
        // their survivors (a subset of the new least fixpoint, so the
        // monotone closure lands exactly on it); rebuild strata drop
        // their heads first and recompute from the maintained input.
        *state = EvalState::default();
        for (si, stratum) in q.strata.iter().enumerate() {
            if rebuild[si] {
                let heads: BTreeSet<&str> =
                    stratum.iter().map(|&ri| q.rules[ri].pred.as_str()).collect();
                for head in heads {
                    db.clear(head);
                }
                report.rebuilt_strata.push(si);
            }
            self.step_stratum_stats(db, state, loc, si, &mut report.stats)?;
        }

        // Drop the transient shadow relations.
        for pred in &shadow_preds {
            db.remove_relation(&shadow_del(pred));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::udf::UdfRegistry;
    use crate::{analyze, parse, Catalog, Params};

    fn evaluator(src: &str) -> Evaluator {
        let q = analyze(&parse(src).unwrap(), &Catalog::standard(), &Params::new()).unwrap();
        Evaluator::new(q, UdfRegistry::standard())
    }

    fn edge(a: u64, b: u64) -> Tuple {
        vec![Value::Id(a), Value::Id(b)]
    }

    fn edge_db(edges: &[(u64, u64)]) -> Database {
        let mut db = Database::new();
        for &(a, b) in edges {
            db.insert("edge", edge(a, b));
        }
        db
    }

    /// Cold-run oracle: every IDB relation must match a from-scratch
    /// evaluation over the maintained EDB.
    fn assert_matches_cold(ev: &Evaluator, db: &Database) {
        let mut cold = Database::new();
        for pred in &ev.query().edbs {
            if let Some(r) = db.relation(pred) {
                for t in r.scan() {
                    cold.insert(pred, t.clone());
                }
            }
        }
        ev.run(&mut cold).unwrap();
        for (pred, _) in ev.query().idbs.iter() {
            assert_eq!(
                db.sorted(pred),
                cold.sorted(pred),
                "maintained '{pred}' diverges from cold re-run"
            );
        }
    }

    const REACH: &str = "reach(x) :- edge(x, y), y = 0.
                         reach(x) :- edge(x, y), reach(y).";

    #[test]
    fn retraction_removes_ghost_derivations() {
        let ev = evaluator(REACH);
        let mut db = edge_db(&[(1, 0), (2, 1), (3, 2)]);
        ev.run(&mut db).unwrap();
        assert_eq!(db.len("reach"), 3);

        // Cut the chain at 2 -> 1: both 2 and 3 lose reachability.
        let mut state = EvalState::default();
        let mut delta = EdbDelta::new();
        delta.retract("edge", edge(2, 1));
        let report = ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        assert_eq!(report.mode, MaintainMode::Dred);
        assert_eq!(report.retracted, 1);
        assert!(report.overdeleted >= 2, "2 and 3 must be overdeleted");
        assert_eq!(
            db.sorted("reach"),
            vec![vec![Value::Id(1)]],
            "ghost tuples survived retraction"
        );
        assert_matches_cold(&ev, &db);
    }

    #[test]
    fn alternative_derivation_survives_via_rederivation() {
        let ev = evaluator(REACH);
        // 2 reaches 0 both through 1 and directly.
        let mut db = edge_db(&[(1, 0), (2, 1), (2, 0), (3, 2)]);
        ev.run(&mut db).unwrap();

        let mut state = EvalState::default();
        let mut delta = EdbDelta::new();
        delta.retract("edge", edge(2, 1));
        ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        // 2 is overdeleted (its derivation through 1 died) but rederived
        // through the direct edge; 3 keeps riding on 2.
        assert_eq!(
            db.sorted("reach"),
            vec![vec![Value::Id(1)], vec![Value::Id(2)], vec![Value::Id(3)]]
        );
        assert_matches_cold(&ev, &db);
    }

    #[test]
    fn mixed_delta_applies_both_directions() {
        let ev = evaluator(REACH);
        let mut db = edge_db(&[(1, 0), (2, 1)]);
        ev.run(&mut db).unwrap();

        let mut state = EvalState::default();
        let mut delta = EdbDelta::new();
        delta.retract("edge", edge(2, 1));
        delta.insert("edge", edge(3, 1));
        delta.insert("edge", edge(4, 3));
        ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        assert_eq!(
            db.sorted("reach"),
            vec![vec![Value::Id(1)], vec![Value::Id(3)], vec![Value::Id(4)]]
        );
        assert_matches_cold(&ev, &db);
    }

    #[test]
    fn insert_only_takes_seminaive_path_and_keeps_state_usable() {
        let ev = evaluator(REACH);
        let mut db = edge_db(&[(1, 0)]);
        let mut state = EvalState::default();
        ev.step(&mut db, &mut state, None).unwrap();

        let mut delta = EdbDelta::new();
        delta.insert("edge", edge(2, 1));
        let report = ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        assert_eq!(report.mode, MaintainMode::InsertOnly);
        assert_eq!(report.retracted + report.overdeleted, 0);

        // The same state keeps streaming through step() afterwards.
        db.insert("edge", edge(3, 2));
        ev.step(&mut db, &mut state, None).unwrap();
        assert_eq!(db.len("reach"), 3);
        assert_matches_cold(&ev, &db);
    }

    #[test]
    fn state_remains_usable_for_appends_after_dred() {
        let ev = evaluator(REACH);
        let mut db = edge_db(&[(1, 0), (2, 1), (3, 2)]);
        let mut state = EvalState::default();
        ev.step(&mut db, &mut state, None).unwrap();

        let mut delta = EdbDelta::new();
        delta.retract("edge", edge(3, 2));
        ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        assert_eq!(db.len("reach"), 2);

        db.insert("edge", edge(3, 1));
        ev.step(&mut db, &mut state, None).unwrap();
        assert_eq!(db.len("reach"), 3);
        assert_matches_cold(&ev, &db);
    }

    #[test]
    fn negation_stratum_rebuilds_exactly() {
        let ev = evaluator(
            "linked(x) :- edge(x, y).
             terminal(x, y) :- edge(x, y), !linked(y).",
        );
        let mut db = edge_db(&[(1, 2), (2, 3)]);
        ev.run(&mut db).unwrap();
        // Only 3 is terminal (no outgoing edge).
        assert_eq!(db.len("terminal"), 1);

        // Retract 2 -> 3: now 2 becomes terminal — a retraction *adding*
        // derived tuples, which only the rebuild path can produce.
        let mut state = EvalState::default();
        let mut delta = EdbDelta::new();
        delta.retract("edge", edge(2, 3));
        let report = ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        assert!(
            !report.rebuilt_strata.is_empty(),
            "negation stratum must rebuild"
        );
        let t = db.sorted("terminal");
        assert_eq!(t, vec![vec![Value::Id(1), Value::Id(2)]]);
        assert_matches_cold(&ev, &db);
    }

    #[test]
    fn aggregate_stratum_rebuilds_stale_groups() {
        let ev = evaluator("in_degree(x, count(y)) :- in_edge(x, y).");
        let mut db = Database::new();
        for (x, y) in [(1u64, 2u64), (1, 3), (2, 1)] {
            db.insert("in_edge", vec![Value::Id(x), Value::Id(y)]);
        }
        ev.run(&mut db).unwrap();
        assert_eq!(db.sorted("in_degree")[0], vec![Value::Id(1), Value::Int(2)]);

        let mut state = EvalState::default();
        let mut delta = EdbDelta::new();
        // Net size unchanged: one out, one in — the stale-group trap.
        delta.retract("in_edge", vec![Value::Id(1), Value::Id(3)]);
        delta.insert("in_edge", vec![Value::Id(3), Value::Id(1)]);
        ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        assert_eq!(
            db.sorted("in_degree"),
            vec![
                vec![Value::Id(1), Value::Int(1)],
                vec![Value::Id(2), Value::Int(1)],
                vec![Value::Id(3), Value::Int(1)],
            ]
        );
        assert_matches_cold(&ev, &db);
    }

    #[test]
    fn retracting_idb_is_an_error() {
        let ev = evaluator(REACH);
        let mut db = edge_db(&[(1, 0)]);
        ev.run(&mut db).unwrap();
        let mut state = EvalState::default();
        let mut delta = EdbDelta::new();
        delta.retract("reach", vec![Value::Id(1)]);
        assert!(ev.maintain(&mut db, &mut state, None, &delta).is_err());
    }

    #[test]
    fn retracting_absent_tuple_is_noop() {
        let ev = evaluator(REACH);
        let mut db = edge_db(&[(1, 0)]);
        ev.run(&mut db).unwrap();
        let before = db.sorted("reach");
        let mut state = EvalState::default();
        let mut delta = EdbDelta::new();
        delta.retract("edge", edge(7, 8));
        let report = ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        assert_eq!(report.retracted, 0);
        assert_eq!(db.sorted("reach"), before);
    }

    #[test]
    fn shadow_relations_are_dropped() {
        let ev = evaluator(REACH);
        let mut db = edge_db(&[(1, 0), (2, 1)]);
        ev.run(&mut db).unwrap();
        let mut state = EvalState::default();
        let mut delta = EdbDelta::new();
        delta.retract("edge", edge(2, 1));
        ev.maintain(&mut db, &mut state, None, &delta).unwrap();
        assert!(
            db.iter().all(|(name, _)| !name.starts_with('~')),
            "transient shadow relations leaked"
        );
    }

    #[test]
    fn random_batches_match_cold_rerun() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ev = evaluator(REACH);
        let mut rng = StdRng::seed_from_u64(42);
        let mut edges: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut db = Database::new();
        let mut state = EvalState::default();
        for round in 0..12 {
            let mut delta = EdbDelta::new();
            for _ in 0..rng.gen_range(1..6) {
                if !edges.is_empty() && rng.gen_bool(0.4) {
                    let &(a, b) = edges
                        .iter()
                        .nth(rng.gen_range(0..edges.len()))
                        .unwrap();
                    edges.remove(&(a, b));
                    delta.retract("edge", edge(a, b));
                } else {
                    let a = rng.gen_range(0..12u64);
                    let b = rng.gen_range(0..12u64);
                    edges.insert((a, b));
                    delta.insert("edge", edge(a, b));
                }
            }
            ev.maintain(&mut db, &mut state, None, &delta)
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert_matches_cold(&ev, &db);
        }
    }
}
