//! A named collection of relations plus the delta bookkeeping the
//! semi-naive evaluator needs.
//!
//! The same `Database` type backs every evaluation mode: the centralized
//! naive evaluator loads all provenance at once; Ariadne's online and
//! layered modes keep one small `Database` per vertex and feed it EDB
//! tuples superstep by superstep (or layer by layer).

use crate::eval::relation::{Relation, Tuple};
use std::collections::BTreeMap;

/// A database: predicate name → relation, with per-predicate frontiers
/// that let the evaluator treat "tuples since I last looked" as deltas.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure relation `name` exists with the given arity and return it.
    pub fn relation_mut(&mut self, name: &str, arity: usize) -> &mut Relation {
        self.relations
            .entry(name.to_string())
            .or_insert_with(|| Relation::new(arity))
    }

    /// The relation named `name`, if it exists.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Insert a tuple, creating the relation if needed. Returns true if
    /// the tuple was new.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> bool {
        let arity = tuple.len();
        self.relation_mut(name, arity).insert(tuple)
    }

    /// Number of tuples in `name` (0 if absent).
    pub fn len(&self, name: &str) -> usize {
        self.relations.get(name).map(Relation::len).unwrap_or(0)
    }

    /// Whether the whole database is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(Relation::is_empty)
    }

    /// Iterate relations in name order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sorted copy of a relation's tuples — convenient for assertions
    /// and for presenting query results.
    pub fn sorted(&self, name: &str) -> Vec<Tuple> {
        let mut out = self
            .relation(name)
            .map(|r| r.scan().to_vec())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Remove tuples failing `keep` from relation `name` (no-op if the
    /// relation is absent). Returns the number of tuples removed. See
    /// [`Relation::retain`] for the frontier-invalidation caveat.
    pub fn retain(&mut self, name: &str, keep: impl FnMut(&Tuple) -> bool) -> usize {
        self.relations
            .get_mut(name)
            .map(|r| r.retain(keep))
            .unwrap_or(0)
    }

    /// Drop every tuple of relation `name`, keeping its arity (no-op if
    /// absent).
    pub fn clear(&mut self, name: &str) {
        if let Some(r) = self.relations.get_mut(name) {
            r.clear();
        }
    }

    /// Remove relation `name` entirely (the maintenance path uses this to
    /// drop its transient `~del~` shadow relations when done).
    pub fn remove_relation(&mut self, name: &str) -> bool {
        self.relations.remove(name).is_some()
    }

    /// Total payload bytes across all relations (Tables 3–4 accounting).
    pub fn byte_size(&self) -> usize {
        self.relations.values().map(Relation::byte_size).sum()
    }

    /// Total tuple count across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::value::Value;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        assert!(db.insert("p", vec![Value::Int(1)]));
        assert!(!db.insert("p", vec![Value::Int(1)]));
        assert_eq!(db.len("p"), 1);
        assert_eq!(db.len("q"), 0);
        assert!(!db.is_empty());
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn sorted_view() {
        let mut db = Database::new();
        db.insert("p", vec![Value::Int(3)]);
        db.insert("p", vec![Value::Int(1)]);
        let s = db.sorted("p");
        assert_eq!(s, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
        assert!(db.sorted("missing").is_empty());
    }

    #[test]
    fn deterministic_iteration() {
        let mut db = Database::new();
        db.insert("zeta", vec![Value::Int(1)]);
        db.insert("alpha", vec![Value::Int(1)]);
        let names: Vec<_> = db.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
