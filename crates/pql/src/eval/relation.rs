//! Tuple storage: deterministic, deduplicated relations with lazy
//! incremental hash indexes.
//!
//! Tuples are kept in insertion order (so evaluation is deterministic
//! regardless of hash seeds) with a hash set for O(1) dedup. Indexes on
//! arbitrary column subsets are built on first use and maintained
//! incrementally on insert; they live behind a `RefCell` because the
//! evaluator reads relations through shared references while joining.

use crate::eval::value::Value;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// A relation tuple.
pub type Tuple = Vec<Value>;

type Index = HashMap<Vec<Value>, Vec<usize>>;

/// A deduplicated, insertion-ordered set of tuples of fixed arity.
#[derive(Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    seen: HashSet<Tuple>,
    /// Lazily built indexes keyed by the (sorted) column positions.
    indexes: RefCell<HashMap<Vec<usize>, Index>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            ..Default::default()
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns true if it was new.
    ///
    /// Panics if the tuple's arity mismatches — that is a compiler bug,
    /// not a data condition.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "arity mismatch inserting into relation of arity {}",
            self.arity
        );
        if self.seen.contains(&tuple) {
            return false;
        }
        let idx = self.tuples.len();
        // Maintain existing indexes incrementally.
        for (cols, index) in self.indexes.borrow_mut().iter_mut() {
            let key: Vec<Value> = cols.iter().map(|&c| tuple[c].clone()).collect();
            index.entry(key).or_default().push(idx);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    /// Whether the relation contains `tuple`.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.seen.contains(tuple)
    }

    /// All tuples in insertion order.
    pub fn scan(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Tuples from position `from` onward (delta scans).
    pub fn scan_from(&self, from: usize) -> &[Tuple] {
        &self.tuples[from.min(self.tuples.len())..]
    }

    /// Indices of tuples matching `key` values at `cols` (builds the
    /// index on first use). `cols` must be sorted and non-empty.
    ///
    /// Allocates a fresh `Vec` per probe; the join inner loop uses
    /// [`Relation::select_into`] instead, which reuses a caller buffer.
    pub fn select(&self, cols: &[usize], key: &[Value]) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_into(cols, key, &mut out);
        out
    }

    /// Like [`Relation::select`], but writes the matching tuple indices
    /// into `out` (cleared first) instead of allocating. A miss leaves
    /// `out` empty without touching the heap. The internal index borrow
    /// is released before returning, so callers may re-enter this
    /// relation (self-joins) while iterating `out`.
    pub fn select_into(&self, cols: &[usize], key: &[Value], out: &mut Vec<usize>) {
        out.clear();
        let mut indexes = self.indexes.borrow_mut();
        let index = self.index_for(&mut indexes, cols);
        if let Some(postings) = index.get(key) {
            out.extend_from_slice(postings);
        }
    }

    /// Whether any tuple matching `key` at `cols` satisfies `pred`
    /// (short-circuits on the first witness). Existence-only scans use
    /// this to probe the borrowed index without materializing matches.
    ///
    /// `pred` must not re-enter this relation's index (the internal
    /// borrow is held while it runs); the evaluator only checks delta
    /// windows, which is index-free.
    pub fn matches_any(
        &self,
        cols: &[usize],
        key: &[Value],
        mut pred: impl FnMut(usize) -> bool,
    ) -> bool {
        let mut indexes = self.indexes.borrow_mut();
        let index = self.index_for(&mut indexes, cols);
        index
            .get(key)
            .is_some_and(|postings| postings.iter().any(|&idx| pred(idx)))
    }

    /// The index over `cols`, built on first use. `cols` must be sorted
    /// and non-empty.
    fn index_for<'a>(
        &self,
        indexes: &'a mut HashMap<Vec<usize>, Index>,
        cols: &[usize],
    ) -> &'a Index {
        debug_assert!(!cols.is_empty());
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        // `entry(cols.to_vec())` would clone `cols` on every probe; only
        // pay that on the build path.
        if !indexes.contains_key(cols) {
            let mut idx: Index = HashMap::new();
            for (i, t) in self.tuples.iter().enumerate() {
                let key: Vec<Value> = cols.iter().map(|&c| t[c].clone()).collect();
                idx.entry(key).or_default().push(i);
            }
            indexes.insert(cols.to_vec(), idx);
        }
        &indexes[cols]
    }

    /// The tuple at `idx`.
    pub fn get(&self, idx: usize) -> &Tuple {
        &self.tuples[idx]
    }

    /// Remove every tuple for which `keep` returns false, preserving the
    /// insertion order of the survivors. Indexes are dropped (rebuilt
    /// lazily on next probe). Returns the number of tuples removed.
    ///
    /// Removal compacts tuple indices, so any frontier or delta window a
    /// caller holds over this relation is invalidated — the maintenance
    /// path ([`crate::eval::maintain::EdbDelta`]) resets frontiers to zero for
    /// exactly this reason.
    pub fn retain(&mut self, mut keep: impl FnMut(&Tuple) -> bool) -> usize {
        let before = self.tuples.len();
        self.tuples.retain(|t| keep(t));
        let removed = before - self.tuples.len();
        if removed > 0 {
            self.seen = self.tuples.iter().cloned().collect();
            self.indexes.borrow_mut().clear();
        }
        removed
    }

    /// Drop every tuple, keeping the arity. Indexes are dropped too.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.seen.clear();
        self.indexes.borrow_mut().clear();
    }

    /// Approximate heap footprint of the stored tuples in bytes (index
    /// and dedup-set overhead excluded; this measures provenance payload,
    /// the quantity Tables 3 and 4 report).
    pub fn byte_size(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| t.iter().map(Value::byte_size).sum::<usize>())
            .sum()
    }
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        // Indexes are caches; drop them on clone.
        Relation {
            arity: self.arity,
            tuples: self.tuples.clone(),
            seen: self.seen.clone(),
            indexes: RefCell::new(HashMap::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.insert(t(&[1, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[9, 9])));
    }

    #[test]
    fn scan_preserves_insertion_order() {
        let mut r = Relation::new(1);
        for i in [5, 3, 9, 1] {
            r.insert(t(&[i]));
        }
        let order: Vec<i64> = r.scan().iter().map(|x| x[0].as_i64().unwrap()).collect();
        assert_eq!(order, vec![5, 3, 9, 1]);
        assert_eq!(r.scan_from(2).len(), 2);
        assert_eq!(r.scan_from(99).len(), 0);
    }

    #[test]
    fn select_builds_and_maintains_index() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.insert(t(&[2, 20]));
        r.insert(t(&[1, 30]));
        // Build index on column 0.
        let hits = r.select(&[0], &[Value::Int(1)]);
        assert_eq!(hits, vec![0, 2]);
        // Incremental maintenance after the index exists.
        r.insert(t(&[1, 40]));
        let hits = r.select(&[0], &[Value::Int(1)]);
        assert_eq!(hits, vec![0, 2, 3]);
        // Multi-column index.
        let hits = r.select(&[0, 1], &[Value::Int(2), Value::Int(20)]);
        assert_eq!(hits, vec![1]);
        assert!(r.select(&[0], &[Value::Int(7)]).is_empty());
    }

    #[test]
    fn select_into_reuses_buffer_and_clears_on_miss() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 30]));
        let mut buf = Vec::new();
        r.select_into(&[0], &[Value::Int(1)], &mut buf);
        assert_eq!(buf, vec![0, 1]);
        let cap = buf.capacity();
        // A miss clears the buffer without reallocating.
        r.select_into(&[0], &[Value::Int(9)], &mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        // A second hit refills the same buffer.
        r.select_into(&[0], &[Value::Int(1)], &mut buf);
        assert_eq!(buf, vec![0, 1]);
    }

    #[test]
    fn matches_any_short_circuits() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 30]));
        r.insert(t(&[2, 20]));
        let mut probed = Vec::new();
        assert!(r.matches_any(&[0], &[Value::Int(1)], |idx| {
            probed.push(idx);
            true
        }));
        assert_eq!(probed, vec![0]); // stopped at the first witness
        assert!(!r.matches_any(&[0], &[Value::Int(9)], |_| true));
        assert!(!r.matches_any(&[0], &[Value::Int(1)], |_| false));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }

    #[test]
    fn byte_size_grows() {
        let mut r = Relation::new(1);
        let before = r.byte_size();
        r.insert(t(&[1]));
        assert!(r.byte_size() > before);
    }

    #[test]
    fn clone_drops_index_but_keeps_tuples() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.select(&[0], &[Value::Int(1)]);
        let c = r.clone();
        assert_eq!(c.len(), 1);
        assert_eq!(c.select(&[0], &[Value::Int(1)]), vec![0]);
    }
}
