//! Query evaluation: values, relations, databases, UDFs, and the
//! semi-naive evaluator shared by every evaluation mode.

pub mod binding;
pub mod database;
pub mod maintain;
pub mod relation;
pub mod seminaive;
pub mod udf;
pub mod value;
