//! The semi-naive fixpoint evaluator.
//!
//! One engine serves every evaluation mode of the paper:
//!
//! * **centralized** ([`Evaluator::run`]) — load a database, run to
//!   fixpoint; this is the "naive offline" mode of §6 when the database
//!   is the whole materialized provenance graph;
//! * **incremental** ([`Evaluator::step`]) — the caller appends new EDB
//!   tuples (one superstep or one layer worth) and calls `step`; only
//!   delta windows are re-joined. Ariadne's online and layered modes call
//!   this once per superstep per vertex.
//!
//! Strata run in order; within a stratum, rules iterate semi-naively
//! (each scan takes a turn as the delta pivot). Aggregate rules are
//! stratified strictly above their inputs, so they are evaluated once per
//! `step` call, before the stratum's fixpoint loop.

use crate::analysis::{AnalyzedQuery, AnalyzedRule, Step};
use crate::ast::{AggFunc, HeadArg};
use crate::error::PqlError;
use crate::eval::binding::{
    eval_term, for_each_valuation_steps_stats, Env, Pivot, ScanStats,
};
use crate::eval::database::Database;
use crate::eval::udf::UdfRegistry;
use crate::eval::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Cached global-registry handles for evaluator metrics. All of these
/// count *logical* evaluation work — rule firings, derived tuples,
/// delta window sizes — which is a function of the query and the data
/// alone, so every counter here is flagged deterministic.
mod obs_handles {
    use ariadne_obs::metrics::Counter;
    use std::sync::OnceLock;

    macro_rules! pql_counter {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().counter($name, $help, true))
            }
        };
    }

    pql_counter!(
        rule_firings,
        "pql_rule_firings_total",
        "semi-naive rule evaluations (full, pivoted and aggregate)"
    );
    pql_counter!(
        derived_tuples,
        "pql_derived_tuples_total",
        "tuples inserted into IDB relations by rule heads"
    );
    pql_counter!(
        delta_tuples,
        "pql_delta_tuples_total",
        "tuples consumed from delta windows by pivoted evaluations"
    );
    pql_counter!(
        fixpoint_rounds,
        "pql_fixpoint_rounds_total",
        "semi-naive fixpoint loop iterations (including the closing empty round)"
    );
    pql_counter!(
        scratch_reuse,
        "pql_scratch_reuse_total",
        "scan-scratch buffer requests served from the recycled pool"
    );
    pql_counter!(
        scratch_alloc,
        "pql_scratch_alloc_total",
        "scan-scratch buffer requests that allocated fresh"
    );
}

/// Deterministic counters for semi-naive evaluation work.
///
/// Accumulated per [`Evaluator::step_stats`] / [`Evaluator::step_stratum_stats`]
/// call; every field is a function of the query and the database content
/// only, so totals are bit-identical across thread counts when the same
/// logical evaluations run (the per-vertex online evaluators rely on
/// this in the determinism tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Rule evaluations: full, delta-pivoted and aggregate.
    pub rule_firings: u64,
    /// Tuples inserted into IDB relations by rule heads (pre-dedup —
    /// the relation may drop duplicates on insert).
    pub derived_tuples: u64,
    /// Tuples consumed from delta windows by pivoted evaluations.
    pub delta_tuples: u64,
    /// Fixpoint loop iterations, including the final empty round that
    /// detects quiescence.
    pub fixpoint_rounds: u64,
    /// Scan-scratch buffer requests served from the recycled pool.
    pub scratch_reuse: u64,
    /// Scan-scratch buffer requests that allocated fresh.
    pub scratch_alloc: u64,
}

impl EvalStats {
    /// Accumulate another evaluation's counters.
    pub fn merge(&mut self, other: &EvalStats) {
        self.rule_firings += other.rule_firings;
        self.derived_tuples += other.derived_tuples;
        self.delta_tuples += other.delta_tuples;
        self.fixpoint_rounds += other.fixpoint_rounds;
        self.scratch_reuse += other.scratch_reuse;
        self.scratch_alloc += other.scratch_alloc;
    }

    fn absorb_scan(&mut self, scan: ScanStats) {
        self.scratch_reuse += scan.reuse;
        self.scratch_alloc += scan.alloc;
    }

    /// Feed this evaluation's counters into the global obs registry.
    fn record_obs(&self) {
        obs_handles::rule_firings().add(self.rule_firings);
        obs_handles::derived_tuples().add(self.derived_tuples);
        obs_handles::delta_tuples().add(self.delta_tuples);
        obs_handles::fixpoint_rounds().add(self.fixpoint_rounds);
        obs_handles::scratch_reuse().add(self.scratch_reuse);
        obs_handles::scratch_alloc().add(self.scratch_alloc);
    }
}

/// Per-database incremental evaluation state (delta frontiers).
#[derive(Clone, Debug, Default)]
pub struct EvalState {
    /// (stratum, predicate) → number of tuples already consumed.
    frontiers: BTreeMap<(usize, String), usize>,
    /// Scan-free rules that have produced their output already.
    ran_scan_free: HashSet<usize>,
    /// Aggregate rule → total body-relation size at its last evaluation;
    /// unchanged inputs mean the aggregate is already current.
    agg_input_sizes: BTreeMap<usize, usize>,
}

impl EvalState {
    /// Decompose into plain, deterministically ordered parts — used by
    /// checkpointing to serialize the delta frontiers.
    #[allow(clippy::type_complexity)]
    pub fn to_parts(&self) -> (Vec<(usize, String, usize)>, Vec<usize>, Vec<(usize, usize)>) {
        let frontiers = self
            .frontiers
            .iter()
            .map(|((s, p), n)| (*s, p.clone(), *n))
            .collect();
        let mut scan_free: Vec<usize> = self.ran_scan_free.iter().copied().collect();
        scan_free.sort_unstable();
        let aggs = self.agg_input_sizes.iter().map(|(k, v)| (*k, *v)).collect();
        (frontiers, scan_free, aggs)
    }

    /// Rebuild from [`EvalState::to_parts`] output.
    pub fn from_parts(
        frontiers: Vec<(usize, String, usize)>,
        ran_scan_free: Vec<usize>,
        agg_input_sizes: Vec<(usize, usize)>,
    ) -> Self {
        EvalState {
            frontiers: frontiers.into_iter().map(|(s, p, n)| ((s, p), n)).collect(),
            ran_scan_free: ran_scan_free.into_iter().collect(),
            agg_input_sizes: agg_input_sizes.into_iter().collect(),
        }
    }
}

/// A compiled query plus UDFs, ready to evaluate against databases.
#[derive(Clone, Debug)]
pub struct Evaluator {
    query: AnalyzedQuery,
    udfs: UdfRegistry,
}

impl Evaluator {
    /// Build an evaluator.
    pub fn new(query: AnalyzedQuery, udfs: UdfRegistry) -> Self {
        Evaluator { query, udfs }
    }

    /// The analyzed query.
    pub fn query(&self) -> &AnalyzedQuery {
        &self.query
    }

    /// The UDF registry (the maintenance path evaluates rewritten rule
    /// variants itself and needs the same bindings).
    pub(crate) fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Evaluate to fixpoint over `db` from scratch (centralized mode).
    pub fn run(&self, db: &mut Database) -> Result<(), PqlError> {
        let mut state = EvalState::default();
        self.step(db, &mut state, None)
    }

    /// Incremental evaluation: consume all tuples appended to `db` since
    /// `state` was last advanced, derive everything new, and update
    /// `state`. When `loc` is given, every rule's head location variable
    /// is pre-bound to it (per-vertex evaluation).
    pub fn step(
        &self,
        db: &mut Database,
        state: &mut EvalState,
        loc: Option<&Value>,
    ) -> Result<(), PqlError> {
        let mut stats = EvalStats::default();
        self.step_stats(db, state, loc, &mut stats)
    }

    /// Like [`Evaluator::step`], additionally accumulating this call's
    /// [`EvalStats`] into `stats` (run-local introspection; the global
    /// obs registry is fed either way).
    pub fn step_stats(
        &self,
        db: &mut Database,
        state: &mut EvalState,
        loc: Option<&Value>,
        stats: &mut EvalStats,
    ) -> Result<(), PqlError> {
        let _eval_span = ariadne_obs::trace::span(
            ariadne_obs::trace::Level::Trace,
            "pql",
            "eval_step",
            &[("strata", self.query.strata.len().into())],
        );
        for stratum_idx in 0..self.query.strata.len() {
            self.step_stratum_stats(db, state, loc, stratum_idx, stats)?;
        }
        Ok(())
    }

    /// Number of strata in the compiled query.
    pub fn num_strata(&self) -> usize {
        self.query.strata.len()
    }

    /// Incremental evaluation restricted to one stratum. Distributed
    /// drivers that must globally complete a stratum before the next one
    /// starts (the naive whole-graph mode, where negation would
    /// otherwise race replica arrival) call this per stratum, per round.
    pub fn step_stratum(
        &self,
        db: &mut Database,
        state: &mut EvalState,
        loc: Option<&Value>,
        stratum_idx: usize,
    ) -> Result<(), PqlError> {
        let mut stats = EvalStats::default();
        self.step_stratum_stats(db, state, loc, stratum_idx, &mut stats)
    }

    /// Like [`Evaluator::step_stratum`] with run-local stats
    /// accumulation.
    pub fn step_stratum_stats(
        &self,
        db: &mut Database,
        state: &mut EvalState,
        loc: Option<&Value>,
        stratum_idx: usize,
        stats: &mut EvalStats,
    ) -> Result<(), PqlError> {
        let mut local = EvalStats::default();
        let result = self.step_stratum_inner(db, state, loc, stratum_idx, &mut local);
        local.record_obs();
        stats.merge(&local);
        result
    }

    fn step_stratum_inner(
        &self,
        db: &mut Database,
        state: &mut EvalState,
        loc: Option<&Value>,
        stratum_idx: usize,
        stats: &mut EvalStats,
    ) -> Result<(), PqlError> {
        {
            let stratum = &self.query.strata[stratum_idx];
            // Aggregate rules: inputs live strictly below this stratum and
            // are final for this step; evaluate once — and only when some
            // body relation actually grew since the last evaluation.
            for &ri in stratum {
                let rule = &self.query.rules[ri];
                if rule.has_aggregate {
                    let input_size: usize = rule
                        .steps
                        .iter()
                        .map(|s| match s {
                            Step::Scan { pred, .. } | Step::Neg { pred, .. } => db.len(pred),
                            _ => 0,
                        })
                        .sum();
                    if state.agg_input_sizes.get(&ri) != Some(&input_size) {
                        self.eval_aggregate_rule(rule, db, loc, stats)?;
                        state.agg_input_sizes.insert(ri, input_size);
                    }
                }
            }

            // Scan-free rules fire once ever (their output is constant).
            for &ri in stratum {
                let rule = &self.query.rules[ri];
                if !rule.has_aggregate
                    && !rule.steps.iter().any(|s| matches!(s, Step::Scan { .. }))
                    && state.ran_scan_free.insert(ri)
                {
                    self.eval_rule_full(rule, db, loc, stats)?;
                }
            }

            // Semi-naive fixpoint for the stratum's non-aggregate rules.
            loop {
                stats.fixpoint_rounds += 1;
                // Snapshot current lengths: this iteration's delta window
                // ends here; later insertions belong to the next one.
                let mut starts: BTreeMap<String, usize> = BTreeMap::new();
                for &ri in stratum {
                    for step in &self.query.rules[ri].steps {
                        if let Step::Scan { pred, .. } | Step::Neg { pred, .. } = step {
                            starts.entry(pred.clone()).or_insert_with(|| db.len(pred));
                        }
                    }
                }
                let mut any_delta = false;
                for &ri in stratum {
                    let rule = &self.query.rules[ri];
                    if rule.has_aggregate {
                        continue;
                    }
                    for (si, step) in rule.steps.iter().enumerate() {
                        let Step::Scan { pred, .. } = step else {
                            continue;
                        };
                        let from = state
                            .frontiers
                            .get(&(stratum_idx, pred.clone()))
                            .copied()
                            .unwrap_or(0);
                        let to = starts.get(pred).copied().unwrap_or(0);
                        if from >= to {
                            continue;
                        }
                        any_delta = true;
                        stats.delta_tuples += (to - from) as u64;
                        self.eval_rule_with_pivot(
                            rule,
                            db,
                            loc,
                            Pivot {
                                step: si,
                                window: from..to,
                            },
                            stats,
                        )?;
                    }
                }
                // Advance this stratum's frontiers to the snapshot.
                for (pred, &to) in &starts {
                    let f = state
                        .frontiers
                        .entry((stratum_idx, pred.clone()))
                        .or_insert(0);
                    if *f < to {
                        *f = to;
                    }
                }
                if !any_delta {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Evaluate one non-aggregate rule without a pivot.
    fn eval_rule_full(
        &self,
        rule: &AnalyzedRule,
        db: &mut Database,
        loc: Option<&Value>,
        stats: &mut EvalStats,
    ) -> Result<(), PqlError> {
        let seed = seed_env(rule, loc);
        let mut derived: Vec<Vec<Value>> = Vec::new();
        let mut scan = ScanStats::default();
        for_each_valuation_steps_stats(
            rule,
            &rule.steps,
            db,
            &self.udfs,
            &seed,
            None,
            &mut |env| {
                if let Some(tuple) = head_tuple(rule, env) {
                    derived.push(tuple);
                }
            },
            &mut scan,
        )?;
        stats.rule_firings += 1;
        stats.derived_tuples += derived.len() as u64;
        stats.absorb_scan(scan);
        for tuple in derived {
            db.insert(&rule.pred, tuple);
        }
        Ok(())
    }

    /// Evaluate one non-aggregate rule with a delta pivot, using the
    /// rule's reordered variant so the delta relation drives the join.
    fn eval_rule_with_pivot(
        &self,
        rule: &AnalyzedRule,
        db: &mut Database,
        loc: Option<&Value>,
        pivot: Pivot,
        stats: &mut EvalStats,
    ) -> Result<(), PqlError> {
        let seed = seed_env(rule, loc);
        let mut derived: Vec<Vec<Value>> = Vec::new();
        let variant = rule
            .pivot_variants
            .iter()
            .find(|v| v.scan_step == pivot.step)
            .expect("pivot step is a scan");
        let fronted = Pivot {
            step: 0,
            window: pivot.window,
        };
        let mut scan = ScanStats::default();
        for_each_valuation_steps_stats(
            rule,
            &variant.steps,
            db,
            &self.udfs,
            &seed,
            Some(&fronted),
            &mut |env| {
                if let Some(tuple) = head_tuple(rule, env) {
                    derived.push(tuple);
                }
            },
            &mut scan,
        )?;
        stats.rule_firings += 1;
        stats.derived_tuples += derived.len() as u64;
        stats.absorb_scan(scan);
        for tuple in derived {
            db.insert(&rule.pred, tuple);
        }
        Ok(())
    }

    /// Evaluate an aggregate rule from scratch and insert group results.
    ///
    /// Semantics: valuations are projected to (group values, aggregated
    /// term values) and deduplicated on that projection before the
    /// aggregate is applied — `count(y)` counts *distinct* `y` per group.
    fn eval_aggregate_rule(
        &self,
        rule: &AnalyzedRule,
        db: &mut Database,
        loc: Option<&Value>,
        stats: &mut EvalStats,
    ) -> Result<(), PqlError> {
        let seed = seed_env(rule, loc);
        let mut projected: BTreeSet<(Vec<Value>, Vec<Value>)> = BTreeSet::new();
        let mut failed = false;
        let mut scan = ScanStats::default();
        for_each_valuation_steps_stats(
            rule,
            &rule.steps,
            db,
            &self.udfs,
            &seed,
            None,
            &mut |env| {
                let mut group = Vec::new();
                let mut aggs = Vec::new();
                for arg in &rule.head_args {
                    match arg {
                        HeadArg::Plain(t) => match eval_term(t, env) {
                            Some(v) => group.push(v),
                            None => failed = true,
                        },
                        HeadArg::Agg(_, t) => match eval_term(t, env) {
                            Some(v) => aggs.push(v),
                            None => failed = true,
                        },
                    }
                }
                if !failed {
                    projected.insert((group, aggs));
                }
            },
            &mut scan,
        )?;
        stats.rule_firings += 1;
        stats.absorb_scan(scan);
        if failed {
            return Err(PqlError::analysis(
                rule.line,
                "aggregate rule evaluated a non-numeric or unbound term",
            ));
        }

        // Group and fold.
        let mut groups: BTreeMap<Vec<Value>, Vec<Vec<Value>>> = BTreeMap::new();
        for (group, aggs) in projected {
            groups.entry(group).or_default().push(aggs);
        }
        for (group, rows) in groups {
            let mut tuple = Vec::with_capacity(rule.head_args.len());
            let mut plain_iter = group.into_iter();
            let mut agg_idx = 0;
            let mut ok = true;
            for arg in &rule.head_args {
                match arg {
                    HeadArg::Plain(_) => tuple.push(plain_iter.next().expect("group arity")),
                    HeadArg::Agg(func, _) => {
                        let column: Vec<&Value> = rows.iter().map(|r| &r[agg_idx]).collect();
                        match apply_aggregate(*func, &column) {
                            Some(v) => tuple.push(v),
                            None => ok = false,
                        }
                        agg_idx += 1;
                    }
                }
            }
            if ok {
                stats.derived_tuples += 1;
                db.insert(&rule.pred, tuple);
            } else {
                return Err(PqlError::analysis(
                    rule.line,
                    "aggregate over non-numeric values",
                ));
            }
        }
        Ok(())
    }
}

pub(crate) fn seed_env<'r>(rule: &'r AnalyzedRule, loc: Option<&Value>) -> Env<'r> {
    let mut env = Env::new();
    if let Some(v) = loc {
        env.insert(rule.head_loc.as_str(), v.clone());
    }
    env
}

/// Build the head tuple for a non-aggregate rule under `env`.
pub(crate) fn head_tuple(rule: &AnalyzedRule, env: &Env<'_>) -> Option<Vec<Value>> {
    rule.head_args
        .iter()
        .map(|arg| match arg {
            HeadArg::Plain(t) => eval_term(t, env),
            HeadArg::Agg(_, _) => None, // unreachable for non-aggregate rules
        })
        .collect()
}

/// Fold an aggregate function over a column of values.
fn apply_aggregate(func: AggFunc, column: &[&Value]) -> Option<Value> {
    match func {
        AggFunc::Count => Some(Value::Int(column.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            let mut all_int = true;
            let mut sum = 0.0;
            for v in column {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        sum += f;
                    }
                    _ => return None,
                }
            }
            if func == AggFunc::Avg {
                if column.is_empty() {
                    return None;
                }
                Some(Value::Float(sum / column.len() as f64))
            } else if all_int {
                Some(Value::Int(sum as i64))
            } else {
                Some(Value::Float(sum))
            }
        }
        AggFunc::Min => column.iter().map(|v| (*v).clone()).min(),
        AggFunc::Max => column.iter().map(|v| (*v).clone()).max(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, parse, Catalog, Params};

    fn evaluator(src: &str) -> Evaluator {
        evaluator_with(src, Params::new())
    }

    fn evaluator_with(src: &str, params: Params) -> Evaluator {
        let q = analyze(&parse(src).unwrap(), &Catalog::standard(), &params).unwrap();
        Evaluator::new(q, UdfRegistry::standard())
    }

    fn edge_db(edges: &[(u64, u64)]) -> Database {
        let mut db = Database::new();
        for &(a, b) in edges {
            db.insert("edge", vec![Value::Id(a), Value::Id(b)]);
        }
        db
    }

    fn ids(db: &Database, pred: &str) -> Vec<u64> {
        db.sorted(pred)
            .into_iter()
            .map(|t| t[0].as_id().unwrap())
            .collect()
    }

    #[test]
    fn transitive_closure() {
        let ev = evaluator(
            "reach(x) :- edge(x, y), y = 0.
             reach(x) :- edge(x, y), reach(y).",
        );
        // Chain 3 -> 2 -> 1 -> 0 plus unrelated 9 -> 8.
        let mut db = edge_db(&[(3, 2), (2, 1), (1, 0), (9, 8)]);
        ev.run(&mut db).unwrap();
        assert_eq!(ids(&db, "reach"), vec![1, 2, 3]);
    }

    #[test]
    fn incremental_matches_batch() {
        let ev = evaluator(
            "reach(x) :- edge(x, y), y = 0.
             reach(x) :- edge(x, y), reach(y).",
        );
        let edges = [(1u64, 0u64), (2, 1), (3, 2), (4, 3), (5, 9)];
        // Batch.
        let mut batch = edge_db(&edges);
        ev.run(&mut batch).unwrap();
        // Incremental: one edge per step.
        let mut inc = Database::new();
        let mut state = EvalState::default();
        for &(a, b) in &edges {
            inc.insert("edge", vec![Value::Id(a), Value::Id(b)]);
            ev.step(&mut inc, &mut state, None).unwrap();
        }
        assert_eq!(batch.sorted("reach"), inc.sorted("reach"));
    }

    #[test]
    fn incremental_out_of_order_edges() {
        let ev = evaluator(
            "reach(x) :- edge(x, y), y = 0.
             reach(x) :- edge(x, y), reach(y).",
        );
        // Insert the chain far-end first: each step must re-join old
        // deltas with new tuples.
        let mut db = Database::new();
        let mut state = EvalState::default();
        for &(a, b) in &[(3u64, 2u64), (2, 1), (1, 0)] {
            db.insert("edge", vec![Value::Id(a), Value::Id(b)]);
            ev.step(&mut db, &mut state, None).unwrap();
        }
        assert_eq!(ids(&db, "reach"), vec![1, 2, 3]);
    }

    #[test]
    fn stratified_negation() {
        let ev = evaluator(
            "linked(x) :- edge(x, y).
             isolated_target(x, y) :- edge(x, y), !linked(y).",
        );
        let mut db = edge_db(&[(1, 2), (2, 3)]);
        ev.run(&mut db).unwrap();
        // 3 has no outgoing edge, so it is not linked.
        let t = db.sorted("isolated_target");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0][1].as_id(), Some(3));
    }

    #[test]
    fn count_distinct() {
        let ev = evaluator("in_degree(x, count(y)) :- in_edge(x, y).");
        let mut db = Database::new();
        for (x, y) in [(1u64, 2u64), (1, 3), (1, 3), (2, 1)] {
            db.insert("in_edge", vec![Value::Id(x), Value::Id(y)]);
        }
        ev.run(&mut db).unwrap();
        let t = db.sorted("in_degree");
        assert_eq!(
            t,
            vec![
                vec![Value::Id(1), Value::Int(2)],
                vec![Value::Id(2), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn sum_min_max_avg() {
        let ev = evaluator(
            "s(x, sum(d)) :- value(x, d, i).
             lo(x, min(d)) :- value(x, d, i).
             hi(x, max(d)) :- value(x, d, i).
             mean(x, avg(d)) :- value(x, d, i).",
        );
        let mut db = Database::new();
        for (i, d) in [(0i64, 1.0f64), (1, 2.0), (2, 3.0)] {
            db.insert("value", vec![Value::Id(7), Value::Float(d), Value::Int(i)]);
        }
        ev.run(&mut db).unwrap();
        assert_eq!(db.sorted("s")[0][1], Value::Float(6.0));
        assert_eq!(db.sorted("lo")[0][1], Value::Float(1.0));
        assert_eq!(db.sorted("hi")[0][1], Value::Float(3.0));
        assert_eq!(db.sorted("mean")[0][1], Value::Float(2.0));
    }

    #[test]
    fn arithmetic_head() {
        let ev = evaluator("halved(x, d / 2) :- value(x, d, i).");
        let mut db = Database::new();
        db.insert("value", vec![Value::Id(1), Value::Float(3.0), Value::Int(0)]);
        ev.run(&mut db).unwrap();
        assert_eq!(db.sorted("halved")[0][1], Value::Float(1.5));
    }

    #[test]
    fn scan_free_rule_fires_once() {
        let ev = evaluator_with(
            "seeded(x, i) :- x = $alpha, i = 0.",
            Params::new().with("alpha", Value::Id(4)),
        );
        let mut db = Database::new();
        let mut state = EvalState::default();
        ev.step(&mut db, &mut state, None).unwrap();
        ev.step(&mut db, &mut state, None).unwrap();
        assert_eq!(
            db.sorted("seeded"),
            vec![vec![Value::Id(4), Value::Int(0)]]
        );
    }

    #[test]
    fn location_seeding_restricts_derivations() {
        let ev = evaluator("out(x, y) :- edge(x, y).");
        let mut db = edge_db(&[(1, 2), (3, 4)]);
        let mut state = EvalState::default();
        ev.step(&mut db, &mut state, Some(&Value::Id(1))).unwrap();
        assert_eq!(db.sorted("out"), vec![vec![Value::Id(1), Value::Id(2)]]);
    }

    #[test]
    fn exists_only_scans_are_semi_joins() {
        // fwd_lineage's recursive rule: w and j are anonymous, so the
        // fwd_lineage(y, w, j) scan must be marked existence-only...
        let q = analyze(
            &crate::parse(
                "fwd(x, v, i) :- receive_message(x, y, m, i), fwd(y, w, j), value(x, v, i).",
            )
            .unwrap(),
            &Catalog::standard(),
            &Params::new(),
        )
        .unwrap();
        use crate::analysis::Step;
        let fwd_scan = q.rules[0]
            .steps
            .iter()
            .find_map(|s| match s {
                Step::Scan { pred, exists_only, .. } if pred == "fwd" => Some(*exists_only),
                _ => None,
            })
            .expect("fwd scan present");
        assert!(fwd_scan, "fwd(y, w, j) should be existence-only");
        // ...while binder scans must not be.
        let recv_scan = q.rules[0]
            .steps
            .iter()
            .find_map(|s| match s {
                Step::Scan { pred, exists_only, .. } if pred == "receive_message" => {
                    Some(*exists_only)
                }
                _ => None,
            })
            .unwrap();
        assert!(!recv_scan, "receive_message binds x/y/i and must enumerate");

        // And semantically: duplicate witnesses collapse to one result.
        let ev = Evaluator::new(q, UdfRegistry::standard());
        let mut db = Database::new();
        for j in 0..5 {
            db.insert(
                "fwd",
                vec![Value::Id(1), Value::Float(0.0), Value::Int(j)],
            );
        }
        db.insert(
            "receive_message",
            vec![Value::Id(2), Value::Id(1), Value::Unit, Value::Int(6)],
        );
        db.insert("value", vec![Value::Id(2), Value::Float(9.0), Value::Int(6)]);
        ev.run(&mut db).unwrap();
        // One derived tuple for x=2 (plus the 5 EDB-style seeds).
        let derived: Vec<_> = db
            .sorted("fwd")
            .into_iter()
            .filter(|t| t[0] == Value::Id(2))
            .collect();
        assert_eq!(
            derived,
            vec![vec![Value::Id(2), Value::Float(9.0), Value::Int(6)]]
        );
    }

    #[test]
    fn paper_query_4_end_to_end() {
        // PageRank monitoring: a message received by a vertex with
        // in-degree 0 is a bug.
        let ev = evaluator(
            "in_degree(x, count(y)) :- in_edge(x, y).
             no_in(x) :- superstep(x, i), !has_in(x).
             has_in(x) :- in_edge(x, y).
             check_failed(x, y, i) :- no_in(x), receive_message(x, y, m, i).",
        );
        let mut db = Database::new();
        // Vertex 1 has an in-edge from 0; vertex 2 has none.
        db.insert("in_edge", vec![Value::Id(1), Value::Id(0)]);
        for x in [0u64, 1, 2] {
            db.insert("superstep", vec![Value::Id(x), Value::Int(0)]);
        }
        // Both 1 and 2 receive messages; only 2 is a violation.
        db.insert(
            "receive_message",
            vec![Value::Id(1), Value::Id(0), Value::Float(0.5), Value::Int(0)],
        );
        db.insert(
            "receive_message",
            vec![Value::Id(2), Value::Id(0), Value::Float(0.5), Value::Int(0)],
        );
        ev.run(&mut db).unwrap();
        let failures = db.sorted("check_failed");
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0][0].as_id(), Some(2));
    }
}
