//! VC-compatibility (Definition 4.1) and directedness (Definition 5.2).
//!
//! A body predicate is *remote* in a rule when its location variable
//! differs from the head's. A remote variable is *guarded* when it
//! appears as the peer argument of a positive `receive_message` (forward
//! guard) or `send_message` (backward guard) atom whose own location is
//! the head's. Queries where every remote variable is guarded are
//! VC-compatible; if moreover only one kind of guard is ever used, the
//! query is *directed* — forward queries support online evaluation,
//! backward queries support descending layered evaluation (§5).

use super::{AnalyzedRule, Step};
use crate::ast::Term;
use crate::catalog::{Catalog, MessageKind};
use std::collections::{BTreeSet, HashSet};

/// The communication classification of a query.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// No rule references remote predicates: evaluable in every mode.
    Local,
    /// Remote references guarded only by `receive_message`: online and
    /// ascending layered evaluation are legal (§5.2).
    Forward,
    /// Remote references guarded only by `send_message`: descending
    /// layered evaluation is legal (§5.1).
    Backward,
    /// VC-compatible but uses both guard kinds: only whole-graph (naive)
    /// evaluation is legal (the paper's R1 counter-example).
    Mixed,
    /// Some remote reference is unguarded: not VC-compatible; only
    /// centralized evaluation over the materialized provenance works.
    Unrestricted,
}

impl Direction {
    /// Whether online (lockstep with the analytic) evaluation is legal.
    pub fn supports_online(self) -> bool {
        matches!(self, Direction::Local | Direction::Forward)
    }

    /// Whether layered offline evaluation is legal, in either order.
    pub fn supports_layered(self) -> bool {
        matches!(
            self,
            Direction::Local | Direction::Forward | Direction::Backward
        )
    }

    /// Whether the query satisfies the VC normal form (Definition 4.1).
    pub fn is_vc_compatible(self) -> bool {
        self != Direction::Unrestricted
    }
}

/// Classify a query and collect the predicates that must be shipped with
/// analytic messages during distributed evaluation.
pub(super) fn classify(
    rules: &[AnalyzedRule],
    catalog: &Catalog,
) -> (Direction, BTreeSet<String>) {
    let mut any_remote = false;
    let mut uses_receive = false;
    let mut uses_send = false;
    let mut unguarded = false;
    let mut shipped = BTreeSet::new();

    for rule in rules {
        // Collect guards: peer variables of local positive message atoms.
        let mut receive_guarded: HashSet<&str> = HashSet::new();
        let mut send_guarded: HashSet<&str> = HashSet::new();
        for step in &rule.steps {
            if let Step::Scan { pred, args, .. } = step {
                if let Some(kind) = catalog.message_kind(pred) {
                    let schema = catalog.get(pred).expect("message predicate in catalog");
                    let local = matches!(&args[schema.location], Term::Var(v) if *v == rule.head_loc);
                    if local {
                        if let Some(peer_pos) = schema.peer {
                            if let Term::Var(peer) = &args[peer_pos] {
                                match kind {
                                    MessageKind::Receive => receive_guarded.insert(peer),
                                    MessageKind::Send => send_guarded.insert(peer),
                                };
                            }
                        }
                    }
                }
            }
        }

        // Find remote predicates and check their guards.
        for step in &rule.steps {
            let (pred, args) = match step {
                Step::Scan { pred, args, .. } | Step::Neg { pred, args } => (pred, args),
                _ => continue,
            };
            let loc_pos = catalog.get(pred).map(|s| s.location).unwrap_or(0);
            let loc_var = match args.get(loc_pos) {
                Some(Term::Var(v)) => v.as_str(),
                // A constant location pins the tuple to one vertex: that
                // is whole-graph communication, not VC-compatible.
                Some(_) => {
                    unguarded = true;
                    any_remote = true;
                    continue;
                }
                None => continue,
            };
            if loc_var == rule.head_loc {
                continue; // local
            }
            any_remote = true;
            shipped.insert(pred.clone());
            let fwd = receive_guarded.contains(loc_var);
            let bwd = send_guarded.contains(loc_var);
            match (fwd, bwd) {
                (true, _) => uses_receive = true,
                (false, true) => uses_send = true,
                (false, false) => unguarded = true,
            }
        }
    }

    let direction = if unguarded {
        Direction::Unrestricted
    } else if !any_remote {
        Direction::Local
    } else if uses_receive && uses_send {
        Direction::Mixed
    } else if uses_send {
        Direction::Backward
    } else {
        Direction::Forward
    };
    (direction, shipped)
}
