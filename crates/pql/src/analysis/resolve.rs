//! Literal resolution, parameter substitution, safety checking, and body
//! step ordering.

use super::{AnalyzedRule, PivotVariant, Step};
use crate::ast::{Atom, CmpOp, HeadArg, Literal, Program, Rule, Term};
use crate::catalog::Catalog;
use crate::error::PqlError;
use crate::Params;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub(super) struct Resolved {
    pub rules: Vec<AnalyzedRule>,
    pub idbs: BTreeMap<String, usize>,
    pub edbs: BTreeSet<String>,
}

pub(super) fn resolve(
    program: &Program,
    catalog: &Catalog,
    params: &Params,
) -> Result<Resolved, PqlError> {
    // Pass 1: collect IDB predicates and arities from heads.
    let mut idbs: BTreeMap<String, usize> = BTreeMap::new();
    for rule in &program.rules {
        let arity = rule.head.args.len();
        match idbs.get(&rule.head.pred) {
            Some(&a) if a != arity => {
                return Err(PqlError::analysis(
                    rule.line,
                    format!(
                        "predicate {:?} used with arity {} here but {} elsewhere",
                        rule.head.pred, arity, a
                    ),
                ));
            }
            _ => {
                idbs.insert(rule.head.pred.clone(), arity);
            }
        }
        // If a head writes a catalog EDB (capture rules do), arities must
        // agree with the catalog.
        if let Some(schema) = catalog.get(&rule.head.pred) {
            if schema.arity != arity {
                return Err(PqlError::analysis(
                    rule.line,
                    format!(
                        "head {:?} has arity {} but the catalog declares {}",
                        rule.head.pred, arity, schema.arity
                    ),
                ));
            }
        }
    }

    let mut edbs = BTreeSet::new();
    let mut rules = Vec::with_capacity(program.rules.len());
    for rule in &program.rules {
        rules.push(resolve_rule(rule, catalog, params, &idbs, &mut edbs)?);
    }
    Ok(Resolved { rules, idbs, edbs })
}

fn resolve_rule(
    rule: &Rule,
    catalog: &Catalog,
    params: &Params,
    idbs: &BTreeMap<String, usize>,
    edbs: &mut BTreeSet<String>,
) -> Result<AnalyzedRule, PqlError> {
    let line = rule.line;

    // Substitute params in the head.
    let head_args: Vec<HeadArg> = rule
        .head
        .args
        .iter()
        .map(|a| {
            Ok(match a {
                HeadArg::Plain(t) => HeadArg::Plain(subst(t, params, line)?),
                HeadArg::Agg(f, t) => HeadArg::Agg(*f, subst(t, params, line)?),
            })
        })
        .collect::<Result<_, PqlError>>()?;

    let head_loc = match head_args.first() {
        Some(HeadArg::Plain(Term::Var(v))) => v.clone(),
        _ => {
            return Err(PqlError::analysis(
                line,
                format!(
                    "the first head argument of {:?} must be the location variable",
                    rule.head.pred
                ),
            ));
        }
    };
    let has_aggregate = head_args.iter().any(|a| matches!(a, HeadArg::Agg(_, _)));

    // Classify body literals into raw steps.
    enum Raw {
        Scan { pred: String, args: Vec<Term> },
        Neg { pred: String, args: Vec<Term> },
        Cmp { lhs: Term, op: CmpOp, rhs: Term },
        Udf { name: String, args: Vec<Term> },
    }

    let mut raw = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Positive(atom) => {
                let mut args = subst_args(atom, params, line)?;
                if catalog.is_edb(&atom.pred) || idbs.contains_key(&atom.pred) {
                    check_relational_atom(atom, &args, catalog, idbs, line)?;
                    coerce_id_columns(&atom.pred, &mut args, catalog);
                    if catalog.is_edb(&atom.pred) && !idbs.contains_key(&atom.pred) {
                        edbs.insert(atom.pred.clone());
                    }
                    raw.push(Raw::Scan {
                        pred: atom.pred.clone(),
                        args,
                    });
                } else {
                    // Unknown predicate: a UDF call (validated at eval time).
                    raw.push(Raw::Udf {
                        name: atom.pred.clone(),
                        args,
                    });
                }
            }
            Literal::Negated(atom) => {
                if !catalog.is_edb(&atom.pred) && !idbs.contains_key(&atom.pred) {
                    return Err(PqlError::analysis(
                        line,
                        format!("negated predicate {:?} is neither an EDB nor defined by any rule", atom.pred),
                    ));
                }
                let mut args = subst_args(atom, params, line)?;
                check_relational_atom(atom, &args, catalog, idbs, line)?;
                coerce_id_columns(&atom.pred, &mut args, catalog);
                if catalog.is_edb(&atom.pred) && !idbs.contains_key(&atom.pred) {
                    edbs.insert(atom.pred.clone());
                }
                raw.push(Raw::Neg {
                    pred: atom.pred.clone(),
                    args,
                });
            }
            Literal::Compare(lhs, op, rhs) => raw.push(Raw::Cmp {
                lhs: subst(lhs, params, line)?,
                op: *op,
                rhs: subst(rhs, params, line)?,
            }),
        }
    }

    // Greedy safe ordering: emit any ready non-scan step; otherwise take
    // the next positive scan (which may bind new variables). An `=`
    // comparison with exactly one unbound side becomes an Assign.
    let mut bound: HashSet<String> = HashSet::new();
    let mut steps: Vec<Step> = Vec::with_capacity(raw.len());
    let mut used = vec![false; raw.len()];
    let mut remaining = raw.len();
    while remaining > 0 {
        // A variable that some still-unprocessed positive scan can bind
        // should be bound *by that scan* (with the tuple's own value and
        // type), not by an `=` assignment: `y = 0` next to `edge(x, y)`
        // must filter the scan, not pre-bind y to an integer.
        let scan_bindable: HashSet<&str> = raw
            .iter()
            .zip(&used)
            .filter(|(r, &u)| !u && matches!(r, Raw::Scan { .. }))
            .flat_map(|(r, _)| match r {
                Raw::Scan { args, .. } => args
                    .iter()
                    .filter_map(|t| match t {
                        Term::Var(v) => Some(v.as_str()),
                        _ => None,
                    })
                    .collect::<Vec<_>>(),
                _ => unreachable!(),
            })
            .collect();
        let mut progressed = false;
        // 1. Ready filters / assigns / udfs / negations.
        for (i, r) in raw.iter().enumerate() {
            if used[i] {
                continue;
            }
            match r {
                Raw::Cmp { lhs, op, rhs } => {
                    let lhs_free = free_vars(lhs, &bound);
                    let rhs_free = free_vars(rhs, &bound);
                    if lhs_free.is_empty() && rhs_free.is_empty() {
                        steps.push(Step::Filter {
                            lhs: lhs.clone(),
                            op: *op,
                            rhs: rhs.clone(),
                        });
                    } else if *op == CmpOp::Eq
                        && lhs_free.is_empty()
                        && matches!(rhs, Term::Var(v) if !scan_bindable.contains(v.as_str()))
                    {
                        let Term::Var(v) = rhs else { unreachable!() };
                        bound.insert(v.clone());
                        steps.push(Step::Assign {
                            var: v.clone(),
                            term: lhs.clone(),
                        });
                    } else if *op == CmpOp::Eq
                        && rhs_free.is_empty()
                        && matches!(lhs, Term::Var(v) if !scan_bindable.contains(v.as_str()))
                    {
                        let Term::Var(v) = lhs else { unreachable!() };
                        bound.insert(v.clone());
                        steps.push(Step::Assign {
                            var: v.clone(),
                            term: rhs.clone(),
                        });
                    } else {
                        continue;
                    }
                }
                Raw::Udf { name, args } => {
                    if args.iter().all(|t| free_vars(t, &bound).is_empty()) {
                        steps.push(Step::Udf {
                            name: name.clone(),
                            args: args.clone(),
                        });
                    } else {
                        continue;
                    }
                }
                Raw::Neg { pred, args } => {
                    if args.iter().all(|t| free_vars(t, &bound).is_empty()) {
                        steps.push(Step::Neg {
                            pred: pred.clone(),
                            args: args.clone(),
                        });
                    } else {
                        continue;
                    }
                }
                Raw::Scan { .. } => continue,
            }
            used[i] = true;
            remaining -= 1;
            progressed = true;
            break;
        }
        if progressed {
            continue;
        }
        // 2. Next positive scan in source order.
        if let Some(i) = raw
            .iter()
            .enumerate()
            .position(|(i, r)| !used[i] && matches!(r, Raw::Scan { .. }))
        {
            let Raw::Scan { pred, args } = &raw[i] else {
                unreachable!()
            };
            for t in args {
                if let Term::Var(v) = t {
                    bound.insert(v.clone());
                }
            }
            steps.push(Step::Scan {
                pred: pred.clone(),
                args: args.clone(),
                exists_only: false,
            });
            used[i] = true;
            remaining -= 1;
            continue;
        }
        // 3. Stuck: some literal has unbound variables forever.
        let stuck = raw
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(r, _)| match r {
                Raw::Neg { pred, .. } => format!("!{pred}(...)"),
                Raw::Udf { name, .. } => format!("{name}(...)"),
                Raw::Cmp { op, .. } => format!("comparison {op}"),
                Raw::Scan { pred, .. } => format!("{pred}(...)"),
            })
            .collect::<Vec<_>>()
            .join(", ");
        return Err(PqlError::analysis(
            line,
            format!("unsafe rule: {stuck} reference unbound variables"),
        ));
    }

    // Safety: every variable used in the head must be bound by the body.
    let mut head_vars: Vec<&str> = Vec::new();
    for arg in &head_args {
        match arg {
            HeadArg::Plain(t) | HeadArg::Agg(_, t) => t.collect_vars(&mut head_vars),
        }
    }
    for v in head_vars {
        if !bound.contains(v) {
            return Err(PqlError::analysis(
                line,
                format!("head variable {v:?} is not bound by the rule body"),
            ));
        }
    }

    let steps = mark_exists_only(steps, &head_args);

    // Semi-naive pivot variants: front each scan in turn and recompute
    // the semi-join flags for that order. Moving one scan earlier never
    // removes bindings from later steps, so every variant stays safe;
    // scans handle both bound (filter) and free (bind) arguments, and
    // assignments degrade to equality checks when their variable is
    // already bound.
    let mut pivot_variants = Vec::new();
    for (si, step) in steps.iter().enumerate() {
        if !matches!(step, Step::Scan { .. }) {
            continue;
        }
        let mut reordered = Vec::with_capacity(steps.len());
        reordered.push(steps[si].clone());
        for (j, other) in steps.iter().enumerate() {
            if j != si {
                reordered.push(other.clone());
            }
        }
        let reordered = mark_exists_only(reordered, &head_args);
        pivot_variants.push(PivotVariant {
            scan_step: si,
            steps: reordered,
        });
    }

    Ok(AnalyzedRule {
        pred: rule.head.pred.clone(),
        head_args,
        head_loc,
        steps,
        pivot_variants,
        has_aggregate,
        line,
    })
}

/// Mark scans whose free variables are all *anonymous* (they occur
/// exactly once in the whole rule): such a scan only asks "does any
/// matching tuple exist?", so evaluation can stop at the first witness
/// (a semi-join). This keeps recursive lineage rules — Query 3's
/// `fwd_lineage(y, w, j)`, where `w` and `j` are never used again — from
/// enumerating every historical witness per join probe.
fn mark_exists_only(mut steps: Vec<Step>, head_args: &[HeadArg]) -> Vec<Step> {
    // Total occurrence count of every variable across head and body.
    let mut occ: HashMap<String, usize> = HashMap::new();
    let bump = |t: &Term, occ: &mut HashMap<String, usize>| {
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        for v in vars {
            *occ.entry(v.to_string()).or_insert(0) += 1;
        }
    };
    for arg in head_args {
        match arg {
            HeadArg::Plain(t) | HeadArg::Agg(_, t) => bump(t, &mut occ),
        }
    }
    for step in &steps {
        match step {
            Step::Scan { args, .. } | Step::Neg { args, .. } => {
                for t in args {
                    bump(t, &mut occ);
                }
            }
            Step::Assign { var, term } => {
                *occ.entry(var.clone()).or_insert(0) += 1;
                bump(term, &mut occ);
            }
            Step::Filter { lhs, rhs, .. } => {
                bump(lhs, &mut occ);
                bump(rhs, &mut occ);
            }
            Step::Udf { args, .. } => {
                for t in args {
                    bump(t, &mut occ);
                }
            }
        }
    }

    // Order-aware pass: a scan is existence-only when every Var argument
    // is either already bound (a pure filter) or anonymous (occurrence
    // count 1 — its only appearance is this scan). A free variable that
    // is used later (count > 1, not yet bound) makes the scan a binder,
    // which must enumerate all witnesses.
    let mut bound: HashSet<String> = HashSet::new();
    for step in &mut steps {
        match step {
            Step::Scan { args, exists_only, .. } => {
                *exists_only = args.iter().all(|t| match t {
                    Term::Var(v) => {
                        bound.contains(v) || occ.get(v.as_str()).copied().unwrap_or(0) == 1
                    }
                    _ => true,
                });
                for t in args.iter() {
                    if let Term::Var(v) = t {
                        bound.insert(v.clone());
                    }
                }
            }
            Step::Assign { var, .. } => {
                bound.insert(var.clone());
            }
            _ => {}
        }
    }
    steps
}

/// Substitute `$params` in a term.
fn subst(term: &Term, params: &Params, line: usize) -> Result<Term, PqlError> {
    Ok(match term {
        Term::Param(name) => match params.get(name) {
            Some(v) => Term::Const(v.clone()),
            None => {
                return Err(PqlError::analysis(
                    line,
                    format!("parameter ${name} was not supplied"),
                ));
            }
        },
        Term::Arith(l, op, r) => Term::Arith(
            Box::new(subst(l, params, line)?),
            *op,
            Box::new(subst(r, params, line)?),
        ),
        other => other.clone(),
    })
}

fn subst_args(atom: &Atom, params: &Params, line: usize) -> Result<Vec<Term>, PqlError> {
    atom.args.iter().map(|t| subst(t, params, line)).collect()
}

/// Validate a relational atom: arity must match, and arguments must be
/// variables or constants (complex terms belong in comparisons).
fn check_relational_atom(
    atom: &Atom,
    args: &[Term],
    catalog: &Catalog,
    idbs: &BTreeMap<String, usize>,
    line: usize,
) -> Result<(), PqlError> {
    let expected = idbs
        .get(&atom.pred)
        .copied()
        .or_else(|| catalog.get(&atom.pred).map(|s| s.arity))
        .expect("caller checked the predicate exists");
    if args.len() != expected {
        return Err(PqlError::analysis(
            line,
            format!(
                "predicate {:?} has arity {} but is used with {} arguments",
                atom.pred,
                expected,
                args.len()
            ),
        ));
    }
    for t in args {
        if matches!(t, Term::Arith(_, _, _)) {
            return Err(PqlError::analysis(
                line,
                format!(
                    "arithmetic inside arguments of {:?} is not supported; bind it with '=' first",
                    atom.pred
                ),
            ));
        }
    }
    Ok(())
}

/// Coerce integer constants at id-typed columns (the location and peer
/// columns of catalog EDBs) to vertex ids, so `edge(0, y)` matches the
/// stored `Id(0)` tuples.
fn coerce_id_columns(pred: &str, args: &mut [Term], catalog: &Catalog) {
    let Some(schema) = catalog.get(pred) else {
        return;
    };
    let mut id_cols = vec![schema.location];
    if let Some(p) = schema.peer {
        id_cols.push(p);
    }
    for &c in &id_cols {
        if let Some(Term::Const(crate::eval::value::Value::Int(n))) = args.get(c) {
            if *n >= 0 {
                args[c] = Term::Const(crate::eval::value::Value::Id(*n as u64));
            }
        }
    }
}

/// Variables in `term` that are not yet in `bound`.
fn free_vars<'a>(term: &'a Term, bound: &HashSet<String>) -> Vec<&'a str> {
    let mut vars = Vec::new();
    term.collect_vars(&mut vars);
    vars.retain(|v| !bound.contains(*v));
    vars
}
