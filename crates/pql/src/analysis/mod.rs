//! Semantic analysis: parameter substitution, literal resolution, safety
//! (range restriction), stratification of negation and aggregation,
//! VC-compatibility (Definition 4.1) and directedness (Definition 5.2).
//!
//! The output, [`AnalyzedQuery`], is the executable form every evaluation
//! mode consumes: each rule's body has been compiled into an ordered list
//! of [`Step`]s in which every variable is bound before it is filtered
//! on, negated over, or fed to a UDF.

mod direction;
mod resolve;
mod stratify;

use crate::ast::{CmpOp, HeadArg, Program, Term};
use crate::catalog::Catalog;
use crate::error::PqlError;
use crate::Params;
use std::collections::{BTreeMap, BTreeSet};

pub use direction::Direction;

/// A fully analyzed, executable PQL query.
#[derive(Clone, Debug)]
pub struct AnalyzedQuery {
    /// Rules in source order, compiled to step lists.
    pub rules: Vec<AnalyzedRule>,
    /// Rule indices grouped by stratum, in evaluation order.
    pub strata: Vec<Vec<usize>>,
    /// Communication classification (Definitions 4.1 and 5.2).
    pub direction: Direction,
    /// IDB predicates (defined by some head) with arities.
    pub idbs: BTreeMap<String, usize>,
    /// EDB predicates the query reads.
    pub edbs: BTreeSet<String>,
    /// Predicates referenced remotely in some rule: their partitions
    /// must piggyback on analytic messages in online/layered evaluation.
    pub shipped: BTreeSet<String>,
}

impl AnalyzedQuery {
    /// Arity of a predicate (IDB or EDB), if known.
    pub fn arity(&self, pred: &str) -> Option<usize> {
        self.idbs.get(pred).copied()
    }
}

/// One analyzed rule.
#[derive(Clone, Debug)]
pub struct AnalyzedRule {
    /// Head predicate name.
    pub pred: String,
    /// Head arguments (parameters substituted).
    pub head_args: Vec<HeadArg>,
    /// The head's location variable (first head argument).
    pub head_loc: String,
    /// Body steps in a safe evaluation order.
    pub steps: Vec<Step>,
    /// Per-scan reorderings for semi-naive evaluation: when pivoting on
    /// scan `k` of `steps`, evaluating `pivot_variants[j]` (the variant
    /// whose `scan_step == k`) starts from the delta relation instead of
    /// re-enumerating everything before it. Semi-join (`exists_only`)
    /// flags are recomputed for each reordering.
    pub pivot_variants: Vec<PivotVariant>,
    /// Whether the head aggregates.
    pub has_aggregate: bool,
    /// 1-based source line.
    pub line: usize,
}

/// A reordered step list that puts one scan first (see
/// [`AnalyzedRule::pivot_variants`]).
#[derive(Clone, Debug)]
pub struct PivotVariant {
    /// Index of the fronted scan in the rule's original `steps`.
    pub scan_step: usize,
    /// The reordered steps; the pivot scan is `steps[0]`.
    pub steps: Vec<Step>,
}

/// One body evaluation step.
#[derive(Clone, Debug)]
pub enum Step {
    /// Join against relation `pred`; `args` are `Var` (bind or check) or
    /// `Const` (filter).
    Scan {
        /// Relation name.
        pred: String,
        /// Scan arguments.
        args: Vec<Term>,
        /// True when every free variable of this scan is anonymous (used
        /// nowhere else in the rule): the scan is then an existence check
        /// and evaluation stops at the first witness (semi-join).
        exists_only: bool,
    },
    /// Require that no tuple of `pred` matches `args` (all vars bound).
    Neg {
        /// Relation name.
        pred: String,
        /// Match arguments.
        args: Vec<Term>,
    },
    /// Bind `var := eval(term)` (from an `=` comparison).
    Assign {
        /// The variable being bound.
        var: String,
        /// The defining term (all its vars already bound).
        term: Term,
    },
    /// Check a comparison over bound terms.
    Filter {
        /// Left term.
        lhs: Term,
        /// Operator.
        op: CmpOp,
        /// Right term.
        rhs: Term,
    },
    /// Call a boolean UDF over bound terms.
    Udf {
        /// UDF name.
        name: String,
        /// Arguments.
        args: Vec<Term>,
    },
}

/// Analyze a parsed program against a catalog, substituting `params`.
pub fn analyze(
    program: &Program,
    catalog: &Catalog,
    params: &Params,
) -> Result<AnalyzedQuery, PqlError> {
    let resolved = resolve::resolve(program, catalog, params)?;
    let strata = stratify::stratify(&resolved.rules, catalog)?;
    let (direction, shipped) = direction::classify(&resolved.rules, catalog);
    Ok(AnalyzedQuery {
        rules: resolved.rules,
        strata,
        direction,
        idbs: resolved.idbs,
        edbs: resolved.edbs,
        shipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::value::Value;
    use crate::parse;

    fn std_analyze(src: &str) -> Result<AnalyzedQuery, PqlError> {
        analyze(&parse(src).unwrap(), &Catalog::standard(), &Params::new())
    }

    #[test]
    fn analyzes_apt_query() {
        let src = "
            change(x, i) :- value(x, d1, i), value(x, d2, j), evolution(x, j, i), udf_diff(d1, d2, $eps).
            neighbor_change(x, i) :- receive_message(x, y, m, i), !change(y, j), j = i - 1.
            no_execute(x, i) :- !neighbor_change(x, i), superstep(x, i).
            safe(x, i) :- no_execute(x, i), change(x, i).
            unsafe(x, i) :- no_execute(x, i), !change(x, i).
        ";
        let q = analyze(
            &parse(src).unwrap(),
            &Catalog::standard(),
            &Params::new().with("eps", Value::Float(0.01)),
        )
        .unwrap();
        assert_eq!(q.direction, Direction::Forward);
        assert!(q.shipped.contains("change"));
        assert_eq!(q.idbs.len(), 5);
        // change must be in an earlier stratum than no_execute.
        let stratum_of = |pred: &str| {
            q.strata
                .iter()
                .position(|rules| rules.iter().any(|&r| q.rules[r].pred == pred))
                .unwrap()
        };
        assert!(stratum_of("change") < stratum_of("neighbor_change"));
        assert!(stratum_of("neighbor_change") < stratum_of("no_execute"));
    }

    #[test]
    fn unbound_param_rejected() {
        let err = std_analyze("p(x) :- value(x, d, i), udf_diff(d, d, $eps).").unwrap_err();
        assert!(err.to_string().contains("eps"), "{err}");
    }

    #[test]
    fn backward_query_classified() {
        let src = "
            back_trace(x, i) :- superstep(x, i), i = $sigma, x = $alpha.
            back_trace(x, i) :- send_message(x, y, m, i), back_trace(y, j), j = i + 1.
        ";
        let q = analyze(
            &parse(src).unwrap(),
            &Catalog::standard(),
            &Params::new()
                .with("sigma", Value::Int(5))
                .with("alpha", Value::Id(0)),
        )
        .unwrap();
        assert_eq!(q.direction, Direction::Backward);
        assert!(q.shipped.contains("back_trace"));
        assert!(!q.direction.supports_online());
        assert!(q.direction.supports_layered());
    }

    #[test]
    fn mixed_rule_not_directed() {
        // The paper's R1 counter-example (§5.1): both send and receive
        // guards in one rule.
        let src = "
            t(y, i) :- superstep(y, i).
            s(z, i) :- superstep(z, i).
            r1(x, i) :- t(y, j), receive_message(x, y, m, i), s(z, k), send_message(x, z, m, i).
        ";
        let q = std_analyze(src).unwrap();
        assert_eq!(q.direction, Direction::Mixed);
        assert!(!q.direction.supports_layered());
        assert!(q.direction.is_vc_compatible());
    }

    #[test]
    fn unguarded_remote_is_unrestricted() {
        let src = "
            t(y, i) :- superstep(y, i).
            r(x, i) :- superstep(x, i), t(y, i).
        ";
        let q = std_analyze(src).unwrap();
        assert_eq!(q.direction, Direction::Unrestricted);
        assert!(!q.direction.is_vc_compatible());
    }

    #[test]
    fn local_query_supports_everything() {
        let q = std_analyze(
            "check(x, i) :- value(x, d1, i), value(x, d2, j), evolution(x, i, j), receive_message(x, y, m, i), d1 <= d2.",
        )
        .unwrap();
        assert_eq!(q.direction, Direction::Local);
        assert!(q.direction.supports_online());
        assert!(q.direction.supports_layered());
        assert!(q.shipped.is_empty());
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let err = std_analyze("p(x, z) :- superstep(x, i).").unwrap_err();
        assert!(err.to_string().contains('z'), "{err}");
    }

    #[test]
    fn negation_needs_bound_vars() {
        let err = std_analyze("p(x) :- superstep(x, i), !value(x, d, j).").unwrap_err();
        assert!(err.to_string().contains("unbound"), "{err}");
    }

    #[test]
    fn recursion_through_negation_rejected() {
        let err = std_analyze(
            "p(x) :- superstep(x, i), !q(x).
             q(x) :- superstep(x, i), !p(x).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("stratif"), "{err}");
    }

    #[test]
    fn recursive_aggregate_rejected() {
        let err = std_analyze("p(x, count(y)) :- p(y, c), receive_message(x, y, m, i).")
            .unwrap_err();
        assert!(err.to_string().contains("stratif"), "{err}");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = std_analyze("p(x) :- value(x, d).").unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn idb_arity_consistency() {
        let err = std_analyze(
            "p(x, i) :- superstep(x, i).
             p(x) :- superstep(x, i).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn assignment_binding_order() {
        // j is bound by the comparison, then used in the negation.
        let q = std_analyze(
            "p(x, i) :- receive_message(x, y, m, i), j = i - 1, !superstep(x, j).",
        )
        .unwrap();
        let steps = &q.rules[0].steps;
        assert!(matches!(steps[0], Step::Scan { .. }));
        assert!(matches!(steps[1], Step::Assign { .. }));
        assert!(matches!(steps[2], Step::Neg { .. }));
    }

    #[test]
    fn head_location_must_be_a_variable() {
        let err = std_analyze("p(3, i) :- superstep(x, i).").unwrap_err();
        assert!(err.to_string().contains("location"), "{err}");
    }

    #[test]
    fn arithmetic_in_atom_arguments_rejected() {
        let err = std_analyze("p(x, j) :- superstep(x, i), value(x, d, i + 1), j = i.")
            .unwrap_err();
        assert!(err.to_string().contains("arithmetic"), "{err}");
    }

    #[test]
    fn negated_unknown_predicate_rejected() {
        let err = std_analyze("p(x, i) :- superstep(x, i), !mystery(x).").unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn empty_body_fact_with_constants_allowed() {
        // A fact-style rule with the location bound by assignment.
        let q = analyze(
            &parse("seed(x, i) :- x = $alpha, i = 0.").unwrap(),
            &Catalog::standard(),
            &Params::new().with("alpha", Value::Id(2)),
        )
        .unwrap();
        assert_eq!(q.direction, Direction::Local);
        assert!(q.rules[0]
            .steps
            .iter()
            .all(|s| matches!(s, Step::Assign { .. })));
    }

    #[test]
    fn forward_lineage_query_is_forward() {
        let src = "
            fwd_lineage(x, v, i) :- value(x, v, i), superstep(x, i), x = $alpha, i = 0.
            fwd_lineage(x, v, i) :- receive_message(x, y, m, i), fwd_lineage(y, w, j), value(x, v, i).
        ";
        let q = analyze(
            &parse(src).unwrap(),
            &Catalog::standard(),
            &Params::new().with("alpha", Value::Id(7)),
        )
        .unwrap();
        assert_eq!(q.direction, Direction::Forward);
        assert!(q.shipped.contains("fwd_lineage"));
    }
}
