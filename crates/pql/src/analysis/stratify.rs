//! Stratification of negation and aggregation.
//!
//! We follow the classical stratified semantics: a predicate may not
//! depend on itself through negation or aggregation. (The paper adopts
//! the monotonic-aggregate semantics of Shkapsky et al. for recursive
//! aggregates; none of the paper's queries need them, so we take the
//! stricter, simpler stratified route and reject such programs.)

use super::{AnalyzedRule, Step};
use crate::catalog::Catalog;
use crate::error::PqlError;
use std::collections::BTreeMap;

/// Compute strata: rule indices grouped by evaluation round. Rules whose
/// heads are in stratum 0 come first, and so on. Within a stratum, rules
/// keep source order.
pub(super) fn stratify(
    rules: &[AnalyzedRule],
    _catalog: &Catalog,
) -> Result<Vec<Vec<usize>>, PqlError> {
    // Predicates defined by heads.
    let mut stratum: BTreeMap<&str, usize> = BTreeMap::new();
    for r in rules {
        stratum.insert(&r.pred, 0);
    }

    // Dependency edges: (head, body-pred, strict).
    // strict = the body predicate must be fully computed first — i.e. it
    // is negated, or the head aggregates.
    let mut edges: Vec<(&str, &str, bool)> = Vec::new();
    for r in rules {
        for s in &r.steps {
            match s {
                Step::Scan { pred, .. } if stratum.contains_key(pred.as_str()) => {
                    edges.push((&r.pred, pred, r.has_aggregate));
                }
                Step::Neg { pred, .. } if stratum.contains_key(pred.as_str()) => {
                    edges.push((&r.pred, pred, true));
                }
                _ => {}
            }
        }
    }

    // Bellman-Ford-style relaxation; a required stratum above the number
    // of predicates proves a negative cycle.
    let n = stratum.len();
    let mut changed = true;
    while changed {
        changed = false;
        for &(head, body, strict) in &edges {
            let need = stratum[body] + usize::from(strict);
            if stratum[head] < need {
                if need > n {
                    return Err(PqlError::analysis_global(format!(
                        "program is not stratifiable: {head:?} depends on itself through negation or aggregation",
                    )));
                }
                stratum.insert(head, need);
                changed = true;
            }
        }
    }

    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (i, r) in rules.iter().enumerate() {
        grouped[stratum[r.pred.as_str()]].push(i);
    }
    grouped.retain(|g| !g.is_empty());
    Ok(grouped)
}
