//! PQL — the Provenance Query Language (§4 of the paper).
//!
//! PQL is a Datalog dialect over the provenance EDB predicates of Table 1
//! (`superstep`, `value`, `evolution`, `send_message`, `receive_message`,
//! …), extended with:
//!
//! * a **location specifier**: the first term of every predicate names the
//!   graph vertex whose partition holds the tuple (§4.2);
//! * stratified negation, head aggregates (`count/sum/min/max/avg`),
//!   arithmetic comparisons and boolean UDF calls;
//! * `$name` parameters substituted at analysis time (thresholds, source
//!   vertices, supersteps).
//!
//! The crate contains the whole language pipeline:
//! [`lexer`] → [`parser`] → [`analysis`] (safety, stratification,
//! VC-compatibility per Definition 4.1, forward/backward classification
//! per Definition 5.2) → [`eval`] (a semi-naive evaluator usable both
//! centralized — the paper's *naive offline* mode — and per-vertex inside
//! Ariadne's online and layered modes).
//!
//! # Example
//!
//! ```
//! use ariadne_pql::{analyze, parse, Catalog, Params};
//!
//! let query = parse(
//!     "in_degree(x, count(y)) :- in_edge(x, y).
//!      check_failed(x, y, i) :- in_degree(x, d), receive_message(x, y, m, i), d = 0.",
//! )
//! .unwrap();
//! let analyzed = analyze(&query, &Catalog::standard(), &Params::new()).unwrap();
//! assert!(analyzed.direction.supports_online());
//! ```

pub mod analysis;
pub mod ast;
pub mod catalog;
pub mod display;
pub mod error;
pub mod explain;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use analysis::{analyze, AnalyzedQuery, Direction};
pub use ast::{Params, Program};
pub use catalog::{Catalog, EdbSchema};
pub use error::PqlError;
pub use explain::explain;
pub use eval::database::Database;
pub use eval::relation::{Relation, Tuple};
pub use eval::binding::ScanStats;
pub use eval::maintain::{EdbDelta, MaintainMode, MaintainReport};
pub use eval::seminaive::{EvalState, EvalStats, Evaluator};
pub use eval::udf::UdfRegistry;
pub use eval::value::Value;
pub use parser::parse;
