//! EXPLAIN output: a human-readable rendering of an analyzed query's
//! evaluation plan — strata, per-rule step order, semi-join marks,
//! direction class and shipped predicates. What a developer reads to
//! understand why a query can (or cannot) run online.

use crate::analysis::{AnalyzedQuery, AnalyzedRule, Step};
use std::fmt::Write as _;

/// Render the full plan of an analyzed query.
pub fn explain(query: &AnalyzedQuery) -> String {
    let mut s = String::new();
    writeln!(s, "direction: {:?}", query.direction).unwrap();
    writeln!(
        s,
        "modes: online={} layered={} vc-compatible={}",
        query.direction.supports_online(),
        query.direction.supports_layered(),
        query.direction.is_vc_compatible()
    )
    .unwrap();
    if !query.edbs.is_empty() {
        let edbs: Vec<&str> = query.edbs.iter().map(|p| p.as_str()).collect();
        writeln!(s, "reads: {}", edbs.join(", ")).unwrap();
    }
    if !query.shipped.is_empty() {
        let shipped: Vec<&str> = query.shipped.iter().map(|p| p.as_str()).collect();
        writeln!(s, "shipped with messages: {}", shipped.join(", ")).unwrap();
    }
    for (i, stratum) in query.strata.iter().enumerate() {
        writeln!(s, "stratum {i}:").unwrap();
        for &ri in stratum {
            explain_rule(&mut s, &query.rules[ri]);
        }
    }
    s
}

fn explain_rule(s: &mut String, rule: &AnalyzedRule) {
    writeln!(
        s,
        "  rule {}/{} (line {}){}:",
        rule.pred,
        rule.head_args.len(),
        rule.line,
        if rule.has_aggregate { " [aggregate]" } else { "" }
    )
    .unwrap();
    for step in &rule.steps {
        let line = match step {
            Step::Scan {
                pred, exists_only, ..
            } => {
                if *exists_only {
                    format!("semi-join {pred}")
                } else {
                    format!("scan {pred}")
                }
            }
            Step::Neg { pred, .. } => format!("check not-in {pred}"),
            Step::Assign { var, .. } => format!("assign {var}"),
            Step::Filter { op, .. } => format!("filter {op}"),
            Step::Udf { name, .. } => format!("udf {name}"),
        };
        writeln!(s, "    {line}").unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, parse, Catalog, Params, Value};

    #[test]
    fn explains_the_apt_query() {
        let src = "
            change(x, i) :- evolution(x, j, i), value(x, d1, i), value(x, d2, j), udf_diff(d1, d2, $eps).
            neighbor_change(x, i) :- receive_message(x, y, m, i), !change(y, j), j = i - 1.
            no_execute(x, i) :- !neighbor_change(x, i), superstep(x, i), i > 0.
        ";
        let q = analyze(
            &parse(src).unwrap(),
            &Catalog::standard(),
            &Params::new().with("eps", Value::Float(0.01)),
        )
        .unwrap();
        let plan = explain(&q);
        assert!(plan.contains("direction: Forward"), "{plan}");
        assert!(plan.contains("online=true"), "{plan}");
        assert!(plan.contains("shipped with messages: change"), "{plan}");
        assert!(plan.contains("stratum 0:"), "{plan}");
        assert!(plan.contains("stratum 2:"), "{plan}");
        assert!(plan.contains("udf udf_diff"), "{plan}");
        assert!(plan.contains("check not-in change"), "{plan}");
        assert!(plan.contains("assign j"), "{plan}");
    }

    #[test]
    fn marks_semi_joins() {
        let q = analyze(
            &parse("f(x, v, i) :- receive_message(x, y, m, i), f(y, w, j), value(x, v, i).")
                .unwrap(),
            &Catalog::standard(),
            &Params::new(),
        )
        .unwrap();
        let plan = explain(&q);
        assert!(plan.contains("semi-join f"), "{plan}");
        assert!(plan.contains("scan receive_message"), "{plan}");
    }
}
