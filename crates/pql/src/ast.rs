//! The PQL abstract syntax tree.

use crate::eval::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A parsed PQL program: an ordered list of rules.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

/// One Datalog rule `head :- body.` (or a fact when the body is empty).
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// The head atom (with optional aggregate arguments).
    pub head: Head,
    /// The body literals, in source order.
    pub body: Vec<Literal>,
    /// 1-based source line, for diagnostics.
    pub line: usize,
}

/// A rule head: predicate plus arguments, each either a plain term or an
/// aggregate (`count(y)`, `sum(e)`, …). The first argument is the
/// location specifier (§4.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Head {
    /// Predicate name.
    pub pred: String,
    /// Head arguments.
    pub args: Vec<HeadArg>,
}

impl Head {
    /// Positions and terms of non-aggregate arguments (the group-by key
    /// when aggregates are present).
    pub fn plain_args(&self) -> impl Iterator<Item = &Term> {
        self.args.iter().filter_map(|a| match a {
            HeadArg::Plain(t) => Some(t),
            HeadArg::Agg(_, _) => None,
        })
    }

    /// The aggregates among the head arguments.
    pub fn aggregates(&self) -> impl Iterator<Item = (AggFunc, &Term)> {
        self.args.iter().filter_map(|a| match a {
            HeadArg::Agg(f, t) => Some((*f, t)),
            HeadArg::Plain(_) => None,
        })
    }

    /// Whether any argument is an aggregate.
    pub fn has_aggregate(&self) -> bool {
        self.args.iter().any(|a| matches!(a, HeadArg::Agg(_, _)))
    }
}

/// A single head argument.
#[derive(Clone, Debug, PartialEq)]
pub enum HeadArg {
    /// An ordinary term.
    Plain(Term),
    /// An aggregate over a term, e.g. `count(y)`.
    Agg(AggFunc, Term),
}

/// Aggregation functions supported in heads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of distinct bindings.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric minimum.
    Min,
    /// Numeric maximum.
    Max,
    /// Numeric average.
    Avg,
}

impl AggFunc {
    /// Parse a (lowercased) aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// A body literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// A positive relational atom (or a UDF call — disambiguated during
    /// analysis against the UDF registry).
    Positive(Atom),
    /// A negated relational atom (`!p(...)`).
    Negated(Atom),
    /// An arithmetic comparison between two terms.
    Compare(Term, CmpOp, Term),
}

/// A predicate applied to terms.
#[derive(Clone, Debug, PartialEq)]
pub struct Atom {
    /// Predicate (or UDF) name.
    pub pred: String,
    /// Arguments; for relational predicates the first is the location.
    pub args: Vec<Term>,
}

/// Comparison operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators inside terms.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A term: variable, constant, `$parameter`, or arithmetic expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A variable (lowercase identifier).
    Var(String),
    /// A literal constant.
    Const(Value),
    /// A `$name` parameter, replaced by [`Params`] during analysis.
    Param(String),
    /// `lhs op rhs`.
    Arith(Box<Term>, ArithOp, Box<Term>),
}

impl Term {
    /// Collect the variables appearing in this term into `out`.
    pub fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Term::Var(v) => out.push(v),
            Term::Arith(l, _, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Term::Const(_) | Term::Param(_) => {}
        }
    }

    /// Convenience variable constructor.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_string())
    }
}

/// Parameter bindings for `$name` placeholders.
#[derive(Clone, Debug, Default)]
pub struct Params {
    map: HashMap<String, Value>,
}

impl Params {
    /// Empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `$name` to `value` (builder style).
    pub fn with(mut self, name: &str, value: Value) -> Self {
        self.map.insert(name.to_string(), value);
        self
    }

    /// Look up a parameter.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.map.get(name)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_helpers() {
        let head = Head {
            pred: "deg".into(),
            args: vec![
                HeadArg::Plain(Term::var("x")),
                HeadArg::Agg(AggFunc::Count, Term::var("y")),
            ],
        };
        assert!(head.has_aggregate());
        assert_eq!(head.plain_args().count(), 1);
        assert_eq!(head.aggregates().count(), 1);
    }

    #[test]
    fn collect_vars_walks_arithmetic() {
        let t = Term::Arith(
            Box::new(Term::var("i")),
            ArithOp::Sub,
            Box::new(Term::Const(Value::Int(1))),
        );
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec!["i"]);
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::from_name("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn params() {
        let p = Params::new().with("eps", Value::Float(0.01));
        assert_eq!(p.get("eps"), Some(&Value::Float(0.01)));
        assert_eq!(p.get("nope"), None);
    }
}
