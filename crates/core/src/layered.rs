//! Layered offline evaluation (§5.1).
//!
//! Directed queries evaluate over the captured provenance one layer (=
//! superstep) at a time — ascending for forward queries, descending for
//! backward ones (Lemma 5.3: at most n+1 rounds). Each round:
//!
//! 1. the layer's stored tuples are injected into their owning vertices'
//!    partitions (and then dropped — only one layer is materialized);
//! 2. every touched vertex runs its incremental local fixpoint;
//! 3. fresh tuples of shipped predicates travel one hop — to
//!    out-neighbours for forward queries, to in-neighbours for backward
//!    ones — and are joined by their receivers in the next round.
//!
//! The driver is the same per-vertex machinery as online evaluation
//! ([`crate::state::QueryState`]); only the tuple source differs (replay
//! from the store instead of live generation).

use crate::compile::CompiledQuery;
use crate::session::AriadneError;
use crate::state::QueryState;
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::{Database, Direction};
use ariadne_provenance::ProvStore;
use std::collections::BTreeSet;

/// The outcome of a layered evaluation.
#[derive(Debug)]
pub struct LayeredRun {
    /// Merged query tables across vertices.
    pub query_results: Database,
    /// Number of layers replayed.
    pub layers: u32,
    /// Total replica tuples shipped between vertices.
    pub shipped_tuples: usize,
}

/// Evaluate `query` over the captured `store` in layered fashion.
pub fn run_layered(
    graph: &Csr,
    store: &ProvStore,
    query: &CompiledQuery,
) -> Result<LayeredRun, AriadneError> {
    let direction = query.direction();
    if !direction.supports_layered() {
        return Err(AriadneError::UnsupportedMode {
            mode: "layered",
            direction,
        });
    }
    let Some(max_step) = store.max_superstep() else {
        return Ok(LayeredRun {
            query_results: Database::new(),
            layers: 0,
            shipped_tuples: 0,
        });
    };

    let ascending = direction != Direction::Backward;
    let order: Vec<u32> = if ascending {
        (0..=max_step).collect()
    } else {
        (0..=max_step).rev().collect()
    };

    let analyzed = query.query();
    let needed_statics = &analyzed.edbs;
    let shipped: Vec<&String> = analyzed.shipped.iter().collect();
    let n = graph.num_vertices();
    let mut states: Vec<QueryState> = vec![QueryState::new(); n];
    let mut pending: BTreeSet<usize> = BTreeSet::new();
    let mut shipped_tuples = 0usize;

    // Descending replay visits layer 0 last, but layer 0 carries the
    // *structural* annotations of the compact representation (static
    // relations like Query 11's `prov_edges`, graph EDBs, initial
    // values) that backward rules join at every layer. Pre-inject it:
    // sound because derivations are monotone and directed backward
    // queries are negation-free over layer data.
    let mut layer0_owners: BTreeSet<usize> = BTreeSet::new();
    if !ascending {
        for (pred, tuples) in store.layer(0).map_err(AriadneError::Store)? {
            for t in tuples {
                if let Some(v) = t.first().and_then(|v| v.as_id()) {
                    let vi = v as usize;
                    if vi < n {
                        states[vi].db.insert(&pred, t);
                        layer0_owners.insert(vi);
                    }
                }
            }
        }
    }

    let mut rounds = 0u32;
    for layer in order {
        rounds += 1;
        // 1. Inject this layer's tuples into their owners.
        let mut touched = std::mem::take(&mut pending);
        if !ascending && layer == 0 {
            // Already injected up front; just evaluate the owners.
            touched.extend(layer0_owners.iter().copied());
        } else {
            for (pred, tuples) in store.layer(layer).map_err(AriadneError::Store)? {
                for t in tuples {
                    let Some(v) = t.first().and_then(|v| v.as_id()) else {
                        continue;
                    };
                    let vi = v as usize;
                    if vi < n {
                        states[vi].db.insert(&pred, t);
                        touched.insert(vi);
                    }
                }
            }
        }

        // 2. Evaluate touched vertices; 3. ship their fresh tuples.
        for &vi in &touched {
            let vertex = VertexId(vi as u64);
            states[vi].inject_statics(graph, vertex, needed_statics);
            states[vi]
                .evaluate(query.evaluator(), vertex)
                .map_err(AriadneError::Pql)?;
            if shipped.is_empty() {
                continue;
            }
            let fresh = states[vi].take_shippable(shipped.iter().map(|s| s.as_str()), vertex);
            if fresh.is_empty() {
                continue;
            }
            // Route replicas over both edge directions: analytics like
            // WCC message their in-neighbours too, so the communication
            // graph is a superset of the out-adjacency. Shipping to a
            // superset of the true routes is always sound (replicas are
            // true tuples at their true locations); receivers whose
            // message predicates don't join them simply ignore them.
            let mut neighbors: Vec<VertexId> = graph
                .out_neighbors(vertex)
                .iter()
                .chain(graph.in_neighbors(vertex))
                .copied()
                .collect();
            neighbors.sort_unstable();
            neighbors.dedup();
            for (pred, tuples) in &fresh {
                shipped_tuples += tuples.len() * neighbors.len();
                for &nb in &neighbors {
                    states[nb.index()].inject(pred, tuples.iter().cloned());
                    pending.insert(nb.index());
                }
            }
        }
    }

    // Final flush: vertices holding just-delivered replicas evaluate once
    // more (their joins may close without any further layer input).
    for vi in std::mem::take(&mut pending) {
        let vertex = VertexId(vi as u64);
        states[vi]
            .evaluate(query.evaluator(), vertex)
            .map_err(AriadneError::Pql)?;
    }

    // Merge IDB results.
    let mut merged = Database::new();
    for state in &states {
        for (name, rel) in state.db.iter() {
            if analyzed.idbs.contains_key(name) {
                for t in rel.scan() {
                    merged.insert(name, t.clone());
                }
            }
        }
    }
    Ok(LayeredRun {
        query_results: merged,
        layers: rounds,
        shipped_tuples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::session::AriadneError;
    use ariadne_graph::generators::regular::path;
    use ariadne_pql::{Params, Value};
    use ariadne_provenance::{ProvStore, StoreConfig};

    #[test]
    fn empty_store_returns_empty_results() {
        let g = path(3);
        let store = ProvStore::new(StoreConfig::in_memory());
        let q = compile("p(x, i) :- superstep(x, i).", Params::new()).unwrap();
        let run = run_layered(&g, &store, &q).unwrap();
        assert_eq!(run.layers, 0);
        assert_eq!(run.shipped_tuples, 0);
        assert!(run.query_results.is_empty());
    }

    #[test]
    fn mixed_query_rejected() {
        let g = path(3);
        let store = ProvStore::new(StoreConfig::in_memory());
        let q = compile(
            "t(y, i) :- superstep(y, i).
             s(z, i) :- superstep(z, i).
             r(x, i) :- t(y, j), receive_message(x, y, m, i), s(z, k), send_message(x, z, m, i).",
            Params::new(),
        )
        .unwrap();
        match run_layered(&g, &store, &q) {
            Err(AriadneError::UnsupportedMode { mode, .. }) => assert_eq!(mode, "layered"),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn local_query_over_replayed_layers() {
        // Hand-build a store: vertex 1 active at supersteps 0 and 2.
        let g = path(3);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![vec![Value::Id(1), Value::Int(0)]]).unwrap();
        store.ingest(2, "superstep", vec![vec![Value::Id(1), Value::Int(2)]]).unwrap();
        let q = compile("active(x, i) :- superstep(x, i).", Params::new()).unwrap();
        let run = run_layered(&g, &store, &q).unwrap();
        assert_eq!(run.layers, 3); // layers 0, 1 (empty), 2
        assert_eq!(run.query_results.len("active"), 2);
    }

    #[test]
    fn out_of_range_locations_skipped() {
        // Tuples for vertices outside the graph are ignored, not a panic.
        let g = path(2);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![vec![Value::Id(99), Value::Int(0)]]).unwrap();
        let q = compile("active(x, i) :- superstep(x, i).", Params::new()).unwrap();
        let run = run_layered(&g, &store, &q).unwrap();
        assert_eq!(run.query_results.len("active"), 0);
    }
}
