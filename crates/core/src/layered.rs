//! Layered offline evaluation (§5.1), parallelized.
//!
//! Directed queries evaluate over the captured provenance one layer (=
//! superstep) at a time — ascending for forward queries, descending for
//! backward ones (Lemma 5.3: at most n+1 layer rounds). Each round:
//!
//! 1. the layer's stored tuples are injected into their owning vertices'
//!    partitions (and then dropped — only one layer is materialized).
//!    The store read is **predicate-filtered**: segments whose predicate
//!    the compiled query never references are skipped without a decode
//!    or (for spilled segments) a disk read
//!    ([`ProvStore::layer_filtered`]);
//! 2. every touched vertex runs its incremental local fixpoint;
//! 3. fresh tuples of shipped predicates travel one hop — to
//!    out-neighbours for forward queries, to in-neighbours for backward
//!    ones — and are joined by their receivers in the next round.
//!
//! After the last layer a **fixpoint flush** keeps evaluating and
//! shipping until no vertex holds an unprocessed replica: multi-hop
//! joins that close in the final layer still need their replicas to
//! travel the remaining hops. (The previous implementation ran exactly
//! one post-layer evaluation pass and silently dropped any shippable
//! tuples it derived, so such joins returned incomplete results.)
//!
//! # Parallelism and determinism
//!
//! Each round's touched set is partitioned into contiguous vertex-range
//! chunks by the degree-weighted [`ChunkTable`] (the same layout the
//! engine's flat message plane uses) and processed by a worker pool with
//! chunk-granular work stealing. Rounds are bulk-synchronous: workers
//! record the replicas a vertex ships into a per-chunk outbox, and the
//! merge step applies all outboxes *after* the round, in chunk order.
//! Because chunks are contiguous ascending ranges, chunk order **is**
//! ascending source-vertex order regardless of the chunk layout — so the
//! injection sequence into every receiving partition, and therefore
//! every relation's insertion order and every counter, is identical at
//! any thread count. The sequential path runs the same round protocol
//! (one worker, same outboxes), so `threads = 1` is the reference, not a
//! special case.
//!
//! Vertex states live in a sparse map keyed by the vertices actually
//! touched — replaying a small capture over a big graph no longer
//! allocates a [`QueryState`] per graph vertex.
//!
//! The driver is the same per-vertex machinery as online evaluation
//! ([`crate::state::QueryState`]); only the tuple source differs (replay
//! from the store instead of live generation).
//!
//! [`ProvStore::layer_filtered`]: ariadne_provenance::ProvStore::layer_filtered

use crate::columns::column_masks;
use crate::compile::CompiledQuery;
use crate::session::AriadneError;
use crate::state::QueryState;
use ariadne_graph::{ChunkTable, Csr, VertexId};
use ariadne_obs::trace::{self, Level};
use ariadne_pql::{Database, Direction, EvalStats, Evaluator, PqlError, Tuple};
use ariadne_provenance::{Degradation, LayerFilter, ProvStore, ReadPolicy};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// Cached global-registry handles for layered-replay metrics. Round,
/// tuple and vertex counts are functions of the captured provenance and
/// the query alone (the BSP round protocol makes them thread-invariant),
/// so they are flagged deterministic; phase timings are wall-clock and
/// are not.
mod obs_handles {
    use ariadne_obs::metrics::{Counter, Histogram};
    use std::sync::OnceLock;

    macro_rules! layered_counter {
        ($fn_name:ident, $name:literal, $help:literal, $det:expr) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().counter($name, $help, $det))
            }
        };
    }

    macro_rules! layered_histogram {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Histogram {
                static H: OnceLock<Histogram> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().histogram($name, $help, false))
            }
        };
    }

    layered_histogram!(
        query_latency,
        "layered_query_latency_ns",
        "end-to-end wall-clock nanoseconds per layered query replay"
    );
    layered_histogram!(
        inject_latency,
        "layered_inject_latency_ns",
        "per-query wall-clock nanoseconds reading and injecting layers"
    );
    layered_histogram!(
        eval_latency,
        "layered_eval_latency_ns",
        "per-query wall-clock nanoseconds in evaluation rounds"
    );
    layered_histogram!(
        merge_latency,
        "layered_merge_latency_ns",
        "per-query wall-clock nanoseconds merging outboxes and results"
    );

    layered_counter!(
        rounds,
        "layered_rounds_total",
        "layer rounds replayed by layered evaluation",
        true
    );
    layered_counter!(
        flush_rounds,
        "layered_flush_rounds_total",
        "post-layer fixpoint flush rounds until shipped replicas drain",
        true
    );
    layered_counter!(
        injected_tuples,
        "layered_injected_tuples_total",
        "stored tuples injected into vertex partitions during replay",
        true
    );
    layered_counter!(
        evaluated_vertices,
        "layered_evaluated_vertices_total",
        "vertex-local fixpoint evaluations across all rounds",
        true
    );
    layered_counter!(
        shipped_tuples,
        "layered_shipped_tuples_total",
        "replica tuples shipped one hop between vertices",
        true
    );
    layered_counter!(
        phase_inject_ns,
        "layered_phase_inject_ns_total",
        "nanoseconds spent reading and injecting layers (wall clock)",
        false
    );
    layered_counter!(
        phase_eval_ns,
        "layered_phase_eval_ns_total",
        "nanoseconds spent in per-vertex evaluation rounds (wall clock)",
        false
    );
    layered_counter!(
        phase_merge_ns,
        "layered_phase_merge_ns_total",
        "nanoseconds spent merging per-chunk outboxes (wall clock)",
        false
    );
}

/// Tuning knobs for layered evaluation. The defaults reproduce the
/// sequential reference; [`crate::session::Ariadne`] passes its engine
/// thread count through.
#[derive(Clone, Debug)]
pub struct LayeredConfig {
    /// Worker threads per round. `1` runs the same round protocol on
    /// the calling thread.
    pub threads: usize,
    /// Chunks per worker thread: more chunks give the work-stealing
    /// loop finer grains to balance skewed touched sets with.
    pub chunks_per_thread: usize,
    /// Restrict layer reads to the predicates the query references
    /// (EDBs plus IDB names, so replayed persisted derivations still
    /// inject). Skipped segments are never decoded or read from disk.
    pub prune: bool,
    /// Column-selective replay: derive per-predicate keep-masks from the
    /// query ([`crate::columns::column_masks`]) and skip stored columns
    /// the query provably never observes. v2 segments skip the encoded
    /// column blocks wholesale; v1 records skip per value. Result sets
    /// are unchanged (masked positions decode as `Unit`, which only
    /// singleton variables ever bind); intermediate [`EvalStats`] may
    /// differ from an unprojected run because dropped columns can
    /// collapse tuples that differed only there.
    pub project: bool,
    /// How layer reads treat damaged store data. The default
    /// [`ReadPolicy::Strict`] fails the replay typed on any corruption,
    /// quarantined segment, or poisoned store;
    /// [`ReadPolicy::Degraded`] replays what survives and reports the
    /// exact loss on [`LayeredRun::degradation`] — partial results,
    /// always labelled, never silently wrong.
    pub read_policy: ReadPolicy,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            threads: 1,
            chunks_per_thread: 4,
            prune: true,
            project: true,
            read_policy: ReadPolicy::Strict,
        }
    }
}

impl LayeredConfig {
    /// A config for `threads` workers, other knobs at their defaults.
    pub fn parallel(threads: usize) -> Self {
        LayeredConfig {
            threads: threads.max(1),
            ..LayeredConfig::default()
        }
    }
}

/// The outcome of a layered evaluation.
#[derive(Debug)]
pub struct LayeredRun {
    /// Merged query tables across vertices.
    pub query_results: Database,
    /// Number of layer rounds replayed (Lemma 5.3 bound: `max_step + 1`;
    /// the fixpoint flush is counted separately).
    pub layers: u32,
    /// Post-layer fixpoint rounds until the pending set drained.
    pub flush_rounds: u32,
    /// Total replica tuples shipped between vertices.
    pub shipped_tuples: usize,
    /// Stored tuples injected into vertex partitions.
    pub injected_tuples: usize,
    /// Vertex-local fixpoint evaluations across all rounds.
    pub evaluated_vertices: usize,
    /// Store segments decoded for this replay.
    pub segments_read: usize,
    /// Store segments the predicate filter skipped (no decode, and for
    /// spilled segments no disk read).
    pub segments_skipped: usize,
    /// Encoded store bytes decoded.
    pub bytes_read: usize,
    /// Encoded store bytes the filter avoided touching.
    pub bytes_skipped: usize,
    /// Stored column blocks skipped by column-selective replay (their
    /// segments were decoded, the masked columns were not materialized).
    pub cols_skipped: usize,
    /// Encoded bytes of those skipped column blocks.
    pub col_bytes_skipped: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Query-evaluation counters summed in chunk order
    /// (thread-invariant).
    pub query_stats: EvalStats,
    /// Wall-clock nanoseconds reading and injecting layers.
    pub phase_inject_ns: u64,
    /// Wall-clock nanoseconds in evaluation rounds (workers included).
    pub phase_eval_ns: u64,
    /// Wall-clock nanoseconds merging per-chunk outboxes.
    pub phase_merge_ns: u64,
    /// Damage a [`ReadPolicy::Degraded`] replay skipped over, summed
    /// across every layer read. Always clean under
    /// [`ReadPolicy::Strict`] (damage errors out instead).
    pub degradation: Degradation,
    /// The inclusive layer range this run actually replayed, after
    /// clamping any requested range to the store's layers. `(0, 0)` with
    /// `layers == 0` means nothing was replayed. Cache keys built over
    /// partial replays should use this, not the requested range, so
    /// `0..=u32::MAX` and the store's true extent share one key.
    pub layer_range: (u32, u32),
}

impl LayeredRun {
    fn empty(threads: usize) -> Self {
        LayeredRun {
            query_results: Database::new(),
            layers: 0,
            flush_rounds: 0,
            shipped_tuples: 0,
            injected_tuples: 0,
            evaluated_vertices: 0,
            segments_read: 0,
            segments_skipped: 0,
            bytes_read: 0,
            bytes_skipped: 0,
            cols_skipped: 0,
            col_bytes_skipped: 0,
            threads,
            query_stats: EvalStats::default(),
            phase_inject_ns: 0,
            phase_eval_ns: 0,
            phase_merge_ns: 0,
            degradation: Degradation::default(),
            layer_range: (0, 0),
        }
    }
}

/// What one vertex shipped in a round: its fresh tuples of shipped
/// predicates and the (sorted, deduplicated) neighbours they travel to.
struct ShipEntry {
    neighbors: Vec<VertexId>,
    fresh: Vec<(String, Vec<Tuple>)>,
}

/// Everything a worker produced for one chunk of the touched set, in
/// ascending vertex order. Merged strictly in chunk order.
struct ChunkOutput {
    states: Vec<(usize, QueryState)>,
    ship: Vec<ShipEntry>,
    evaluated: usize,
    shipped: usize,
    stats: EvalStats,
}

/// Evaluate `query` over the captured `store` in layered fashion with
/// the default (sequential) configuration.
pub fn run_layered(
    graph: &Csr,
    store: &ProvStore,
    query: &CompiledQuery,
) -> Result<LayeredRun, AriadneError> {
    run_layered_with(graph, store, query, &LayeredConfig::default())
}

/// Evaluate `query` over the captured `store` in layered fashion:
/// parallel chunked replay with predicate-filtered layer reads. Results
/// are bit-identical at every thread count (see the module docs for the
/// argument).
pub fn run_layered_with(
    graph: &Csr,
    store: &ProvStore,
    query: &CompiledQuery,
    config: &LayeredConfig,
) -> Result<LayeredRun, AriadneError> {
    run_layered_range(graph, store, query, config, None)
}

/// Re-entrant layered evaluation over an inclusive layer sub-range.
///
/// `layers = Some((lo, hi))` restricts the replay to stored layers in
/// `lo..=hi` (clamped to the store's extent; an empty intersection
/// returns an empty run). `None` replays every layer —
/// [`run_layered_with`] is exactly that. This is the serving plane's
/// entry point: a long-lived daemon can resume a query from a layer
/// offset, and a replay cache can key results on the *effective* range
/// ([`LayeredRun::layer_range`]) rather than on whatever the client
/// asked for.
///
/// Within the range the round protocol is unchanged, so results remain
/// bit-identical at every thread count. A sub-range replay answers the
/// query *over that slice of the capture*: for backward queries the
/// layer-0 structural pre-injection only happens when layer 0 is inside
/// the range, so compact-representation captures should include layer 0
/// when they need their static relations.
pub fn run_layered_range(
    graph: &Csr,
    store: &ProvStore,
    query: &CompiledQuery,
    config: &LayeredConfig,
    layers: Option<(u32, u32)>,
) -> Result<LayeredRun, AriadneError> {
    let run_started = Instant::now();
    let direction = query.direction();
    if !direction.supports_layered() {
        return Err(AriadneError::UnsupportedMode {
            mode: "layered",
            direction,
        });
    }
    let threads = config.threads.max(1);
    let Some(max_step) = store.max_superstep() else {
        return Ok(LayeredRun::empty(threads));
    };
    let (layer_lo, layer_hi) = match layers {
        Some((lo, hi)) => (lo, hi.min(max_step)),
        None => (0, max_step),
    };
    if layer_lo > layer_hi {
        return Ok(LayeredRun::empty(threads));
    }

    let ascending = direction != Direction::Backward;
    let analyzed = query.query();
    // Prune to every predicate the query can join: its EDBs plus its
    // IDB names (a capture may have persisted derived tuples that a
    // recursive replay re-reads). Anything else in the store is dead
    // weight for this query and is skipped unread. On top of the
    // predicate allow-set, column-selective projection skips stored
    // columns the query provably never observes (see
    // [`crate::columns`]).
    let mut filter = if config.prune {
        let mut preds = analyzed.edbs.clone();
        preds.extend(analyzed.idbs.keys().cloned());
        LayerFilter::for_preds(preds)
    } else {
        LayerFilter::all()
    };
    if config.project {
        for (pred, mask) in column_masks(analyzed) {
            filter = filter.with_mask(&pred, mask);
        }
    }

    let chunks = threads.saturating_mul(config.chunks_per_thread.max(1)).max(1);
    let mut driver = Driver {
        graph,
        evaluator: query.evaluator().as_ref(),
        needed_statics: &analyzed.edbs,
        shipped_preds: analyzed.shipped.iter().cloned().collect(),
        table: ChunkTable::degree_weighted(graph, chunks, 1),
        threads,
        states: HashMap::new(),
        pending: BTreeSet::new(),
        run: LayeredRun::empty(threads),
    };

    driver.run.layer_range = (layer_lo, layer_hi);
    let span = trace::span(
        Level::Debug,
        "layered",
        "run",
        &[
            ("max_step", u64::from(max_step).into()),
            ("layer_lo", u64::from(layer_lo).into()),
            ("layer_hi", u64::from(layer_hi).into()),
            ("threads", threads.into()),
            ("ascending", ascending.into()),
        ],
    );

    // Descending replay visits layer 0 last, but layer 0 carries the
    // *structural* annotations of the compact representation (static
    // relations like Query 11's `prov_edges`, graph EDBs, initial
    // values) that backward rules join at every layer. Pre-inject it:
    // sound because derivations are monotone and directed backward
    // queries are negation-free over layer data.
    let mut layer0_owners: BTreeSet<usize> = BTreeSet::new();
    if !ascending && layer_lo == 0 {
        let t0 = Instant::now();
        let read = store
            .layer_read_with(0, &filter, config.read_policy)
            .map_err(AriadneError::Store)?;
        driver.account_read(&read);
        for (pred, tuples) in read.tuples {
            for t in tuples {
                if let Some(vi) = driver.owner(&t) {
                    driver.run.injected_tuples += 1;
                    driver.states.entry(vi).or_default().db.insert(&pred, t);
                    layer0_owners.insert(vi);
                }
            }
        }
        driver.run.phase_inject_ns += t0.elapsed().as_nanos() as u64;
    }

    let order: Box<dyn Iterator<Item = u32>> = if ascending {
        Box::new(layer_lo..=layer_hi)
    } else {
        Box::new((layer_lo..=layer_hi).rev())
    };
    for layer in order {
        driver.run.layers += 1;
        obs_handles::rounds().inc();
        let _layer_span = trace::span(
            Level::Trace,
            "layered",
            "layer",
            &[("layer", u64::from(layer).into())],
        );
        // 1. Inject this layer's tuples into their owners.
        let t0 = Instant::now();
        let mut touched = std::mem::take(&mut driver.pending);
        if !ascending && layer == 0 {
            // Already injected up front; just evaluate the owners.
            touched.extend(layer0_owners.iter().copied());
        } else {
            let read = store
                .layer_read_with(layer, &filter, config.read_policy)
                .map_err(AriadneError::Store)?;
            driver.account_read(&read);
            for (pred, tuples) in read.tuples {
                for t in tuples {
                    if let Some(vi) = driver.owner(&t) {
                        driver.run.injected_tuples += 1;
                        driver.states.entry(vi).or_default().db.insert(&pred, t);
                        touched.insert(vi);
                    }
                }
            }
        }
        driver.run.phase_inject_ns += t0.elapsed().as_nanos() as u64;

        // 2. Evaluate touched vertices; 3. ship their fresh tuples into
        // the next round's pending set.
        driver.round(touched)?;
    }

    // Fixpoint flush: vertices holding just-delivered replicas keep
    // evaluating *and shipping* until the pending set drains — a
    // multi-hop join closing in the last layer still needs its replicas
    // to travel the remaining hops. Terminates because shipping marks
    // advance monotonically: each (vertex, predicate, tuple) ships at
    // most once, so rounds without fresh derivations drain `pending`.
    while !driver.pending.is_empty() {
        driver.run.flush_rounds += 1;
        obs_handles::flush_rounds().inc();
        let touched = std::mem::take(&mut driver.pending);
        driver.round(touched)?;
    }

    // Merge IDB results in ascending vertex order.
    let _merge_span = trace::span(Level::Trace, "layered", "merge_results", &[]);
    let t0 = Instant::now();
    let mut merged = Database::new();
    let mut owners: Vec<&usize> = driver.states.keys().collect();
    owners.sort_unstable();
    for vi in owners {
        let state = &driver.states[vi];
        for (name, rel) in state.db.iter() {
            if analyzed.idbs.contains_key(name) {
                for t in rel.scan() {
                    merged.insert(name, t.clone());
                }
            }
        }
    }
    driver.run.phase_merge_ns += t0.elapsed().as_nanos() as u64;
    drop(_merge_span);

    let mut run = driver.run;
    run.query_results = merged;
    obs_handles::injected_tuples().add(run.injected_tuples as u64);
    obs_handles::evaluated_vertices().add(run.evaluated_vertices as u64);
    obs_handles::shipped_tuples().add(run.shipped_tuples as u64);
    obs_handles::phase_inject_ns().add(run.phase_inject_ns);
    obs_handles::phase_eval_ns().add(run.phase_eval_ns);
    obs_handles::phase_merge_ns().add(run.phase_merge_ns);
    obs_handles::inject_latency().record(run.phase_inject_ns);
    obs_handles::eval_latency().record(run.phase_eval_ns);
    obs_handles::merge_latency().record(run.phase_merge_ns);
    obs_handles::query_latency().record(run_started.elapsed().as_nanos() as u64);
    drop(span);
    trace::event(
        Level::Debug,
        "layered",
        "run_done",
        &[
            ("layers", u64::from(run.layers).into()),
            ("flush_rounds", u64::from(run.flush_rounds).into()),
            ("shipped_tuples", run.shipped_tuples.into()),
            ("evaluated_vertices", run.evaluated_vertices.into()),
            ("segments_read", run.segments_read.into()),
            ("segments_skipped", run.segments_skipped.into()),
        ],
    );
    Ok(run)
}

/// The per-run replay state shared by layer rounds and flush rounds.
struct Driver<'a> {
    graph: &'a Csr,
    evaluator: &'a Evaluator,
    needed_statics: &'a BTreeSet<String>,
    /// Shipped predicates in `BTreeSet` (sorted) order — fixed, so every
    /// vertex takes and injects them in the same predicate order.
    shipped_preds: Vec<String>,
    table: ChunkTable,
    threads: usize,
    /// Sparse vertex states, keyed by touched vertices only.
    states: HashMap<usize, QueryState>,
    /// Vertices holding replicas delivered this round, to evaluate next
    /// round.
    pending: BTreeSet<usize>,
    run: LayeredRun,
}

impl Driver<'_> {
    /// The in-range owning vertex of a stored tuple, if any (tuples for
    /// vertices outside the graph are skipped, not a panic).
    fn owner(&self, t: &[ariadne_pql::Value]) -> Option<usize> {
        let v = t.first().and_then(|v| v.as_id())?;
        let vi = v as usize;
        (vi < self.graph.num_vertices()).then_some(vi)
    }

    fn account_read(&mut self, read: &ariadne_provenance::LayerRead) {
        self.run.segments_read += read.segments_read;
        self.run.segments_skipped += read.segments_skipped;
        self.run.bytes_read += read.bytes_read;
        self.run.bytes_skipped += read.bytes_skipped;
        self.run.cols_skipped += read.cols_skipped;
        self.run.col_bytes_skipped += read.col_bytes_skipped;
        self.run.degradation.absorb(&read.degradation);
    }

    /// One bulk-synchronous evaluation round over `touched`: partition
    /// by chunk, evaluate chunks (in parallel when configured), then
    /// merge outboxes in chunk order — which is ascending source-vertex
    /// order, the determinism anchor.
    fn round(&mut self, touched: BTreeSet<usize>) -> Result<(), AriadneError> {
        if touched.is_empty() {
            return Ok(());
        }
        let t0 = Instant::now();
        // Group the (ascending) touched set by chunk; contiguous chunk
        // ranges make this a single linear sweep.
        let mut groups: Vec<Vec<(usize, QueryState)>> = Vec::new();
        let mut current_chunk = usize::MAX;
        for vi in touched {
            let c = self.table.chunk_of(vi);
            if c != current_chunk {
                current_chunk = c;
                groups.push(Vec::new());
            }
            let state = self.states.remove(&vi).unwrap_or_default();
            groups.last_mut().expect("group just pushed").push((vi, state));
        }

        let outputs = if self.threads <= 1 || groups.len() <= 1 {
            let mut outs = Vec::with_capacity(groups.len());
            for group in groups {
                outs.push(self.process_group(group).map_err(AriadneError::Pql)?);
            }
            outs
        } else {
            self.process_groups_parallel(groups)
                .map_err(AriadneError::Pql)?
        };
        self.run.phase_eval_ns += t0.elapsed().as_nanos() as u64;

        // Merge in chunk order = ascending source-vertex order. All
        // states go back into the map *before* any injection: a shipped
        // replica may target a vertex evaluated this round, and
        // injecting into a fresh default entry would lose its state when
        // the chunk re-insert arrived later.
        let t1 = Instant::now();
        for out in &outputs {
            self.run.evaluated_vertices += out.evaluated;
            self.run.shipped_tuples += out.shipped;
            self.run.query_stats.merge(&out.stats);
        }
        let mut ships = Vec::with_capacity(outputs.len());
        for out in outputs {
            for (vi, state) in out.states {
                self.states.insert(vi, state);
            }
            ships.push(out.ship);
        }
        for ship in ships {
            for entry in ship {
                for (pred, tuples) in &entry.fresh {
                    for &nb in &entry.neighbors {
                        self.states
                            .entry(nb.index())
                            .or_default()
                            .inject(pred, tuples.iter().cloned());
                        self.pending.insert(nb.index());
                    }
                }
            }
        }
        self.run.phase_merge_ns += t1.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Evaluate one chunk's vertices in ascending order, recording what
    /// each ships into the chunk outbox instead of injecting in place
    /// (rounds are bulk-synchronous).
    fn process_group(
        &self,
        group: Vec<(usize, QueryState)>,
    ) -> Result<ChunkOutput, PqlError> {
        process_group(
            self.graph,
            self.evaluator,
            self.needed_statics,
            &self.shipped_preds,
            group,
        )
    }

    /// Work-stealing worker pool over the chunk groups: each worker
    /// claims the next unprocessed group. Outputs land in per-group
    /// slots, so merge order is chunk order no matter which worker
    /// processed what.
    fn process_groups_parallel(
        &self,
        groups: Vec<Vec<(usize, QueryState)>>,
    ) -> Result<Vec<ChunkOutput>, PqlError> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        /// A chunk group handed to whichever worker claims it.
        type GroupCell = Mutex<Option<Vec<(usize, QueryState)>>>;

        let inputs: Vec<GroupCell> = groups.into_iter().map(|g| Mutex::new(Some(g))).collect();
        let outputs: Vec<Mutex<Option<Result<ChunkOutput, PqlError>>>> =
            (0..inputs.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(inputs.len());
        // Capture only `Sync` borrows in the worker closure: `Driver`
        // itself holds `QueryState`s (interior-mutable relation indexes),
        // which are `Send` — moved through the input cells — but not
        // `Sync`.
        let (graph, evaluator) = (self.graph, self.evaluator);
        let (needed_statics, shipped_preds) = (self.needed_statics, &self.shipped_preds);
        // Workers carry the caller's span context across the thread
        // boundary, so per-chunk spans hang off the enclosing layer
        // span in the drained trace tree.
        let ctx = trace::current_context();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _ctx = ctx.enter();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= inputs.len() {
                            break;
                        }
                        let group = inputs[idx]
                            .lock()
                            .expect("input lock")
                            .take()
                            .expect("group claimed once");
                        let _chunk_span = trace::span(
                            Level::Trace,
                            "layered",
                            "chunk",
                            &[("chunk", idx.into()), ("vertices", group.len().into())],
                        );
                        let result =
                            process_group(graph, evaluator, needed_statics, shipped_preds, group);
                        *outputs[idx].lock().expect("output lock") = Some(result);
                    }
                });
            }
        });
        outputs
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("output lock")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

/// The chunk evaluation kernel (free function so worker threads can call
/// it with only `Sync` borrows).
fn process_group(
    graph: &Csr,
    evaluator: &Evaluator,
    needed_statics: &BTreeSet<String>,
    shipped_preds: &[String],
    group: Vec<(usize, QueryState)>,
) -> Result<ChunkOutput, PqlError> {
    let mut out = ChunkOutput {
        states: Vec::with_capacity(group.len()),
        ship: Vec::new(),
        evaluated: 0,
        shipped: 0,
        stats: EvalStats::default(),
    };
    for (vi, mut state) in group {
        let vertex = VertexId(vi as u64);
        state.inject_statics(graph, vertex, needed_statics);
        state.evaluate_stats(evaluator, vertex, &mut out.stats)?;
        out.evaluated += 1;
        if !shipped_preds.is_empty() {
            let fresh = state.take_shippable(shipped_preds.iter(), vertex);
            if !fresh.is_empty() {
                // Route replicas over both edge directions: analytics
                // like WCC message their in-neighbours too, so the
                // communication graph is a superset of the
                // out-adjacency. Shipping to a superset of the true
                // routes is always sound (replicas are true tuples at
                // their true locations); receivers whose message
                // predicates don't join them simply ignore them.
                let mut neighbors: Vec<VertexId> = graph
                    .out_neighbors(vertex)
                    .iter()
                    .chain(graph.in_neighbors(vertex))
                    .copied()
                    .collect();
                neighbors.sort_unstable();
                neighbors.dedup();
                out.shipped += fresh
                    .iter()
                    .map(|(_, t)| t.len() * neighbors.len())
                    .sum::<usize>();
                out.ship.push(ShipEntry { neighbors, fresh });
            }
        }
        out.states.push((vi, state));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, compile_with};
    use crate::session::AriadneError;
    use ariadne_graph::generators::regular::path;
    use ariadne_pql::{Catalog, Params, UdfRegistry, Value};
    use ariadne_provenance::{ProvStore, StoreConfig};

    /// The standard catalog plus a test-local EDB predicate.
    fn catalog_with(pred: &str, arity: usize) -> Catalog {
        let mut c = Catalog::standard();
        c.register(pred, arity);
        c
    }

    #[test]
    fn empty_store_returns_empty_results() {
        let g = path(3);
        let store = ProvStore::new(StoreConfig::in_memory());
        let q = compile("p(x, i) :- superstep(x, i).", Params::new()).unwrap();
        let run = run_layered(&g, &store, &q).unwrap();
        assert_eq!(run.layers, 0);
        assert_eq!(run.flush_rounds, 0);
        assert_eq!(run.shipped_tuples, 0);
        assert!(run.query_results.is_empty());
    }

    #[test]
    fn mixed_query_rejected() {
        let g = path(3);
        let store = ProvStore::new(StoreConfig::in_memory());
        let q = compile(
            "t(y, i) :- superstep(y, i).
             s(z, i) :- superstep(z, i).
             r(x, i) :- t(y, j), receive_message(x, y, m, i), s(z, k), send_message(x, z, m, i).",
            Params::new(),
        )
        .unwrap();
        match run_layered(&g, &store, &q) {
            Err(AriadneError::UnsupportedMode { mode, .. }) => assert_eq!(mode, "layered"),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn local_query_over_replayed_layers() {
        // Hand-build a store: vertex 1 active at supersteps 0 and 2.
        let g = path(3);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![vec![Value::Id(1), Value::Int(0)]]).unwrap();
        store.ingest(2, "superstep", vec![vec![Value::Id(1), Value::Int(2)]]).unwrap();
        let q = compile("active(x, i) :- superstep(x, i).", Params::new()).unwrap();
        let run = run_layered(&g, &store, &q).unwrap();
        assert_eq!(run.layers, 3); // layers 0, 1 (empty), 2
        assert_eq!(run.query_results.len("active"), 2);
    }

    #[test]
    fn out_of_range_locations_skipped() {
        // Tuples for vertices outside the graph are ignored, not a panic.
        let g = path(2);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![vec![Value::Id(99), Value::Int(0)]]).unwrap();
        let q = compile("active(x, i) :- superstep(x, i).", Params::new()).unwrap();
        let run = run_layered(&g, &store, &q).unwrap();
        assert_eq!(run.query_results.len("active"), 0);
    }

    /// The re-entrant range entry point replays exactly the requested
    /// layer slice: a full-range call equals `run_layered_with`, a
    /// sub-range only sees that slice's tuples, an out-of-extent range
    /// clamps, and a disjoint range is an empty run.
    #[test]
    fn layer_range_replay_is_reentrant() {
        let g = path(3);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        for s in 0..4u32 {
            store
                .ingest(s, "superstep", vec![vec![Value::Id(1), Value::Int(s as i64)]])
                .unwrap();
        }
        let q = compile("active(x, i) :- superstep(x, i).", Params::new()).unwrap();

        let full = run_layered(&g, &store, &q).unwrap();
        assert_eq!(full.layer_range, (0, 3));

        let also_full =
            run_layered_range(&g, &store, &q, &LayeredConfig::default(), Some((0, 99))).unwrap();
        assert_eq!(also_full.layer_range, (0, 3), "range clamps to the extent");
        assert_eq!(
            also_full.query_results.sorted("active"),
            full.query_results.sorted("active")
        );

        let slice =
            run_layered_range(&g, &store, &q, &LayeredConfig::default(), Some((1, 2))).unwrap();
        assert_eq!(slice.layer_range, (1, 2));
        assert_eq!(slice.layers, 2);
        assert_eq!(slice.query_results.len("active"), 2, "layers 1 and 2 only");

        let empty =
            run_layered_range(&g, &store, &q, &LayeredConfig::default(), Some((7, 9))).unwrap();
        assert_eq!(empty.layers, 0);
        assert!(empty.query_results.is_empty());
    }

    #[test]
    fn pruning_skips_unreferenced_predicates() {
        let g = path(3);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![vec![Value::Id(1), Value::Int(0)]]).unwrap();
        store
            .ingest(0, "value", vec![vec![Value::Id(1), Value::Float(0.5), Value::Int(0)]])
            .unwrap();
        store
            .ingest(
                0,
                "send_message",
                vec![vec![Value::Id(1), Value::Id(2), Value::Float(0.5), Value::Int(0)]],
            )
            .unwrap();
        let q = compile("active(x, i) :- superstep(x, i).", Params::new()).unwrap();

        let pruned = run_layered(&g, &store, &q).unwrap();
        assert_eq!(pruned.segments_read, 1, "only superstep decoded");
        assert_eq!(pruned.segments_skipped, 2);
        assert!(pruned.bytes_skipped > 0);

        let full = run_layered_with(
            &g,
            &store,
            &q,
            &LayeredConfig {
                prune: false,
                ..LayeredConfig::default()
            },
        )
        .unwrap();
        assert_eq!(full.segments_read, 3);
        assert_eq!(full.segments_skipped, 0);
        assert_eq!(
            pruned.query_results.sorted("active"),
            full.query_results.sorted("active"),
            "pruning must not change results"
        );
    }

    /// Regression (the PR's foregrounded bug): a 2-hop backward chain
    /// whose inputs land in the *last replayed* layer. Descending replay
    /// visits layer 0 last; `trace` must then propagate hop by hop
    /// through the flush — the old single-pass flush evaluated once,
    /// derived the first hop's replica, and dropped it, so the chain
    /// never closed.
    #[test]
    fn two_hop_chain_closing_in_last_layer_completes() {
        // path(4): 0 -> 1 -> 2 -> 3. Seed `mark` at vertex 3; trace
        // follows send_message edges backward: 2, then 1, then 0.
        let g = path(4);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        for (src, dst) in [(0u64, 1u64), (1, 2), (2, 3)] {
            store
                .ingest(
                    0,
                    "send_message",
                    vec![vec![
                        Value::Id(src),
                        Value::Id(dst),
                        Value::Float(1.0),
                        Value::Int(0),
                    ]],
                )
                .unwrap();
        }
        store.ingest(0, "mark", vec![vec![Value::Id(3), Value::Int(0)]]).unwrap();
        // Something in a later layer so layer 0 is genuinely the last
        // round of a descending replay.
        store.ingest(1, "superstep", vec![vec![Value::Id(0), Value::Int(1)]]).unwrap();

        let q = compile_with(
            "trace(x, i) :- mark(x, i).
             trace(x, i) :- send_message(x, y, m, i), trace(y, i).",
            Params::new(),
            &catalog_with("mark", 2),
            UdfRegistry::standard(),
        )
        .unwrap();
        assert_eq!(q.direction(), Direction::Backward);
        let run = run_layered(&g, &store, &q).unwrap();
        let traced: BTreeSet<u64> = run
            .query_results
            .sorted("trace")
            .iter()
            .filter_map(|t| t.first().and_then(|v| v.as_id()))
            .collect();
        assert_eq!(
            traced,
            [0, 1, 2, 3].into_iter().collect(),
            "multi-hop chain closing in the last layer must complete \
             (flush_rounds = {})",
            run.flush_rounds
        );
        assert!(
            run.flush_rounds >= 2,
            "chain needs >= 2 flush rounds to close, got {}",
            run.flush_rounds
        );
    }

    /// The forward twin: a chain over the final layer's tuples that can
    /// only close after the last layer round.
    #[test]
    fn forward_chain_in_final_layer_completes() {
        let g = path(4);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![vec![Value::Id(0), Value::Int(0)]]).unwrap();
        // All chain inputs land in the FINAL forward layer (1).
        for (src, dst) in [(0u64, 1u64), (1, 2), (2, 3)] {
            store
                .ingest(
                    1,
                    "receive_message",
                    vec![vec![
                        Value::Id(dst),
                        Value::Id(src),
                        Value::Float(1.0),
                        Value::Int(1),
                    ]],
                )
                .unwrap();
        }
        store.ingest(1, "seed", vec![vec![Value::Id(0), Value::Int(1)]]).unwrap();
        let q = compile_with(
            "reach(x, i) :- seed(x, i).
             reach(x, i) :- receive_message(x, y, m, i), reach(y, i).",
            Params::new(),
            &catalog_with("seed", 2),
            UdfRegistry::standard(),
        )
        .unwrap();
        assert_eq!(q.direction(), Direction::Forward);
        let run = run_layered(&g, &store, &q).unwrap();
        let reached: BTreeSet<u64> = run
            .query_results
            .sorted("reach")
            .iter()
            .filter_map(|t| t.first().and_then(|v| v.as_id()))
            .collect();
        assert_eq!(
            reached,
            [0, 1, 2, 3].into_iter().collect(),
            "forward chain over the final layer must complete"
        );
        assert!(run.flush_rounds >= 2, "got {}", run.flush_rounds);
    }

    /// Column-selective replay skips stored payload columns the query
    /// never observes, without changing the result set — across every
    /// segment format.
    #[test]
    fn projection_skips_unobserved_columns() {
        use ariadne_provenance::SegmentFormat;
        let g = path(6);
        for format in [SegmentFormat::V1, SegmentFormat::V2, SegmentFormat::V3] {
            let mut store = ProvStore::new(StoreConfig::in_memory().with_format(format));
            for s in 0..3u32 {
                for v in 0..5u64 {
                    store
                        .ingest(
                            s,
                            "receive_message",
                            vec![vec![
                                Value::Id(v + 1),
                                Value::Id(v),
                                // A fat payload the query never looks at.
                                Value::floats(&[v as f64; 16]),
                                Value::Int(s as i64),
                            ]],
                        )
                        .unwrap();
                    store
                        .ingest(s, "superstep", vec![vec![Value::Id(v), Value::Int(s as i64)]])
                        .unwrap();
                }
            }
            store.pack_all();
            // `m` occurs once -> the payload column is provably dead.
            let q = compile(
                "hot(x, i) :- receive_message(x, y, m, i), superstep(y, i).",
                Params::new(),
            )
            .unwrap();
            let projected = run_layered(&g, &store, &q).unwrap();
            let full = run_layered_with(
                &g,
                &store,
                &q,
                &LayeredConfig {
                    project: false,
                    ..LayeredConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                projected.query_results.sorted("hot"),
                full.query_results.sorted("hot"),
                "projection must not change results ({format:?})"
            );
            assert!(
                projected.cols_skipped > 0,
                "expected skipped columns under {format:?}"
            );
            assert_eq!(full.cols_skipped, 0);
            if format == SegmentFormat::V2 {
                assert!(
                    projected.col_bytes_skipped > 0,
                    "v2 block skips must be byte-accounted"
                );
            }
        }
    }

    /// The parallel path is bit-identical to the sequential reference on
    /// every surface of the run, including at thread counts that do not
    /// divide the touched-set sizes.
    #[test]
    fn parallel_rounds_match_sequential() {
        use ariadne_graph::generators::erdos_renyi;
        let g = erdos_renyi(120, 600, 9);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        for s in 0..4u32 {
            for v in 0..120u64 {
                if (v + u64::from(s)) % 3 == 0 {
                    store
                        .ingest(s, "superstep", vec![vec![Value::Id(v), Value::Int(s as i64)]])
                        .unwrap();
                    store
                        .ingest(
                            s,
                            "change",
                            vec![vec![Value::Id(v), Value::Float(s as f64), Value::Int(s as i64)]],
                        )
                        .unwrap();
                }
            }
        }
        let q = compile_with(
            "hot(x, i) :- change(x, d, i), superstep(x, i).
             warm(x, i) :- change(y, d, i), receive_message(x, y, m, i).",
            Params::new(),
            &catalog_with("change", 3),
            UdfRegistry::standard(),
        )
        .unwrap();
        let seq = run_layered_with(&g, &store, &q, &LayeredConfig::default()).unwrap();
        for t in [2usize, 3, 7] {
            let par = run_layered_with(&g, &store, &q, &LayeredConfig::parallel(t)).unwrap();
            assert_eq!(par.threads, t);
            for pred in ["hot", "warm"] {
                assert_eq!(
                    seq.query_results.sorted(pred),
                    par.query_results.sorted(pred),
                    "{pred} differs at {t} threads"
                );
            }
            assert_eq!(
                (seq.layers, seq.flush_rounds, seq.shipped_tuples),
                (par.layers, par.flush_rounds, par.shipped_tuples),
                "round/ship counters differ at {t} threads"
            );
            assert_eq!(
                (seq.injected_tuples, seq.evaluated_vertices),
                (par.injected_tuples, par.evaluated_vertices),
                "work counters differ at {t} threads"
            );
            assert_eq!(seq.query_stats, par.query_stats, "EvalStats differ at {t} threads");
        }
    }
}
