//! The apt-query-driven optimization workflow (§2.2, §6.2.2).
//!
//! The apt query (Query 1) runs online with the analytic and fills three
//! tables: `no_execute` (vertex-supersteps that would be skipped under a
//! threshold), `safe` (skips that would not have changed the vertex's
//! value) and `unsafe` (skips that would have). A developer reads the
//! report and decides whether to adopt the approximate variant; the
//! paper's WCC example shows the query correctly *rejecting* it
//! (`safe = ∅`).

use ariadne_analytics::error::{median, mismatch_fraction, relative_error};
use ariadne_pql::Database;
use std::time::Duration;

/// Summary of an apt-query run.
#[derive(Clone, Debug, PartialEq)]
pub struct AptReport {
    /// |no_execute|: vertex-supersteps skippable under the threshold.
    pub no_execute: usize,
    /// |safe|: skippable without affecting the result.
    pub safe: usize,
    /// |unsafe|: skips that would lose large updates.
    pub unsafe_count: usize,
    /// Total vertex activations of the run.
    pub total_activations: usize,
    /// no_execute / total_activations.
    pub skippable_fraction: f64,
    /// Distinct vertices with at least one safely skippable superstep.
    pub safe_vertices: usize,
    /// The developer-facing verdict: pursue the optimization only when
    /// safe skips exist and no unsafe ones do.
    pub recommended: bool,
}

/// Build an [`AptReport`] from the apt query's result tables.
pub fn apt_report(results: &Database, total_activations: usize) -> AptReport {
    let no_execute = results.len("no_execute");
    let safe = results.len("safe");
    let unsafe_count = results.len("unsafe");
    let mut safe_vs: Vec<_> = results
        .sorted("safe")
        .into_iter()
        .filter_map(|t| t.first().and_then(|v| v.as_id()))
        .collect();
    safe_vs.dedup();
    AptReport {
        no_execute,
        safe,
        unsafe_count,
        total_activations,
        skippable_fraction: if total_activations == 0 {
            0.0
        } else {
            no_execute as f64 / total_activations as f64
        },
        safe_vertices: safe_vs.len(),
        recommended: safe > 0 && unsafe_count == 0,
    }
}

/// Comparison of an original analytic against its apt-optimized variant
/// (Figure 10, Tables 5 and 6).
#[derive(Clone, Debug)]
pub struct OptimizationOutcome {
    /// Normalized relative error `L_p(r0 - r1) / L_p(r0)`.
    pub relative_error: f64,
    /// Fraction of entries that changed by more than 0.5 (the WCC-style
    /// nominal-label mismatch measure).
    pub mismatch_fraction: f64,
    /// Median of the original results (Table 5/6 column "Median A").
    pub median_original: f64,
    /// Median of the optimized results (column "Median B").
    pub median_optimized: f64,
    /// original time / optimized time.
    pub speedup: f64,
}

/// Compare result vectors and runtimes of the original vs optimized
/// analytic under the L_p norm the paper uses for that analytic.
pub fn evaluate_optimization(
    original: &[f64],
    optimized: &[f64],
    p: f64,
    original_time: Duration,
    optimized_time: Duration,
) -> OptimizationOutcome {
    OptimizationOutcome {
        relative_error: relative_error(original, optimized, p),
        mismatch_fraction: mismatch_fraction(original, optimized, 0.5),
        median_original: median(original),
        median_optimized: median(optimized),
        speedup: if optimized_time.as_secs_f64() > 0.0 {
            original_time.as_secs_f64() / optimized_time.as_secs_f64()
        } else {
            f64::INFINITY
        },
    }
}

/// One point of a threshold sweep: the apt verdict at a given ε.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The threshold evaluated.
    pub epsilon: f64,
    /// The apt verdict at this threshold.
    pub report: AptReport,
}

/// Sweep the apt query across candidate thresholds (§2.2: "Alice can
/// evaluate multiple versions of the apt query to identify the threshold
/// that gives the best performance versus accuracy tradeoff").
///
/// Each threshold is one online run of the analytic with the apt query
/// attached; the analytic result is identical every time (Theorem 5.4),
/// only the verdict changes. Returns one [`SweepPoint`] per threshold,
/// in the given order.
pub fn sweep_apt_thresholds<A>(
    ariadne: &crate::session::Ariadne,
    analytic: &A,
    graph: &ariadne_graph::Csr,
    udf: &str,
    thresholds: &[f64],
) -> Result<Vec<SweepPoint>, crate::session::AriadneError>
where
    A: ariadne_vc::VertexProgram,
    A::V: ariadne_provenance::ProvEncode,
    A::M: ariadne_provenance::ProvEncode,
{
    let mut points = Vec::with_capacity(thresholds.len());
    for &eps in thresholds {
        let query = crate::queries::apt(udf, ariadne_pql::Value::Float(eps))
            .map_err(crate::session::AriadneError::Pql)?;
        let run = ariadne.online(analytic, graph, &query)?;
        points.push(SweepPoint {
            epsilon: eps,
            report: apt_report(&run.query_results, run.metrics.total_activations()),
        });
    }
    Ok(points)
}

/// Pick the largest threshold whose verdict is still *recommended* (no
/// unsafe skips); `None` if no swept threshold qualifies.
pub fn best_safe_threshold(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points
        .iter()
        .filter(|p| p.report.recommended)
        .max_by(|a, b| a.epsilon.total_cmp(&b.epsilon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_pql::Value;

    fn db_with(counts: &[(&str, usize)]) -> Database {
        let mut db = Database::new();
        for (pred, n) in counts {
            for k in 0..*n {
                db.insert(pred, vec![Value::Id(k as u64), Value::Int(0)]);
            }
        }
        db
    }

    #[test]
    fn report_recommends_when_safe_only() {
        let db = db_with(&[("no_execute", 10), ("safe", 10)]);
        let r = apt_report(&db, 100);
        assert!(r.recommended);
        assert_eq!(r.skippable_fraction, 0.1);
        assert_eq!(r.safe_vertices, 10);
    }

    #[test]
    fn report_rejects_when_unsafe_present() {
        let db = db_with(&[("no_execute", 10), ("unsafe", 10)]);
        let r = apt_report(&db, 100);
        assert!(!r.recommended);
        assert_eq!(r.unsafe_count, 10);
        assert_eq!(r.safe, 0);
    }

    #[test]
    fn empty_report() {
        let r = apt_report(&Database::new(), 0);
        assert_eq!(r.skippable_fraction, 0.0);
        assert!(!r.recommended);
    }

    #[test]
    fn sweep_finds_safe_thresholds() {
        use ariadne_analytics::pagerank::DeltaPageRank;
        use ariadne_graph::generators::{rmat, RmatConfig};
        let g = rmat(RmatConfig {
            scale: 7,
            edge_factor: 5,
            ..Default::default()
        });
        let ariadne = crate::session::Ariadne::default();
        let analytic = DeltaPageRank::exact(12);
        let points =
            sweep_apt_thresholds(&ariadne, &analytic, &g, "udf_diff", &[0.001, 0.01, 0.1])
                .unwrap();
        assert_eq!(points.len(), 3);
        // Skippable work is monotone in the threshold.
        for w in points.windows(2) {
            assert!(
                w[0].report.skippable_fraction <= w[1].report.skippable_fraction + 1e-12,
                "{points:?}"
            );
        }
        // If anything is recommended, best_safe picks the largest eps.
        if let Some(best) = best_safe_threshold(&points) {
            for p in &points {
                if p.report.recommended {
                    assert!(best.epsilon >= p.epsilon);
                }
            }
        }
    }

    #[test]
    fn best_safe_threshold_empty() {
        assert!(best_safe_threshold(&[]).is_none());
    }

    #[test]
    fn optimization_outcome_math() {
        let o = evaluate_optimization(
            &[1.0, 2.0, 3.0],
            &[1.0, 2.0, 3.0],
            2.0,
            Duration::from_millis(200),
            Duration::from_millis(100),
        );
        assert_eq!(o.relative_error, 0.0);
        assert_eq!(o.mismatch_fraction, 0.0);
        assert_eq!(o.median_original, 2.0);
        assert!((o.speedup - 2.0).abs() < 1e-9);
    }
}
