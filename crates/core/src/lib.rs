//! Ariadne: online provenance for big graph analytics.
//!
//! This crate ties the substrates together into the system of the paper:
//!
//! * [`compile`](mod@compile) — turn PQL source + parameters into a [`CompiledQuery`]
//!   ready to run in any evaluation mode its direction permits.
//! * [`online`] — **online evaluation** (§5.2): the compiled query is
//!   appended to an unmodified analytic as a wrapper vertex program;
//!   query tables piggyback on the analytic's own messages; at the end of
//!   the run both the analytic result and the query result exist
//!   (Theorem 5.4 non-interference holds by construction).
//! * [`capture`] — declaratively customized provenance capture (§3, §6.1):
//!   raw Table-1 predicates and/or capture-rule heads are persisted to a
//!   spill-capable [`ariadne_provenance::ProvStore`] through an async
//!   writer.
//! * [`layered`] — **layered offline evaluation** (§5.1): replay the
//!   captured store one layer (superstep) at a time, ascending for
//!   forward queries, descending for backward ones.
//! * [`naive`] — the traditional baseline: materialize the whole
//!   provenance graph and evaluate centrally.
//! * [`queries`] — the paper's Queries 1–12 as ready-made builders.
//! * [`optimize`] — the apt-query-driven approximate-analytic workflow
//!   (Figure 10, Tables 5–6).
//! * [`session`] — the user-facing [`Ariadne`] façade.
//!
//! # Quickstart
//!
//! ```
//! use ariadne::queries;
//! use ariadne::session::Ariadne;
//! use ariadne_analytics::Sssp;
//! use ariadne_graph::{generators::regular::path, VertexId};
//!
//! let graph = path(5);
//! let ariadne = Ariadne::default();
//! // Monitor SSSP online with the paper's Query 6 (no capture needed).
//! let query = queries::sssp_wcc_no_message_no_change().unwrap();
//! let run = ariadne
//!     .online(&Sssp::new(VertexId(0)), &graph, &query)
//!     .unwrap();
//! assert_eq!(run.values, vec![0.0, 1.0, 2.0, 3.0, 4.0]); // analytic untouched
//! assert!(run.query_results.sorted("problem").is_empty()); // invariant holds
//! ```

pub mod capture;
pub mod columns;
pub mod compile;
pub mod custom;
pub mod layered;
pub mod mutable;
pub mod naive;
pub mod online;
pub mod optimize;
pub mod queries;
pub mod report;
pub mod session;
pub mod snap;
pub mod state;

pub use capture::CaptureSpec;
pub use columns::column_masks;
pub use compile::{compile, compile_with, CompiledQuery};
pub use custom::CustomProv;
pub use layered::{run_layered, run_layered_range, run_layered_with, LayeredConfig, LayeredRun};
pub use mutable::MutableSession;
pub use online::{OnlineProgram, OnlineRun, QueryFailure};
pub use report::{RunReport, StoreReport};
pub use session::{Ariadne, AriadneError};

// Fault-tolerance surface: checkpointing, durability and degraded-read
// policies, scrub/repair, typed engine/store errors and the
// deterministic fault-injection harness, re-exported so users drive
// everything through this crate.
pub use ariadne_provenance::{
    compact_spool, scrub_spool, CompactReport, Degradation, Durability, EpochInfo, EpochStats,
    OnSpillError, ReadBackend, ReadPolicy, ScrubAction, ScrubReport, StoreConfig, StoreError,
};
pub use ariadne_vc::{CheckpointConfig, EngineConfig, EngineError, FaultPlan, Snapshot};

// Mutation surface: delta batches, the mutable-graph overlay, and the
// incremental re-execution contract, re-exported for the same reason.
pub use ariadne_graph::{GraphDelta, MutableGraph, MutationReport};
pub use ariadne_vc::{IncrementalMode, IncrementalRun, Incrementality};
