//! Compiling PQL source into an executable query.

use ariadne_obs::trace::{self, Level};
use ariadne_pql::{analyze, parse, Catalog, Evaluator, Params, PqlError, UdfRegistry};
use std::sync::Arc;

/// A compiled PQL query: the analyzed program plus its UDFs, shareable
/// across threads and evaluation modes.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    evaluator: Arc<Evaluator>,
    source: String,
}

impl CompiledQuery {
    /// The evaluator (analysis results live on `evaluator().query()`).
    pub fn evaluator(&self) -> &Arc<Evaluator> {
        &self.evaluator
    }

    /// The analyzed query.
    pub fn query(&self) -> &ariadne_pql::AnalyzedQuery {
        self.evaluator.query()
    }

    /// The communication classification (which modes are legal).
    pub fn direction(&self) -> ariadne_pql::Direction {
        self.query().direction
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }
}

/// Compile PQL source with the standard catalog and UDFs.
pub fn compile(source: &str, params: Params) -> Result<CompiledQuery, PqlError> {
    compile_with(source, params, &Catalog::standard(), UdfRegistry::standard())
}

/// Compile PQL source against a custom catalog (extra EDBs registered for
/// analytic-specific provenance or captured relations) and UDF registry.
pub fn compile_with(
    source: &str,
    params: Params,
    catalog: &Catalog,
    udfs: UdfRegistry,
) -> Result<CompiledQuery, PqlError> {
    let _compile_span = trace::span(
        Level::Debug,
        "pql",
        "compile",
        &[("source_bytes", source.len().into())],
    );
    let parse_span = trace::span(Level::Trace, "pql", "parse", &[]);
    let program = parse(source)?;
    drop(parse_span);
    let plan_span = trace::span(Level::Trace, "pql", "plan", &[]);
    let analyzed = analyze(&program, catalog, &params)?;
    drop(plan_span);
    Ok(CompiledQuery {
        evaluator: Arc::new(Evaluator::new(analyzed, udfs)),
        source: source.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_pql::Direction;

    #[test]
    fn compiles_and_classifies() {
        let q = compile(
            "problem(x, i) :- value(x, d1, i), value(x, d2, j), evolution(x, j, i), d1 > d2.",
            Params::new(),
        )
        .unwrap();
        assert_eq!(q.direction(), Direction::Local);
        assert!(q.source().contains("problem"));
    }

    #[test]
    fn bad_source_errors() {
        assert!(compile("nonsense", Params::new()).is_err());
    }

    #[test]
    fn custom_catalog() {
        let mut cat = Catalog::standard();
        cat.register("prov_error", 4);
        let q = compile_with(
            "bad(x, i) :- prov_error(x, y, i, e), e > 5.",
            Params::new(),
            &cat,
            UdfRegistry::standard(),
        )
        .unwrap();
        assert!(q.query().edbs.contains("prov_error"));
    }
}
