//! The user-facing Ariadne façade.

use crate::capture::{CaptureRun, CaptureSpec};
use crate::compile::CompiledQuery;
use crate::custom::CustomProv;
use crate::layered::{run_layered_with, LayeredConfig, LayeredRun};
use crate::naive::{run_centralized, run_naive, NaiveRun};
use crate::online::{OnlineConfig, OnlineProgram, OnlineRun, Persist};
use ariadne_graph::Csr;
use ariadne_pql::{Database, Direction, PqlError};
use ariadne_provenance::{ProvEncode, ProvStore, StoreConfig, StoreError, StoreWriter};
use ariadne_vc::{Engine, EngineConfig, EngineError, RunResult, Snapshot, VertexProgram};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Errors from Ariadne's evaluation modes.
#[derive(Debug)]
pub enum AriadneError {
    /// The query's direction class does not permit the requested mode
    /// (e.g. online evaluation of a backward query, §5.2).
    UnsupportedMode {
        /// The requested mode.
        mode: &'static str,
        /// The query's classification.
        direction: Direction,
    },
    /// Naive evaluation exceeded its materialization budget (the paper's
    /// "Naive was not able to scale" outcome).
    NaiveOverflow {
        /// Tuples that would have been materialized.
        tuples: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A language-level error surfaced during evaluation.
    Pql(PqlError),
    /// The provenance store failed (spill IO, corrupt segment, writer
    /// drain timeout, or an injected fault).
    Store(StoreError),
    /// The engine failed during checkpointed execution or resume
    /// (snapshot IO, corrupt snapshot, or an injected crash).
    Engine(EngineError),
    /// An incremental re-execution was requested before any mutation
    /// batch was committed (there is no previous epoch to reuse).
    NoCommittedMutation,
    /// The online query evaluator failed at a vertex (previously a
    /// panic inside the engine's compute hot path).
    Query {
        /// The vertex whose local fixpoint failed.
        vertex: ariadne_graph::VertexId,
        /// The superstep at which it failed.
        superstep: u32,
        /// The underlying PQL error.
        source: PqlError,
    },
}

impl fmt::Display for AriadneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AriadneError::UnsupportedMode { mode, direction } => write!(
                f,
                "{mode} evaluation is not legal for a {direction:?} query"
            ),
            AriadneError::NaiveOverflow { tuples, budget } => write!(
                f,
                "naive evaluation would materialize {tuples} tuples, over the {budget}-tuple budget"
            ),
            AriadneError::Pql(e) => write!(f, "{e}"),
            AriadneError::Store(e) => write!(f, "provenance store failure: {e}"),
            AriadneError::Engine(e) => write!(f, "engine failure: {e}"),
            AriadneError::NoCommittedMutation => write!(
                f,
                "incremental re-execution needs a committed mutation batch; call commit() first"
            ),
            AriadneError::Query {
                vertex,
                superstep,
                source,
            } => write!(
                f,
                "online query evaluation failed at vertex {vertex}, superstep {superstep}: {source}"
            ),
        }
    }
}

impl std::error::Error for AriadneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AriadneError::Pql(e) => Some(e),
            AriadneError::Store(e) => Some(e),
            AriadneError::Engine(e) => Some(e),
            AriadneError::Query { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<PqlError> for AriadneError {
    fn from(e: PqlError) -> Self {
        AriadneError::Pql(e)
    }
}

impl From<StoreError> for AriadneError {
    fn from(e: StoreError) -> Self {
        AriadneError::Store(e)
    }
}

impl From<EngineError> for AriadneError {
    fn from(e: EngineError) -> Self {
        AriadneError::Engine(e)
    }
}

/// The Ariadne system handle: engine and store configuration plus the
/// evaluation-mode entry points.
#[derive(Clone, Debug)]
pub struct Ariadne {
    /// BSP engine configuration used for analytic and wrapped runs.
    pub engine: EngineConfig,
    /// Store configuration used by capture runs.
    pub store: StoreConfig,
    /// Materialization budget for naive evaluation (tuples).
    pub naive_budget: Option<usize>,
}

impl Default for Ariadne {
    fn default() -> Self {
        Ariadne {
            engine: EngineConfig::default(),
            store: StoreConfig::in_memory(),
            naive_budget: None,
        }
    }
}

impl Ariadne {
    /// An Ariadne handle with `threads` engine workers.
    pub fn with_threads(threads: usize) -> Self {
        Ariadne {
            engine: EngineConfig::parallel(threads),
            ..Default::default()
        }
    }

    /// Run the bare analytic (the "Giraph" baseline in every figure).
    pub fn baseline<A: VertexProgram>(&self, analytic: &A, graph: &Csr) -> RunResult<A::V> {
        Engine::new(self.engine.clone()).run(analytic, graph)
    }

    /// Run the bare analytic with barrier checkpoints per
    /// [`EngineConfig::checkpoint`]; a crashed run can be resumed with
    /// [`Ariadne::resume_baseline`].
    pub fn baseline_checkpointed<A>(
        &self,
        analytic: &A,
        graph: &Csr,
    ) -> Result<RunResult<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: Snapshot,
        A::M: Snapshot,
    {
        Engine::new(self.engine.clone())
            .run_checkpointed(analytic, graph)
            .map_err(AriadneError::Engine)
    }

    /// Resume a crashed [`Ariadne::baseline_checkpointed`] run from its
    /// latest valid checkpoint; determinism makes the completed result
    /// bit-identical to an uninterrupted run.
    pub fn resume_baseline<A>(
        &self,
        analytic: &A,
        graph: &Csr,
    ) -> Result<RunResult<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: Snapshot,
        A::M: Snapshot,
    {
        Engine::new(self.engine.clone())
            .resume(analytic, graph)
            .map_err(AriadneError::Engine)
    }

    /// Online evaluation: run `analytic` and `query` in lockstep (§5.2).
    pub fn online<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        query: &CompiledQuery,
    ) -> Result<OnlineRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode,
        A::M: ProvEncode,
    {
        self.online_with(analytic, graph, query, None)
    }

    /// Online evaluation with an analytic-specific provenance generator.
    pub fn online_with<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        query: &CompiledQuery,
        custom: Option<Arc<dyn CustomProv<A>>>,
    ) -> Result<OnlineRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode,
        A::M: ProvEncode,
    {
        if !query.direction().supports_online() {
            return Err(AriadneError::UnsupportedMode {
                mode: "online",
                direction: query.direction(),
            });
        }
        let analyzed = query.query();
        let config = OnlineConfig {
            evaluator: Some(query.evaluator().clone()),
            needed: Arc::new(analyzed.edbs.clone()),
            shipped: Arc::new(analyzed.shipped.clone()),
            persist: None,
            custom,
        };
        let program = OnlineProgram::new(analytic, config);
        let result = Engine::new(self.engine.clone()).run(&program, graph);
        check_query_failure(&program)?;
        Ok(finish_online(result, &analyzed.idbs, program.query_stats()))
    }

    /// Online evaluation with barrier checkpoints: like
    /// [`Ariadne::online`], but the engine snapshots the wrapped state
    /// (analytic value *and* query partition) per
    /// [`EngineConfig::checkpoint`], so a crashed run can be resumed with
    /// [`Ariadne::resume_online`].
    pub fn online_checkpointed<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        query: &CompiledQuery,
    ) -> Result<OnlineRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode + Snapshot,
        A::M: ProvEncode + Snapshot,
    {
        self.online_engine(analytic, graph, query, |engine, program, graph| {
            engine.run_checkpointed(program, graph)
        })
    }

    /// Resume a crashed [`Ariadne::online_checkpointed`] run from its
    /// latest valid checkpoint. The analytic, graph, query and engine
    /// configuration must be identical to the original run; the result
    /// is then bit-identical to an uninterrupted run.
    pub fn resume_online<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        query: &CompiledQuery,
    ) -> Result<OnlineRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode + Snapshot,
        A::M: ProvEncode + Snapshot,
    {
        self.online_engine(analytic, graph, query, |engine, program, graph| {
            engine.resume(program, graph)
        })
    }

    /// Shared driver for the checkpointed/resumed online variants.
    fn online_engine<A, F>(
        &self,
        analytic: &A,
        graph: &Csr,
        query: &CompiledQuery,
        drive: F,
    ) -> Result<OnlineRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode + Snapshot,
        A::M: ProvEncode + Snapshot,
        F: FnOnce(
            &Engine,
            &OnlineProgram<'_, A>,
            &Csr,
        )
            -> Result<RunResult<crate::online::OnlineState<A::V>>, EngineError>,
    {
        if !query.direction().supports_online() {
            return Err(AriadneError::UnsupportedMode {
                mode: "online",
                direction: query.direction(),
            });
        }
        let analyzed = query.query();
        let config = OnlineConfig {
            evaluator: Some(query.evaluator().clone()),
            needed: Arc::new(analyzed.edbs.clone()),
            shipped: Arc::new(analyzed.shipped.clone()),
            persist: None,
            custom: None,
        };
        let program = OnlineProgram::new(analytic, config);
        let engine = Engine::new(self.engine.clone());
        let result = drive(&engine, &program, graph).map_err(AriadneError::Engine)?;
        check_query_failure(&program)?;
        Ok(finish_online(result, &analyzed.idbs, program.query_stats()))
    }

    /// Capture provenance per `spec` while running the analytic (§6.1).
    pub fn capture<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        spec: &CaptureSpec,
    ) -> Result<CaptureRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode,
        A::M: ProvEncode,
    {
        self.capture_with(analytic, graph, spec, None)
    }

    /// Capture with an analytic-specific provenance generator.
    pub fn capture_with<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        spec: &CaptureSpec,
        custom: Option<Arc<dyn CustomProv<A>>>,
    ) -> Result<CaptureRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode,
        A::M: ProvEncode,
    {
        if !spec.supports_online() {
            let direction = spec
                .query
                .as_ref()
                .map(|q| q.direction())
                .unwrap_or(Direction::Local);
            return Err(AriadneError::UnsupportedMode {
                mode: "capture",
                direction,
            });
        }
        let writer = StoreWriter::spawn(self.store.clone());
        let persist = Persist {
            sender: writer.sender(),
            preds: Arc::new(spec.persist_preds()),
        };
        let shipped: BTreeSet<String> = spec
            .query
            .as_ref()
            .map(|q| q.query().shipped.clone())
            .unwrap_or_default();
        let config = OnlineConfig {
            evaluator: spec.query.as_ref().map(|q| q.evaluator().clone()),
            needed: Arc::new(spec.needed()),
            shipped: Arc::new(shipped),
            persist: Some(persist),
            custom,
        };
        let program = OnlineProgram::new(analytic, config);
        let result = Engine::new(self.engine.clone()).run(&program, graph);
        // Drain the writer before deciding the outcome so its thread
        // never leaks; a query failure takes precedence over store state.
        let store = writer.finish();
        check_query_failure(&program)?;
        let store = store.map_err(AriadneError::Store)?;
        Ok(CaptureRun {
            values: result.values.into_iter().map(|s| s.value).collect(),
            store,
            metrics: result.metrics,
            query_stats: program.query_stats(),
        })
    }

    /// Capture with barrier checkpoints: like [`Ariadne::capture`], but
    /// the engine snapshots the wrapped state per
    /// [`EngineConfig::checkpoint`] and the store spools to disk, so a
    /// crashed capture can be resumed with [`Ariadne::resume_capture`].
    pub fn capture_checkpointed<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        spec: &CaptureSpec,
    ) -> Result<CaptureRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode + Snapshot,
        A::M: ProvEncode + Snapshot,
    {
        self.capture_engine(analytic, graph, spec, false)
    }

    /// Resume a crashed [`Ariadne::capture_checkpointed`] run: the engine
    /// restarts from its latest valid snapshot, and the store writer
    /// re-attaches the spill segments already persisted by the crashed
    /// run (re-ingestion of already-sealed layers is an idempotent
    /// no-op), so the recovered store equals an uninterrupted capture.
    pub fn resume_capture<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        spec: &CaptureSpec,
    ) -> Result<CaptureRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode + Snapshot,
        A::M: ProvEncode + Snapshot,
    {
        self.capture_engine(analytic, graph, spec, true)
    }

    /// Shared driver for the checkpointed/resumed capture variants.
    fn capture_engine<A>(
        &self,
        analytic: &A,
        graph: &Csr,
        spec: &CaptureSpec,
        resuming: bool,
    ) -> Result<CaptureRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode + Snapshot,
        A::M: ProvEncode + Snapshot,
    {
        if !spec.supports_online() {
            let direction = spec
                .query
                .as_ref()
                .map(|q| q.direction())
                .unwrap_or(Direction::Local);
            return Err(AriadneError::UnsupportedMode {
                mode: "capture",
                direction,
            });
        }
        let writer = if resuming {
            StoreWriter::spawn_resuming(self.store.clone())
        } else {
            StoreWriter::spawn(self.store.clone())
        };
        let persist = Persist {
            sender: writer.sender(),
            preds: Arc::new(spec.persist_preds()),
        };
        let shipped: BTreeSet<String> = spec
            .query
            .as_ref()
            .map(|q| q.query().shipped.clone())
            .unwrap_or_default();
        let config = OnlineConfig {
            evaluator: spec.query.as_ref().map(|q| q.evaluator().clone()),
            needed: Arc::new(spec.needed()),
            shipped: Arc::new(shipped),
            persist: Some(persist),
            custom: None,
        };
        let program = OnlineProgram::new(analytic, config);
        let engine = Engine::new(self.engine.clone());
        let result = if resuming {
            engine.resume(&program, graph)
        } else {
            engine.run_checkpointed(&program, graph)
        };
        let store = writer.finish();
        let result = result.map_err(AriadneError::Engine)?;
        check_query_failure(&program)?;
        let store = store.map_err(AriadneError::Store)?;
        Ok(CaptureRun {
            values: result.values.into_iter().map(|s| s.value).collect(),
            store,
            metrics: result.metrics,
            query_stats: program.query_stats(),
        })
    }

    /// Layered offline evaluation over a captured store (§5.1): parallel
    /// chunked replay with predicate-filtered layer reads, using the
    /// engine's thread count. Results are bit-identical at every thread
    /// count.
    pub fn layered(
        &self,
        graph: &Csr,
        store: &ProvStore,
        query: &CompiledQuery,
    ) -> Result<LayeredRun, AriadneError> {
        self.layered_with(graph, store, query, &LayeredConfig::parallel(self.engine.threads))
    }

    /// Layered offline evaluation with explicit [`LayeredConfig`]
    /// tuning (thread count, chunk granularity, predicate pruning).
    pub fn layered_with(
        &self,
        graph: &Csr,
        store: &ProvStore,
        query: &CompiledQuery,
        config: &LayeredConfig,
    ) -> Result<LayeredRun, AriadneError> {
        run_layered_with(graph, store, query, config)
    }

    /// Naive offline evaluation: materialize the whole provenance graph
    /// and iterate the query vertex program over all of it (§6.2's
    /// *Naive* series).
    pub fn naive(
        &self,
        graph: &Csr,
        store: &ProvStore,
        query: &CompiledQuery,
    ) -> Result<NaiveRun, AriadneError> {
        run_naive(graph, store, query, self.naive_budget)
    }

    /// Centralized semi-naive evaluation over one big database: the
    /// correctness oracle for the other modes (not a paper mode).
    pub fn centralized(
        &self,
        graph: &Csr,
        store: &ProvStore,
        query: &CompiledQuery,
    ) -> Result<Database, AriadneError> {
        run_centralized(graph, store, query)
    }
}

/// Surface a query failure recorded inside the wrapped program as a
/// typed error (it used to panic the engine worker).
fn check_query_failure<A: VertexProgram>(program: &OnlineProgram<'_, A>) -> Result<(), AriadneError> {
    match program.take_failure() {
        Some(f) => Err(AriadneError::Query {
            vertex: f.vertex,
            superstep: f.superstep,
            source: f.source,
        }),
        None => Ok(()),
    }
}

/// Split an online engine result into analytic values and the merged
/// query result tables (IDB relations only; transient EDB partitions are
/// working state, not results).
fn finish_online<V>(
    result: RunResult<crate::online::OnlineState<V>>,
    idbs: &std::collections::BTreeMap<String, usize>,
    query_stats: ariadne_pql::EvalStats,
) -> OnlineRun<V> {
    let mut merged = Database::new();
    let mut bytes = 0usize;
    for state in &result.values {
        bytes += state.q.db.byte_size();
        for (name, rel) in state.q.db.iter() {
            if idbs.contains_key(name) {
                for t in rel.scan() {
                    merged.insert(name, t.clone());
                }
            }
        }
    }
    OnlineRun {
        values: result.values.into_iter().map(|s| s.value).collect(),
        query_results: merged,
        metrics: result.metrics,
        query_bytes: bytes,
        query_stats,
    }
}
