//! Online provenance query evaluation (§5.2).
//!
//! [`OnlineProgram`] wraps an **unmodified** analytic vertex program. At
//! every superstep each vertex:
//!
//! 1. merges provenance payloads piggybacked on incoming messages into
//!    its local query database (neighbour replicas of shipped tables);
//! 2. runs the analytic's `compute` against a recording context that
//!    defers its sends;
//! 3. generates the superstep's provenance EDB tuples (only the
//!    predicates the query needs — declarative capture customization);
//! 4. runs the compiled query incrementally to a local fixpoint;
//! 5. persists newly derived capture tuples to the store (capture runs);
//! 6. attaches the new tuples of *shipped* predicates to the analytic's
//!    deferred messages and releases them.
//!
//! Query messages therefore travel only where analytic messages travel,
//! and query state is disjoint from analytic state — the two halves of
//! Theorem 5.4's non-interference argument, here enforced by types.

use crate::custom::CustomProv;
use crate::report::EvalStatsAccum;
use crate::state::QueryState;
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::{EvalStats, Evaluator, PqlError, Tuple};
use ariadne_provenance::edb::{NeededEdbs, VertexStepRecord};
use ariadne_provenance::store::StoreSender;
use ariadne_provenance::ProvEncode;
use ariadne_vc::{AggOp, AggValue, Aggregates, Combiner, Context, Envelope, VertexProgram};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Persistence half of a capture run.
#[derive(Clone)]
pub struct Persist {
    /// Channel into the async store writer.
    pub sender: StoreSender,
    /// Which predicates to persist (raw EDBs + capture-rule heads).
    pub preds: Arc<BTreeSet<String>>,
}

/// Configuration of the online wrapper.
pub struct OnlineConfig<A: VertexProgram> {
    /// The compiled query to evaluate alongside the analytic, if any
    /// (pure raw captures have none).
    pub evaluator: Option<Arc<Evaluator>>,
    /// Which Table-1 EDB predicates to generate.
    pub needed: Arc<NeededEdbs>,
    /// Predicates whose fresh tuples piggyback on analytic messages.
    pub shipped: Arc<BTreeSet<String>>,
    /// Capture persistence, if this is a capture run.
    pub persist: Option<Persist>,
    /// Analytic-specific custom provenance generator.
    pub custom: Option<Arc<dyn CustomProv<A>>>,
}

impl<A: VertexProgram> Clone for OnlineConfig<A> {
    fn clone(&self) -> Self {
        OnlineConfig {
            evaluator: self.evaluator.clone(),
            needed: self.needed.clone(),
            shipped: self.shipped.clone(),
            persist: self.persist.clone(),
            custom: self.custom.clone(),
        }
    }
}

/// Per-vertex state: the analytic's value plus the query partition.
#[derive(Clone, Debug)]
pub struct OnlineState<V> {
    /// The analytic's vertex value (π_A of Theorem 5.4).
    pub value: V,
    /// The query's vertex partition (π_Q of Theorem 5.4).
    pub q: QueryState,
}

/// An analytic message with a piggybacked provenance payload.
#[derive(Clone, Debug)]
pub struct OnlineMsg<M> {
    /// The analytic's message, untouched.
    pub msg: M,
    /// Fresh shipped-table tuples (shared across a superstep's fan-out).
    pub payload: Arc<Vec<(String, Vec<Tuple>)>>,
}

/// A query-evaluation failure captured inside the engine's compute hot
/// path (previously a panic). The engine halts at the next barrier and
/// the session surfaces this as a typed error.
#[derive(Debug)]
pub struct QueryFailure {
    /// The vertex whose local fixpoint failed.
    pub vertex: VertexId,
    /// The superstep at which it failed.
    pub superstep: u32,
    /// The underlying language error (e.g. an unknown UDF).
    pub source: PqlError,
}

/// The online wrapper program. See module docs.
pub struct OnlineProgram<'a, A: VertexProgram> {
    analytic: &'a A,
    config: OnlineConfig<A>,
    /// Fast flag checked at barriers; avoids the mutex on the hot path.
    failed: AtomicBool,
    /// The (deterministically) first failure: minimum (superstep, vertex).
    failure: Mutex<Option<QueryFailure>>,
    /// Query-evaluation counters accumulated across all vertices; the
    /// totals are deterministic across worker-thread counts because
    /// every contribution is a per-vertex logical count.
    query_stats: EvalStatsAccum,
}

impl<'a, A: VertexProgram> OnlineProgram<'a, A> {
    /// Wrap `analytic` with the given query configuration.
    pub fn new(analytic: &'a A, config: OnlineConfig<A>) -> Self {
        OnlineProgram {
            analytic,
            config,
            failed: AtomicBool::new(false),
            failure: Mutex::new(None),
            query_stats: EvalStatsAccum::default(),
        }
    }

    /// The accumulated query-evaluation counters for this run so far.
    pub fn query_stats(&self) -> EvalStats {
        self.query_stats.snapshot()
    }

    /// Record a query failure. Keeps the minimum (superstep, vertex)
    /// failure so the reported error is deterministic regardless of
    /// worker interleaving.
    fn record_failure(&self, vertex: VertexId, superstep: u32, source: PqlError) {
        let mut slot = self.failure.lock().unwrap();
        let replace = match &*slot {
            None => true,
            Some(f) => (superstep, vertex.0) < (f.superstep, f.vertex.0),
        };
        if replace {
            *slot = Some(QueryFailure {
                vertex,
                superstep,
                source,
            });
        }
        self.failed.store(true, Ordering::Release);
    }

    /// Take the recorded failure, if any (checked after the run).
    pub fn take_failure(&self) -> Option<QueryFailure> {
        self.failure.lock().unwrap().take()
    }
}

impl<A> VertexProgram for OnlineProgram<'_, A>
where
    A: VertexProgram,
    A::V: ProvEncode,
    A::M: ProvEncode,
{
    type V = OnlineState<A::V>;
    type M = OnlineMsg<A::M>;

    fn init(&self, v: VertexId, graph: &Csr) -> Self::V {
        OnlineState {
            value: self.analytic.init(v, graph),
            q: QueryState::new(),
        }
    }

    fn compute(
        &self,
        ctx: &mut dyn Context<Self::M>,
        state: &mut Self::V,
        messages: &[Envelope<Self::M>],
    ) {
        let vertex = ctx.vertex();
        let superstep = ctx.superstep();
        let cfg = &self.config;

        // 1. Merge incoming provenance payloads (replicas).
        for env in messages {
            for (pred, tuples) in env.msg.payload.iter() {
                state.q.inject(pred, tuples.iter().cloned());
            }
        }
        state.q.inject_statics(ctx.graph(), vertex, &cfg.needed);

        // 2. Run the analytic against a recording shim.
        let inner_msgs: Vec<Envelope<A::M>> = messages
            .iter()
            .map(|e| Envelope::new(e.src, e.msg.msg.clone()))
            .collect();
        let sends: Vec<(VertexId, A::M)> = {
            let mut recorder = Recorder {
                inner: ctx,
                sends: Vec::new(),
            };
            self.analytic
                .compute(&mut recorder, &mut state.value, &inner_msgs);
            recorder.sends
        };

        // 3. Generate this superstep's provenance EDB tuples.
        let record = VertexStepRecord {
            vertex,
            superstep,
            value: state.value.encode(),
            received: inner_msgs
                .iter()
                .map(|e| (e.src, e.msg.encode()))
                .collect(),
            sent: sends.iter().map(|(d, m)| (*d, m.encode())).collect(),
            out_edges: if cfg.needed.contains("edge_value") {
                ctx.graph()
                    .out_edges(vertex)
                    .map(|e| (e.neighbor, e.weight))
                    .collect()
            } else {
                Vec::new()
            },
        };
        let edb_tuples = state.q.tracker.tuples(&record, &cfg.needed);
        for (pred, tuple) in edb_tuples {
            state.q.db.insert(pred, tuple);
        }

        // 4. Custom provenance relations.
        if let Some(custom) = &cfg.custom {
            for (pred, tuple) in
                custom.tuples(ctx.graph(), vertex, superstep, &state.value, &inner_msgs)
            {
                state.q.db.insert(&pred, tuple);
            }
        }

        // 5. Local incremental fixpoint. Errors abort the run at the next
        // barrier (via should_halt) instead of panicking the worker; the
        // analytic's deferred sends are dropped, which is fine because
        // the whole run is discarded.
        if let Some(evaluator) = &cfg.evaluator {
            let mut stats = EvalStats::default();
            let outcome = state.q.evaluate_stats(evaluator, vertex, &mut stats);
            self.query_stats.add(&stats);
            if let Err(e) = outcome {
                self.record_failure(vertex, superstep, e);
                return;
            }
        }

        // 6. Persist capture predicates.
        if let Some(persist) = &cfg.persist {
            for (pred, tuples) in state.q.take_persistable(persist.preds.iter(), vertex) {
                persist.sender.ingest(superstep, &pred, tuples);
            }
        }

        // 7. Ship fresh tuples with the analytic's deferred sends. Marks
        // advance only when something is actually sent, so tuples derived
        // during quiet supersteps are back-logged until the next send.
        if !sends.is_empty() {
            let payload = Arc::new(state.q.take_shippable(cfg.shipped.iter(), vertex));
            for (dst, msg) in sends {
                ctx.send(
                    dst,
                    OnlineMsg {
                        msg,
                        payload: Arc::clone(&payload),
                    },
                );
            }
        }
    }

    // The analytic's configuration passes through untouched — except the
    // combiner: combining would erase the per-source identity provenance
    // needs and would merge piggybacked payloads incorrectly.
    fn combiner(&self) -> Option<Box<dyn Combiner<Self::M>>> {
        None
    }

    fn aggregators(&self) -> Vec<(String, AggOp)> {
        self.analytic.aggregators()
    }

    fn always_active(&self) -> bool {
        self.analytic.always_active()
    }

    fn max_supersteps(&self) -> u32 {
        self.analytic.max_supersteps()
    }

    fn should_halt(&self, superstep: u32, aggregates: &Aggregates) -> bool {
        self.failed.load(Ordering::Acquire) || self.analytic.should_halt(superstep, aggregates)
    }

    fn message_bytes(&self, msg: &Self::M) -> usize {
        let payload_bytes: usize = msg
            .payload
            .iter()
            .map(|(_, tuples)| {
                tuples
                    .iter()
                    .map(|t| t.iter().map(ariadne_pql::Value::byte_size).sum::<usize>())
                    .sum::<usize>()
            })
            .sum();
        self.analytic.message_bytes(&msg.msg) + payload_bytes
    }
}

/// Context shim handed to the analytic: observes sends without releasing
/// them, delegates everything else.
struct Recorder<'a, M, MO> {
    inner: &'a mut dyn Context<MO>,
    sends: Vec<(VertexId, M)>,
}

impl<M, MO> Context<M> for Recorder<'_, M, MO> {
    fn superstep(&self) -> u32 {
        self.inner.superstep()
    }

    fn vertex(&self) -> VertexId {
        self.inner.vertex()
    }

    fn graph(&self) -> &Csr {
        self.inner.graph()
    }

    fn send(&mut self, to: VertexId, msg: M) {
        self.sends.push((to, msg));
    }

    fn aggregate(&mut self, name: &str, value: AggValue) {
        self.inner.aggregate(name, value);
    }

    fn prev_aggregate(&self, name: &str) -> Option<AggValue> {
        self.inner.prev_aggregate(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use ariadne_graph::generators::regular::path;
    use ariadne_pql::{Params, Value};
    use ariadne_vc::{Engine, EngineConfig};

    /// Forwards its superstep number along the path.
    struct Hops;
    impl VertexProgram for Hops {
        type V = i64;
        type M = i64;
        fn init(&self, _: VertexId, _: &Csr) -> i64 {
            -1
        }
        fn compute(&self, ctx: &mut dyn Context<i64>, value: &mut i64, msgs: &[Envelope<i64>]) {
            if ctx.superstep() == 0 && ctx.vertex() == VertexId(0) {
                *value = 0;
                ctx.send_to_out_neighbors(0);
            } else if let Some(m) = msgs.iter().map(|e| e.msg).max() {
                *value = m + 1;
                ctx.send_to_out_neighbors(*value);
            }
        }
    }

    fn online_config(src: &str) -> OnlineConfig<Hops> {
        let q = compile(src, Params::new()).unwrap();
        let analyzed = q.query().clone();
        OnlineConfig {
            evaluator: Some(q.evaluator().clone()),
            needed: Arc::new(analyzed.edbs.clone()),
            shipped: Arc::new(analyzed.shipped.clone()),
            persist: None,
            custom: None,
        }
    }

    #[test]
    fn wrapper_preserves_analytic_and_derives_locally() {
        let g = path(4);
        let cfg = online_config("seen(x, d, i) :- value(x, d, i), superstep(x, i).");
        let wrapped = OnlineProgram::new(&Hops, cfg);
        let run = Engine::new(EngineConfig::sequential()).run(&wrapped, &g);
        let values: Vec<i64> = run.values.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
        // Vertex 3 computed at superstep 0 (everyone does) and at
        // superstep 3 when the hop count arrived; both are recorded.
        let s3 = &run.values[3].q.db;
        assert_eq!(
            s3.sorted("seen"),
            vec![
                vec![Value::Id(3), Value::Int(-1), Value::Int(0)],
                vec![Value::Id(3), Value::Int(3), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn wrapper_ships_only_along_messages() {
        // fwd-style recursion: vertex 3 learns the lineage only through
        // the chain of messages.
        let g = path(4);
        let cfg = online_config(
            "lineage(x, i) :- superstep(x, i), x = 0, i = 0.
             lineage(x, i) :- receive_message(x, y, m, i), lineage(y, j).",
        );
        let wrapped = OnlineProgram::new(&Hops, cfg);
        let run = Engine::new(EngineConfig::sequential()).run(&wrapped, &g);
        for (v, state) in run.values.iter().enumerate() {
            let mine: Vec<_> = state
                .q
                .db
                .sorted("lineage")
                .into_iter()
                .filter(|t| t[0] == Value::Id(v as u64))
                .collect();
            assert_eq!(mine.len(), 1, "vertex {v} lineage: {mine:?}");
        }
    }

    #[test]
    fn wrapper_disables_combiner_and_keeps_analytic_knobs() {
        let cfg = online_config("seen(x, i) :- superstep(x, i).");
        let wrapped = OnlineProgram::new(&Hops, cfg);
        assert!(wrapped.combiner().is_none());
        assert_eq!(wrapped.max_supersteps(), Hops.max_supersteps());
        assert_eq!(wrapped.always_active(), Hops.always_active());
        assert!(wrapped.aggregators().is_empty());
    }

    #[test]
    fn message_bytes_include_payload() {
        let cfg = online_config("seen(x, i) :- superstep(x, i).");
        let wrapped = OnlineProgram::new(&Hops, cfg);
        let empty = OnlineMsg {
            msg: 1i64,
            payload: Arc::new(Vec::new()),
        };
        let loaded = OnlineMsg {
            msg: 1i64,
            payload: Arc::new(vec![(
                "seen".to_string(),
                vec![vec![Value::Id(0), Value::Int(0)]],
            )]),
        };
        assert!(wrapped.message_bytes(&loaded) > wrapped.message_bytes(&empty));
    }
}

/// The outcome of an online run.
#[derive(Debug)]
pub struct OnlineRun<V> {
    /// Final analytic values (identical to a run without the query).
    pub values: Vec<V>,
    /// Merged query result tables (IDB relations) across all vertices.
    pub query_results: ariadne_pql::Database,
    /// Engine metrics for the wrapped run.
    pub metrics: ariadne_vc::RunMetrics,
    /// Total bytes of query tables held across vertices at the end.
    pub query_bytes: usize,
    /// Query-evaluation counters accumulated across all vertices.
    pub query_stats: EvalStats,
}
