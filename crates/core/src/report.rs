//! Run introspection: aggregate one run's engine, query and store
//! metrics into a [`RunReport`] that benchmarks and operators can
//! serialize.
//!
//! The report folds three sources:
//!
//! * the engine's per-superstep [`ariadne_vc::SuperstepMetrics`] — message
//!   totals, per-phase wall time (compute / sender-combine / scatter /
//!   barrier) and checkpoint-write time;
//! * the wrapped query's run-local [`EvalStats`] (rule firings, delta
//!   window sizes, scan-scratch reuse) accumulated across all vertices;
//! * the provenance store's occupancy counters, when the run captured.
//!
//! Everything here is *run-local*: unlike the process-global
//! `ariadne-obs` registry, a `RunReport` describes exactly one run and
//! is safe to compare across runs in the same process. All the logical
//! counters in it are deterministic across worker-thread counts.

use crate::capture::CaptureRun;
use crate::online::OnlineRun;
use ariadne_pql::EvalStats;
use ariadne_provenance::ProvStore;
use ariadne_vc::{PhaseTimes, RunMetrics};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A thread-safe [`EvalStats`] accumulator. Worker threads fold their
/// per-vertex evaluation counters in with relaxed atomics; because every
/// field is a commutative sum of deterministic per-vertex contributions,
/// the final snapshot is bit-identical regardless of interleaving.
#[derive(Debug, Default)]
pub struct EvalStatsAccum {
    rule_firings: AtomicU64,
    derived_tuples: AtomicU64,
    delta_tuples: AtomicU64,
    fixpoint_rounds: AtomicU64,
    scratch_reuse: AtomicU64,
    scratch_alloc: AtomicU64,
}

impl EvalStatsAccum {
    /// Fold one evaluation's counters in.
    pub fn add(&self, stats: &EvalStats) {
        self.rule_firings
            .fetch_add(stats.rule_firings, Ordering::Relaxed);
        self.derived_tuples
            .fetch_add(stats.derived_tuples, Ordering::Relaxed);
        self.delta_tuples
            .fetch_add(stats.delta_tuples, Ordering::Relaxed);
        self.fixpoint_rounds
            .fetch_add(stats.fixpoint_rounds, Ordering::Relaxed);
        self.scratch_reuse
            .fetch_add(stats.scratch_reuse, Ordering::Relaxed);
        self.scratch_alloc
            .fetch_add(stats.scratch_alloc, Ordering::Relaxed);
    }

    /// The accumulated totals.
    pub fn snapshot(&self) -> EvalStats {
        EvalStats {
            rule_firings: self.rule_firings.load(Ordering::Relaxed),
            derived_tuples: self.derived_tuples.load(Ordering::Relaxed),
            delta_tuples: self.delta_tuples.load(Ordering::Relaxed),
            fixpoint_rounds: self.fixpoint_rounds.load(Ordering::Relaxed),
            scratch_reuse: self.scratch_reuse.load(Ordering::Relaxed),
            scratch_alloc: self.scratch_alloc.load(Ordering::Relaxed),
        }
    }
}

/// Provenance-store occupancy at the end of a capture run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreReport {
    /// Tuples ingested across all layers.
    pub tuples: usize,
    /// Bytes held in memory-resident segments.
    pub mem_bytes: usize,
    /// Bytes spilled to disk.
    pub disk_bytes: usize,
    /// Number of spill events.
    pub spills: usize,
    /// Sealed (durable, checksummed) spool segments.
    pub sealed_segments: usize,
    /// Records recovered from torn spool tails on resume or scrub
    /// repair (zero on a clean run).
    pub salvaged_records: usize,
    /// Segments a scrub repair moved into `quarantine/` (zero on a
    /// clean run).
    pub quarantined_segments: usize,
    /// Batches dropped after a spill failure poisoned the store under
    /// [`ariadne_provenance::OnSpillError::DropCapture`] (zero on a
    /// clean run).
    pub dropped_batches: usize,
    /// Compaction passes published (each bumped the spool generation).
    pub compactions: usize,
}

impl StoreReport {
    /// Snapshot a store's occupancy counters.
    pub fn from_store(store: &ProvStore) -> Self {
        StoreReport {
            tuples: store.tuple_count(),
            mem_bytes: store.byte_size(),
            disk_bytes: store.disk_bytes(),
            spills: store.spills(),
            sealed_segments: store.sealed_segments(),
            salvaged_records: store.salvaged_records(),
            quarantined_segments: store.quarantined_segments(),
            dropped_batches: store.dropped_batches(),
            compactions: store.compactions(),
        }
    }
}

/// One run's aggregated introspection record.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Total wall time of the run.
    pub elapsed: Duration,
    /// Messages routed into outboxes.
    pub messages_sent: usize,
    /// Messages observed in destination inboxes (equals `messages_sent`
    /// when no exact sender-side combiner folded messages in flight).
    pub messages_delivered: usize,
    /// Analytic message payload bytes.
    pub message_bytes: usize,
    /// Messages buffered after sender-side combining.
    pub buffered_messages: usize,
    /// Per-phase wall-time totals across all supersteps.
    pub phases: PhaseTimes,
    /// Total checkpoint snapshot write time (outside `elapsed`).
    pub checkpoint: Duration,
    /// Accumulated query-evaluation counters, when the run carried a
    /// compiled query.
    pub query: Option<EvalStats>,
    /// Store occupancy, when the run captured provenance.
    pub store: Option<StoreReport>,
}

impl RunReport {
    /// Fold the engine half of the report out of run metrics.
    pub fn from_metrics(m: &RunMetrics) -> Self {
        RunReport {
            supersteps: m.supersteps.len(),
            elapsed: m.elapsed,
            messages_sent: m.total_messages(),
            messages_delivered: m.total_messages_delivered(),
            message_bytes: m.total_message_bytes(),
            buffered_messages: m.total_buffered_messages(),
            phases: m.phase_totals(),
            checkpoint: m.total_checkpoint_time(),
            query: None,
            store: None,
        }
    }

    /// Attach accumulated query-evaluation counters.
    pub fn with_query(mut self, stats: EvalStats) -> Self {
        self.query = Some(stats);
        self
    }

    /// Attach store occupancy.
    pub fn with_store(mut self, store: &ProvStore) -> Self {
        self.store = Some(StoreReport::from_store(store));
        self
    }

    /// Serialize as a single JSON object with a fixed key order (the
    /// BENCH files and the obs smoke artifact embed this verbatim).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        s.push_str(&format!("\"supersteps\":{}", self.supersteps));
        s.push_str(&format!(",\"elapsed_ns\":{}", self.elapsed.as_nanos()));
        s.push_str(&format!(",\"messages_sent\":{}", self.messages_sent));
        s.push_str(&format!(
            ",\"messages_delivered\":{}",
            self.messages_delivered
        ));
        s.push_str(&format!(",\"message_bytes\":{}", self.message_bytes));
        s.push_str(&format!(
            ",\"buffered_messages\":{}",
            self.buffered_messages
        ));
        s.push_str(&format!(
            ",\"phase_compute_ns\":{}",
            self.phases.compute.as_nanos()
        ));
        s.push_str(&format!(
            ",\"phase_combine_ns\":{}",
            self.phases.combine.as_nanos()
        ));
        s.push_str(&format!(
            ",\"phase_scatter_ns\":{}",
            self.phases.scatter.as_nanos()
        ));
        s.push_str(&format!(
            ",\"phase_barrier_ns\":{}",
            self.phases.barrier.as_nanos()
        ));
        s.push_str(&format!(
            ",\"checkpoint_ns\":{}",
            self.checkpoint.as_nanos()
        ));
        match &self.query {
            Some(q) => {
                s.push_str(",\"query\":{");
                s.push_str(&format!("\"rule_firings\":{}", q.rule_firings));
                s.push_str(&format!(",\"derived_tuples\":{}", q.derived_tuples));
                s.push_str(&format!(",\"delta_tuples\":{}", q.delta_tuples));
                s.push_str(&format!(",\"fixpoint_rounds\":{}", q.fixpoint_rounds));
                s.push_str(&format!(",\"scratch_reuse\":{}", q.scratch_reuse));
                s.push_str(&format!(",\"scratch_alloc\":{}", q.scratch_alloc));
                s.push('}');
            }
            None => s.push_str(",\"query\":null"),
        }
        match &self.store {
            Some(st) => {
                s.push_str(",\"store\":{");
                s.push_str(&format!("\"tuples\":{}", st.tuples));
                s.push_str(&format!(",\"mem_bytes\":{}", st.mem_bytes));
                s.push_str(&format!(",\"disk_bytes\":{}", st.disk_bytes));
                s.push_str(&format!(",\"spills\":{}", st.spills));
                s.push_str(&format!(",\"sealed_segments\":{}", st.sealed_segments));
                s.push_str(&format!(",\"salvaged_records\":{}", st.salvaged_records));
                s.push_str(&format!(
                    ",\"quarantined_segments\":{}",
                    st.quarantined_segments
                ));
                s.push_str(&format!(",\"dropped_batches\":{}", st.dropped_batches));
                s.push_str(&format!(",\"compactions\":{}", st.compactions));
                s.push('}');
            }
            None => s.push_str(",\"store\":null"),
        }
        s.push('}');
        s
    }
}

impl<V> OnlineRun<V> {
    /// Build the run's introspection report.
    pub fn report(&self) -> RunReport {
        RunReport::from_metrics(&self.metrics).with_query(self.query_stats)
    }
}

impl<V> CaptureRun<V> {
    /// Build the run's introspection report.
    pub fn report(&self) -> RunReport {
        RunReport::from_metrics(&self.metrics)
            .with_query(self.query_stats)
            .with_store(&self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_sums_and_snapshots() {
        let acc = EvalStatsAccum::default();
        let a = EvalStats {
            rule_firings: 1,
            derived_tuples: 2,
            delta_tuples: 3,
            fixpoint_rounds: 4,
            scratch_reuse: 5,
            scratch_alloc: 6,
        };
        acc.add(&a);
        acc.add(&a);
        let snap = acc.snapshot();
        assert_eq!(snap.rule_firings, 2);
        assert_eq!(snap.derived_tuples, 4);
        assert_eq!(snap.scratch_alloc, 12);
    }

    #[test]
    fn json_has_fixed_shape() {
        let report = RunReport {
            supersteps: 3,
            query: Some(EvalStats::default()),
            ..RunReport::default()
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"supersteps\":3"));
        assert!(json.contains("\"phase_compute_ns\":0"));
        assert!(json.contains("\"query\":{\"rule_firings\":0"));
        assert!(json.contains("\"store\":null"));
        assert!(json.ends_with('}'));
    }
}
