//! Per-vertex query evaluation state, shared by the online wrapper and
//! the layered offline driver.

use ariadne_provenance::edb::{EdbTracker, NeededEdbs};
use ariadne_provenance::static_graph_edbs;
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::{Database, EvalStats, Evaluator, PqlError, Tuple, Value};
use std::collections::BTreeMap;

/// The query-side state one vertex carries: its partition of the
/// (transient or replayed) provenance database, incremental evaluation
/// frontiers, its activation history, and high-water marks for shipping
/// and persistence.
#[derive(Clone, Debug, Default)]
pub struct QueryState {
    /// Local EDB tuples, derived IDB tuples and neighbour replicas.
    pub db: Database,
    /// Semi-naive frontiers.
    pub eval: ariadne_pql::eval::seminaive::EvalState,
    /// Activation history for `evolution` generation.
    pub tracker: EdbTracker,
    /// Per-predicate counts already piggybacked to neighbours.
    pub(crate) ship_marks: BTreeMap<String, usize>,
    /// Per-predicate counts already persisted to the store.
    pub(crate) persist_marks: BTreeMap<String, usize>,
    pub(crate) statics_done: bool,
}

impl QueryState {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inject a batch of tuples into a relation (deduplicated).
    pub fn inject(&mut self, pred: &str, tuples: impl IntoIterator<Item = Tuple>) {
        for t in tuples {
            self.db.insert(pred, t);
        }
    }

    /// Inject the static graph EDBs (`edge`, `in_edge`) once, if needed.
    pub fn inject_statics(&mut self, graph: &Csr, vertex: VertexId, needed: &NeededEdbs) {
        if self.statics_done {
            return;
        }
        self.statics_done = true;
        for (pred, tuple) in static_graph_edbs(graph, vertex, needed) {
            self.db.insert(pred, tuple);
        }
    }

    /// Run the evaluator incrementally over everything injected or
    /// derived since the last call, with the head location pinned to
    /// `vertex`.
    pub fn evaluate(&mut self, evaluator: &Evaluator, vertex: VertexId) -> Result<(), PqlError> {
        let mut stats = EvalStats::default();
        self.evaluate_stats(evaluator, vertex, &mut stats)
    }

    /// Like [`QueryState::evaluate`], additionally accumulating the
    /// call's [`EvalStats`] into `stats` (run-local introspection).
    pub fn evaluate_stats(
        &mut self,
        evaluator: &Evaluator,
        vertex: VertexId,
        stats: &mut EvalStats,
    ) -> Result<(), PqlError> {
        let loc = Value::Id(vertex.0);
        evaluator.step_stats(&mut self.db, &mut self.eval, Some(&loc), stats)
    }

    /// Like [`QueryState::evaluate`] but restricted to one stratum — used
    /// by drivers that complete each stratum globally before the next
    /// (the naive whole-graph mode).
    pub fn evaluate_stratum(
        &mut self,
        evaluator: &Evaluator,
        vertex: VertexId,
        stratum: usize,
    ) -> Result<(), PqlError> {
        let mut stats = EvalStats::default();
        self.evaluate_stratum_stats(evaluator, vertex, stratum, &mut stats)
    }

    /// Like [`QueryState::evaluate_stratum`] with run-local stats
    /// accumulation.
    pub fn evaluate_stratum_stats(
        &mut self,
        evaluator: &Evaluator,
        vertex: VertexId,
        stratum: usize,
        stats: &mut EvalStats,
    ) -> Result<(), PqlError> {
        let loc = Value::Id(vertex.0);
        evaluator.step_stratum_stats(&mut self.db, &mut self.eval, Some(&loc), stratum, stats)
    }

    /// New tuples of `preds` since the last shipping mark; advances the
    /// marks. Only tuples *located at* `vertex` are shipped — replicas
    /// received from neighbours are not re-forwarded (communication
    /// stays single-hop, per the VC normal form).
    pub fn take_shippable(
        &mut self,
        preds: impl IntoIterator<Item = impl AsRef<str>>,
        vertex: VertexId,
    ) -> Vec<(String, Vec<Tuple>)> {
        self.take_since(preds, vertex, true)
    }

    /// New tuples of `preds` since the last persistence mark; advances
    /// the marks.
    pub fn take_persistable(
        &mut self,
        preds: impl IntoIterator<Item = impl AsRef<str>>,
        vertex: VertexId,
    ) -> Vec<(String, Vec<Tuple>)> {
        self.take_since(preds, vertex, false)
    }

    fn take_since(
        &mut self,
        preds: impl IntoIterator<Item = impl AsRef<str>>,
        vertex: VertexId,
        shipping: bool,
    ) -> Vec<(String, Vec<Tuple>)> {
        let own = Value::Id(vertex.0);
        let mut out = Vec::new();
        for pred in preds {
            let pred = pred.as_ref();
            let Some(rel) = self.db.relation(pred) else {
                continue;
            };
            let len = rel.len();
            let marks = if shipping {
                &mut self.ship_marks
            } else {
                &mut self.persist_marks
            };
            let mark = marks.entry(pred.to_string()).or_insert(0);
            if *mark >= len {
                continue;
            }
            let fresh: Vec<Tuple> = rel
                .scan_from(*mark)
                .iter()
                .filter(|t| t.first() == Some(&own))
                .cloned()
                .collect();
            *mark = len;
            if !fresh.is_empty() {
                out.push((pred.to_string(), fresh));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_graph::generators::regular::star;

    #[test]
    fn inject_dedups() {
        let mut q = QueryState::new();
        q.inject("p", vec![vec![Value::Id(1)], vec![Value::Id(1)]]);
        assert_eq!(q.db.len("p"), 1);
    }

    #[test]
    fn statics_once() {
        let g = star(3);
        let needed: NeededEdbs = ["edge".to_string()].into_iter().collect();
        let mut q = QueryState::new();
        q.inject_statics(&g, VertexId(0), &needed);
        q.inject_statics(&g, VertexId(0), &needed);
        assert_eq!(q.db.len("edge"), 2);
    }

    #[test]
    fn shipping_marks_advance_and_filter_replicas() {
        let mut q = QueryState::new();
        // One local tuple, one replica from vertex 9.
        q.inject(
            "change",
            vec![
                vec![Value::Id(1), Value::Int(0)],
                vec![Value::Id(9), Value::Int(0)],
            ],
        );
        let first = q.take_shippable(["change"], VertexId(1));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].1, vec![vec![Value::Id(1), Value::Int(0)]]);
        // Nothing new: second take is empty.
        assert!(q.take_shippable(["change"], VertexId(1)).is_empty());
        // Persist marks are independent.
        let persisted = q.take_persistable(["change"], VertexId(1));
        assert_eq!(persisted.len(), 1);
    }

    #[test]
    fn missing_relation_is_fine() {
        let mut q = QueryState::new();
        assert!(q.take_shippable(["nope"], VertexId(0)).is_empty());
    }
}
