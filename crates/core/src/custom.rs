//! Analytic-specific custom provenance relations.
//!
//! The paper's ALS queries (7 and 8) read `prov_error(x, y, i, e)` and
//! `prov_prediction(x, y, i, p)` — per-edge prediction errors the vertex
//! program itself never stores. A [`CustomProv`] implementation derives
//! such relations from the analytic's typed state as provenance is
//! generated, without touching the analytic.

use ariadne_analytics::als::Als;
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::{Catalog, Tuple, Value};
use ariadne_vc::{Envelope, VertexProgram};

/// Generator of analytic-specific provenance tuples, invoked once per
/// vertex per superstep with the analytic's typed state.
pub trait CustomProv<A: VertexProgram>: Send + Sync {
    /// Register the custom EDB schemas into `catalog` (so queries can
    /// reference them).
    fn register(&self, catalog: &mut Catalog);

    /// The relation names this generator produces.
    fn relations(&self) -> Vec<String>;

    /// Produce tuples for one vertex-superstep. `value` is the vertex
    /// value after computing; `messages` are the envelopes it received.
    fn tuples(
        &self,
        graph: &Csr,
        vertex: VertexId,
        superstep: u32,
        value: &A::V,
        messages: &[Envelope<A::M>],
    ) -> Vec<(String, Tuple)>;
}

/// ALS custom provenance: per incoming neighbour message, the predicted
/// rating `p = <f_x, f_y>` and its error `e = p - rating(x, y)`.
#[derive(Clone, Debug, Default)]
pub struct AlsProv;

/// Name of the per-edge error relation.
pub const PROV_ERROR: &str = "prov_error";
/// Name of the per-edge prediction relation.
pub const PROV_PREDICTION: &str = "prov_prediction";

impl CustomProv<Als> for AlsProv {
    fn register(&self, catalog: &mut Catalog) {
        catalog.register(PROV_ERROR, 4);
        catalog.register(PROV_PREDICTION, 4);
    }

    fn relations(&self) -> Vec<String> {
        vec![PROV_ERROR.to_string(), PROV_PREDICTION.to_string()]
    }

    fn tuples(
        &self,
        graph: &Csr,
        vertex: VertexId,
        superstep: u32,
        value: &Vec<f64>,
        messages: &[Envelope<Vec<f64>>],
    ) -> Vec<(String, Tuple)> {
        let x = Value::Id(vertex.0);
        let i = Value::Int(superstep as i64);
        let mut out = Vec::with_capacity(messages.len() * 2);
        for env in messages {
            if env.is_combined() {
                continue;
            }
            let Some(rating) = graph.edge_weight(vertex, env.src) else {
                continue;
            };
            let prediction = Als::predict(value, &env.msg);
            let y = Value::Id(env.src.0);
            out.push((
                PROV_PREDICTION.to_string(),
                vec![x.clone(), y.clone(), i.clone(), Value::Float(prediction)],
            ));
            out.push((
                PROV_ERROR.to_string(),
                vec![x.clone(), y, i.clone(), Value::Float(prediction - rating)],
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_graph::GraphBuilder;

    #[test]
    fn als_prov_generates_errors_and_predictions() {
        let mut b = GraphBuilder::new();
        b.add_undirected_edge(VertexId(0), VertexId(1), 4.0);
        let g = b.build();
        let prov = AlsProv;
        let value = vec![1.0, 2.0];
        let msgs = vec![Envelope::new(VertexId(1), vec![1.0, 1.0])];
        let tuples = prov.tuples(&g, VertexId(0), 3, &value, &msgs);
        assert_eq!(tuples.len(), 2);
        // prediction = 1*1 + 2*1 = 3, error = 3 - 4 = -1.
        assert_eq!(tuples[0].0, PROV_PREDICTION);
        assert_eq!(tuples[0].1[3], Value::Float(3.0));
        assert_eq!(tuples[1].0, PROV_ERROR);
        assert_eq!(tuples[1].1[3], Value::Float(-1.0));
    }

    #[test]
    fn messages_from_non_neighbours_skipped() {
        let g = GraphBuilder::new().build();
        let prov = AlsProv;
        let msgs = vec![Envelope::new(VertexId(5), vec![1.0])];
        // Vertex 0 doesn't even exist in the empty graph; edge lookup
        // would panic on out-of-range, so use a 1-vertex graph.
        let mut b = GraphBuilder::new();
        b.ensure_vertex(VertexId(5));
        let g1 = b.build();
        drop(g);
        assert!(prov.tuples(&g1, VertexId(0), 1, &vec![1.0], &msgs).is_empty());
    }

    #[test]
    fn registration() {
        let mut cat = Catalog::standard();
        AlsProv.register(&mut cat);
        assert!(cat.is_edb(PROV_ERROR));
        assert!(cat.is_edb(PROV_PREDICTION));
        assert_eq!(AlsProv.relations().len(), 2);
    }
}
