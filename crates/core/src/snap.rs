//! Snapshot codecs for the online wrapper's per-vertex state.
//!
//! The engine's checkpoint machinery ([`ariadne_vc::Snapshot`]) is
//! generic over the vertex value and message types; this module teaches
//! it to serialize [`OnlineState`] and [`OnlineMsg`], so online and
//! capture runs can checkpoint at barriers and resume bit-identically
//! after a crash (the query partition — database, delta frontiers,
//! activation history, shipping and persistence marks — is part of the
//! recovered state, not recomputed).
//!
//! PQL values are foreign to the engine crate, so their codec lives here
//! as free functions: one tag byte per [`Value`] variant, little-endian
//! fixed-width payloads, length-prefixed strings and lists (same layout
//! conventions as the engine's own snapshot primitives).

use crate::online::{OnlineMsg, OnlineState};
use crate::state::QueryState;
use ariadne_pql::eval::seminaive::EvalState;
use ariadne_pql::{Database, Tuple, Value};
use ariadne_provenance::edb::EdbTracker;
use ariadne_vc::{SnapError, Snapshot};
use std::sync::Arc;

const TAG_ID: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_LIST: u8 = 5;
const TAG_UNIT: u8 = 6;

/// Serialize one PQL value.
pub fn write_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Id(x) => {
            TAG_ID.write_snap(out);
            x.write_snap(out);
        }
        Value::Int(x) => {
            TAG_INT.write_snap(out);
            x.write_snap(out);
        }
        Value::Float(x) => {
            TAG_FLOAT.write_snap(out);
            x.write_snap(out);
        }
        Value::Bool(x) => {
            TAG_BOOL.write_snap(out);
            x.write_snap(out);
        }
        Value::Str(s) => {
            TAG_STR.write_snap(out);
            s.to_string().write_snap(out);
        }
        Value::List(items) => {
            TAG_LIST.write_snap(out);
            (items.len() as u64).write_snap(out);
            for item in items.iter() {
                write_value(item, out);
            }
        }
        Value::Unit => TAG_UNIT.write_snap(out),
    }
}

/// Deserialize one PQL value.
pub fn read_value(input: &mut &[u8]) -> Result<Value, SnapError> {
    match u8::read_snap(input)? {
        TAG_ID => Ok(Value::Id(u64::read_snap(input)?)),
        TAG_INT => Ok(Value::Int(i64::read_snap(input)?)),
        TAG_FLOAT => Ok(Value::Float(f64::read_snap(input)?)),
        TAG_BOOL => Ok(Value::Bool(bool::read_snap(input)?)),
        TAG_STR => Ok(Value::str(&String::read_snap(input)?)),
        TAG_LIST => {
            let n = u64::read_snap(input)? as usize;
            if n > input.len() {
                return Err(SnapError::BadLength(n as u64));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_value(input)?);
            }
            Ok(Value::List(Arc::new(items)))
        }
        TAG_UNIT => Ok(Value::Unit),
        t => Err(SnapError::BadTag(t)),
    }
}

fn write_tuple(t: &Tuple, out: &mut Vec<u8>) {
    (t.len() as u64).write_snap(out);
    for v in t {
        write_value(v, out);
    }
}

fn read_tuple(input: &mut &[u8]) -> Result<Tuple, SnapError> {
    let n = u64::read_snap(input)? as usize;
    if n > input.len() {
        return Err(SnapError::BadLength(n as u64));
    }
    let mut t = Vec::with_capacity(n);
    for _ in 0..n {
        t.push(read_value(input)?);
    }
    Ok(t)
}

fn write_tuples(tuples: &[Tuple], out: &mut Vec<u8>) {
    (tuples.len() as u64).write_snap(out);
    for t in tuples {
        write_tuple(t, out);
    }
}

fn read_tuples(input: &mut &[u8]) -> Result<Vec<Tuple>, SnapError> {
    let n = u64::read_snap(input)? as usize;
    if n > input.len() {
        return Err(SnapError::BadLength(n as u64));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_tuple(input)?);
    }
    Ok(out)
}

/// Serialize a database preserving both relation name order and tuple
/// insertion order, so shipping/persistence marks (scan indices) stay
/// valid after a restore.
pub fn write_database(db: &Database, out: &mut Vec<u8>) {
    let rels: Vec<_> = db.iter().collect();
    (rels.len() as u64).write_snap(out);
    for (name, rel) in rels {
        name.to_string().write_snap(out);
        (rel.arity() as u64).write_snap(out);
        write_tuples(rel.scan(), out);
    }
}

/// Deserialize a database written by [`write_database`].
pub fn read_database(input: &mut &[u8]) -> Result<Database, SnapError> {
    let nrels = u64::read_snap(input)? as usize;
    if nrels > input.len() {
        return Err(SnapError::BadLength(nrels as u64));
    }
    let mut db = Database::new();
    for _ in 0..nrels {
        let name = String::read_snap(input)?;
        let arity = u64::read_snap(input)? as usize;
        let tuples = read_tuples(input)?;
        let rel = db.relation_mut(&name, arity);
        for t in tuples {
            rel.insert(t);
        }
    }
    Ok(db)
}

impl Snapshot for QueryState {
    fn write_snap(&self, out: &mut Vec<u8>) {
        write_database(&self.db, out);
        let (frontiers, scan_free, aggs) = self.eval.to_parts();
        frontiers.write_snap(out);
        scan_free.write_snap(out);
        aggs.write_snap(out);
        self.tracker.last_active().write_snap(out);
        let marks: Vec<(String, usize)> = self
            .ship_marks
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        marks.write_snap(out);
        let marks: Vec<(String, usize)> = self
            .persist_marks
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        marks.write_snap(out);
        self.statics_done.write_snap(out);
    }

    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        let db = read_database(input)?;
        let frontiers = Vec::<(usize, String, usize)>::read_snap(input)?;
        let scan_free = Vec::<usize>::read_snap(input)?;
        let aggs = Vec::<(usize, usize)>::read_snap(input)?;
        let last_active = Option::<u32>::read_snap(input)?;
        let ship_marks = Vec::<(String, usize)>::read_snap(input)?;
        let persist_marks = Vec::<(String, usize)>::read_snap(input)?;
        let statics_done = bool::read_snap(input)?;
        Ok(QueryState {
            db,
            eval: EvalState::from_parts(frontiers, scan_free, aggs),
            tracker: EdbTracker::from_last_active(last_active),
            ship_marks: ship_marks.into_iter().collect(),
            persist_marks: persist_marks.into_iter().collect(),
            statics_done,
        })
    }
}

impl<V: Snapshot> Snapshot for OnlineState<V> {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.value.write_snap(out);
        self.q.write_snap(out);
    }

    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(OnlineState {
            value: V::read_snap(input)?,
            q: QueryState::read_snap(input)?,
        })
    }
}

impl<M: Snapshot> Snapshot for OnlineMsg<M> {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.msg.write_snap(out);
        (self.payload.len() as u64).write_snap(out);
        for (pred, tuples) in self.payload.iter() {
            pred.write_snap(out);
            write_tuples(tuples, out);
        }
    }

    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        let msg = M::read_snap(input)?;
        let n = u64::read_snap(input)? as usize;
        if n > input.len() {
            return Err(SnapError::BadLength(n as u64));
        }
        let mut payload = Vec::with_capacity(n);
        for _ in 0..n {
            let pred = String::read_snap(input)?;
            let tuples = read_tuples(input)?;
            payload.push((pred, tuples));
        }
        Ok(OnlineMsg {
            msg,
            payload: Arc::new(payload),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_graph::VertexId;

    fn roundtrip<T: Snapshot>(v: &T) -> T {
        let mut buf = Vec::new();
        v.write_snap(&mut buf);
        let mut input = buf.as_slice();
        let out = T::read_snap(&mut input).expect("roundtrip");
        assert!(input.is_empty(), "trailing bytes after decode");
        out
    }

    #[test]
    fn value_roundtrip_all_variants() {
        let vals = vec![
            Value::Id(7),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Bool(true),
            Value::str("hello"),
            Value::List(Arc::new(vec![Value::Int(1), Value::Unit])),
            Value::Unit,
        ];
        for v in &vals {
            let mut buf = Vec::new();
            write_value(v, &mut buf);
            let mut input = buf.as_slice();
            assert_eq!(&read_value(&mut input).unwrap(), v);
            assert!(input.is_empty());
        }
    }

    #[test]
    fn nan_float_roundtrips_bitwise() {
        let mut buf = Vec::new();
        write_value(&Value::Float(f64::NAN), &mut buf);
        let mut input = buf.as_slice();
        match read_value(&mut input).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn database_roundtrip_preserves_order() {
        let mut db = Database::new();
        db.insert("b", vec![Value::Id(2), Value::Int(0)]);
        db.insert("a", vec![Value::Id(9)]);
        db.insert("b", vec![Value::Id(1), Value::Int(5)]);
        let mut buf = Vec::new();
        write_database(&db, &mut buf);
        let mut input = buf.as_slice();
        let back = read_database(&mut input).unwrap();
        assert!(input.is_empty());
        let names: Vec<_> = back.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
        // Insertion order inside a relation survives (marks depend on it).
        assert_eq!(
            back.relation("b").unwrap().scan(),
            db.relation("b").unwrap().scan()
        );
    }

    #[test]
    fn query_state_roundtrip() {
        let mut q = QueryState::new();
        q.inject("p", vec![vec![Value::Id(1)], vec![Value::Id(2)]]);
        let _ = q.take_shippable(["p"], VertexId(1));
        let mut buf = Vec::new();
        q.write_snap(&mut buf);
        let mut input = buf.as_slice();
        let back = QueryState::read_snap(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(back.db.len("p"), 2);
        assert_eq!(back.ship_marks, q.ship_marks);
        assert_eq!(back.statics_done, q.statics_done);
        // A restored state takes nothing new (marks survived).
        let mut restored = back;
        assert!(restored.take_shippable(["p"], VertexId(1)).is_empty());
    }

    #[test]
    fn online_state_and_msg_roundtrip() {
        let st = OnlineState {
            value: 42i64,
            q: QueryState::new(),
        };
        let back = roundtrip(&st);
        assert_eq!(back.value, 42);

        let msg = OnlineMsg {
            msg: 7i64,
            payload: Arc::new(vec![("p".to_string(), vec![vec![Value::Id(3)]])]),
        };
        let back = roundtrip(&msg);
        assert_eq!(back.msg, 7);
        assert_eq!(back.payload.len(), 1);
        assert_eq!(back.payload[0].1, vec![vec![Value::Id(3)]]);
    }

    #[test]
    fn corrupt_tag_is_typed_error() {
        let buf = vec![0xFFu8];
        let mut input = buf.as_slice();
        assert!(matches!(
            read_value(&mut input),
            Err(SnapError::BadTag(0xFF))
        ));
    }
}
