//! Column-selective replay: which stored EDB columns a query actually
//! touches.
//!
//! The v2 segment format ([`ariadne_provenance::columnar`]) stores each
//! column of a packed batch as an independently skippable block. A query
//! that never looks at message *payloads* — most structural queries:
//! lineage, activation checks, Query 2's backward trace — should never
//! materialize them during replay. This module derives, per EDB
//! predicate, a **keep-mask** over argument positions that is sound for
//! result sets:
//!
//! A position is droppable iff in *every* scan (positive or negated) of
//! the predicate, across every rule, the argument there is a variable
//! that occurs **exactly once in its rule** — i.e. it is never joined
//! on, filtered, fed to a UDF, projected into a head, or aggregated.
//! Binding such a variable to [`ariadne_pql::Value::Unit`] instead of
//! the stored value cannot change any rule's derived head tuples.
//! Constants and arithmetic in a scan position obviously pin the column;
//! so does any rule with an aggregate head scanning the predicate (kept
//! conservatively: aggregate multiplicity could observe collapsed
//! bindings). Position 0 — the location specifier the replay driver
//! routes on — is always kept, as is every column of a predicate that is
//! also an IDB (its tuples round-trip through heads).
//!
//! Dropping a column *can* collapse tuples that differ only there (the
//! relation layer dedups), so intermediate counters like
//! [`ariadne_pql::EvalStats`] may differ between projected and
//! unprojected replays of the same store — result sets do not. Within a
//! fixed projection setting, replay stays bit-identical across segment
//! formats and thread counts (the mask is applied to v1 and v2 records
//! alike).

use ariadne_pql::analysis::{AnalyzedRule, Step};
use ariadne_pql::ast::{HeadArg, Term};
use ariadne_pql::AnalyzedQuery;
use std::collections::{BTreeMap, HashMap};

/// Occurrence counts of every variable in one rule (head + all steps;
/// pivot variants are reorderings of the same atoms and are not
/// double-counted).
fn var_occurrences(rule: &AnalyzedRule) -> HashMap<&str, usize> {
    fn bump<'a>(vars: &mut Vec<&'a str>, counts: &mut HashMap<&'a str, usize>) {
        for v in vars.drain(..) {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let mut counts: HashMap<&str, usize> = HashMap::new();
    let mut scratch: Vec<&str> = Vec::new();
    for arg in &rule.head_args {
        let term = match arg {
            HeadArg::Plain(t) => t,
            HeadArg::Agg(_, t) => t,
        };
        term.collect_vars(&mut scratch);
        bump(&mut scratch, &mut counts);
    }
    for step in &rule.steps {
        match step {
            Step::Scan { args, .. } | Step::Neg { args, .. } | Step::Udf { args, .. } => {
                for t in args {
                    t.collect_vars(&mut scratch);
                    bump(&mut scratch, &mut counts);
                }
            }
            Step::Assign { var, term } => {
                *counts.entry(var.as_str()).or_insert(0) += 1;
                term.collect_vars(&mut scratch);
                bump(&mut scratch, &mut counts);
            }
            Step::Filter { lhs, op: _, rhs } => {
                lhs.collect_vars(&mut scratch);
                bump(&mut scratch, &mut counts);
                rhs.collect_vars(&mut scratch);
                bump(&mut scratch, &mut counts);
            }
        }
    }
    counts
}

/// Per-EDB-predicate column keep-masks for `query` (see the module docs
/// for the soundness argument). Predicates that keep every column are
/// omitted from the map — an absent mask means "keep all".
pub fn column_masks(query: &AnalyzedQuery) -> BTreeMap<String, Vec<bool>> {
    // keep[pred][j] starts false (droppable) and is forced true by any
    // occurrence that needs the column.
    let mut keep: BTreeMap<String, Vec<bool>> = BTreeMap::new();
    for rule in &query.rules {
        let occurrences = var_occurrences(rule);
        for step in &rule.steps {
            let (pred, args) = match step {
                Step::Scan { pred, args, .. } | Step::Neg { pred, args } => (pred, args),
                _ => continue,
            };
            if !query.edbs.contains(pred) || query.idbs.contains_key(pred) {
                continue;
            }
            let mask = keep
                .entry(pred.clone())
                .or_insert_with(|| vec![false; args.len()]);
            if mask.len() < args.len() {
                mask.resize(args.len(), true);
            }
            for (j, term) in args.iter().enumerate() {
                let needed = j == 0
                    || rule.has_aggregate
                    || match term {
                        Term::Var(v) => occurrences.get(v.as_str()).copied().unwrap_or(0) != 1,
                        _ => true, // constants/params/arithmetic filter the column
                    };
                if needed {
                    mask[j] = true;
                }
            }
        }
    }
    // Keep only masks that actually drop something.
    keep.retain(|_, mask| mask.iter().any(|k| !k));
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use ariadne_pql::Params;

    fn masks(src: &str, params: Params) -> BTreeMap<String, Vec<bool>> {
        column_masks(compile(src, params).unwrap().query())
    }

    #[test]
    fn unused_message_payload_dropped() {
        // `m` occurs once: receive_message's payload column is dead.
        let m = masks(
            "hot(x, i) :- receive_message(x, y, m, i), superstep(y, i).",
            Params::new(),
        );
        assert_eq!(
            m.get("receive_message").map(Vec::as_slice),
            Some(&[true, true, false, true][..])
        );
        // superstep's columns are all used (y joins, i joins + head).
        assert!(!m.contains_key("superstep"));
    }

    #[test]
    fn joined_and_projected_columns_kept() {
        // m is projected into the head and y joins superstep: every
        // column of send_message is needed, so no mask is emitted.
        let m = masks(
            "out(x, m, i) :- send_message(x, y, m, i), superstep(y, i).",
            Params::new(),
        );
        assert!(!m.contains_key("send_message"), "{m:?}");
    }

    #[test]
    fn one_needy_scan_pins_the_column_for_all() {
        // Rule 1 ignores the payload, rule 2 filters on it: kept.
        let m = masks(
            "a(x, i) :- receive_message(x, y, m, i).
             b(x, i) :- receive_message(x, y, m, i), m > 0.5.",
            Params::new(),
        );
        assert_eq!(
            m.get("receive_message").map(Vec::as_slice),
            Some(&[true, false, true, true][..])
        );
    }

    #[test]
    fn constants_pin_columns() {
        let m = masks("z(x, i) :- value(x, d, i), i = 0.", Params::new());
        // d occurs once -> droppable; x and i used.
        assert_eq!(
            m.get("value").map(Vec::as_slice),
            Some(&[true, false, true][..])
        );
    }

    #[test]
    fn aggregates_keep_everything() {
        let m = masks(
            "deg(x, count(y)) :- receive_message(x, y, m, i).",
            Params::new(),
        );
        assert!(
            !m.contains_key("receive_message"),
            "aggregate rules keep all columns: {m:?}"
        );
    }

    #[test]
    fn negated_scans_never_drop() {
        // Negation requires bound vars, so they always occur elsewhere —
        // the mask for a negated-only column can't drop anything the
        // positive occurrences need.
        let m = masks(
            "q(x, i) :- superstep(x, i), !receive_message(x, y, m, i), value(x, y, j), value(x, m, k).",
            Params::new(),
        );
        assert!(!m.contains_key("receive_message"), "{m:?}");
    }
}
