//! The truly-online session: graph mutations between runs, incremental
//! re-execution, and provenance maintained as epoch deltas.
//!
//! [`MutableSession`] wraps an [`Ariadne`] handle around a
//! [`MutableGraph`]. Mutations queue in a [`GraphDelta`] via
//! [`MutableSession::mutate`] and merge at an explicit barrier —
//! [`MutableSession::commit`] — never mid-run, so every run sees one
//! immutable CSR snapshot (the engine's determinism contract is
//! untouched). A commit also rebalances the engine's degree-weighted
//! chunk table, recutting only when the mutation skewed some chunk's
//! work beyond tolerance, and carries it into the engine as a chunk
//! hint.
//!
//! Two re-execution paths after a commit:
//!
//! * [`MutableSession::capture_epoch`] — the **capture-grade** path:
//!   a full re-run of the analytic + capture query over the mutated
//!   graph, appended to a live [`ProvStore`] as a *delta epoch*
//!   ([`ProvStore::append_epoch`]). Results and logical provenance
//!   layers are bit-identical to a cold capture at every thread count
//!   (it *is* a cold capture — only the storage is incremental).
//! * [`MutableSession::rerun_incremental`] — the **result-only** path:
//!   frontier-seeded re-execution reusing previous-epoch values where
//!   the program's [`ariadne_vc::Incrementality`] contract allows,
//!   falling back to a full re-run otherwise. Bit-identical values,
//!   fewer supersteps; no provenance capture.
//!
//! `docs/MUTATIONS.md` walks through the full protocol.


#![warn(missing_docs)]
use crate::capture::{CaptureRun, CaptureSpec};
use crate::session::{Ariadne, AriadneError};
use ariadne_graph::{ChunkTable, Csr, GraphDelta, MutableGraph, MutationReport};
use ariadne_provenance::{EpochStats, ProvEncode, ProvStore, StoreConfig};
use ariadne_vc::{chunk_align, Engine, IncrementalRun, RunResult, VertexProgram};
use std::sync::Arc;

/// Work-imbalance tolerance before a commit recuts the chunk table:
/// a chunk may exceed the ideal per-chunk work by this fraction before
/// rebalancing bothers. Recutting is cheap but invalidates nothing —
/// any aligned table yields bit-identical results — so the tolerance
/// only trades recut frequency against steady-state balance.
const REBALANCE_TOLERANCE: f64 = 0.25;

/// An [`Ariadne`] session over a mutable graph. See the module docs.
#[derive(Clone, Debug)]
pub struct MutableSession {
    /// Engine/store configuration; `engine.chunk_hint` is maintained by
    /// [`MutableSession::commit`].
    pub session: Ariadne,
    graph: MutableGraph,
    pending: GraphDelta,
    /// The pre-commit snapshot backing the taint closure of the last
    /// commit (incremental re-execution taints over the *old* graph).
    prev_csr: Option<Csr>,
    last_report: Option<MutationReport>,
    chunks: Option<Arc<ChunkTable>>,
}

impl MutableSession {
    /// Wrap `graph` as mutation epoch 0.
    pub fn new(session: Ariadne, graph: Csr) -> Self {
        MutableSession {
            session,
            graph: MutableGraph::new(graph),
            pending: GraphDelta::new(),
            prev_csr: None,
            last_report: None,
            chunks: None,
        }
    }

    /// The current graph snapshot.
    pub fn csr(&self) -> &Csr {
        self.graph.csr()
    }

    /// The current mutation epoch (0 = initial load, +1 per commit).
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// Queued-but-uncommitted operations.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Queue a mutation batch. Batches accumulate in arrival order and
    /// apply atomically at the next [`MutableSession::commit`].
    pub fn mutate(&mut self, delta: GraphDelta) -> &mut Self {
        self.pending.merge(delta);
        self
    }

    /// The barrier: merge every queued batch into a new CSR snapshot,
    /// bump the epoch, and rebalance the engine's chunk table for the
    /// new degree distribution (recut only if some chunk's work drifted
    /// past tolerance). Returns what changed — the report seeds
    /// [`MutableSession::rerun_incremental`].
    pub fn commit(&mut self) -> MutationReport {
        let old = self.graph.csr().clone();
        let delta = std::mem::take(&mut self.pending);
        let report = self.graph.apply(&delta);
        let threads = self.session.engine.threads;
        if threads > 1 {
            let csr = self.graph.csr();
            let align = chunk_align(csr.num_vertices());
            let table = match &self.chunks {
                Some(t) => t.rebalance(csr, REBALANCE_TOLERANCE, align).0,
                None => ChunkTable::degree_weighted(csr, threads, align),
            };
            let table = Arc::new(table);
            self.chunks = Some(Arc::clone(&table));
            self.session.engine.chunk_hint = Some(table);
        }
        self.prev_csr = Some(old);
        self.last_report = Some(report.clone());
        report
    }

    /// Run the bare analytic on the current snapshot.
    pub fn baseline<A: VertexProgram>(&self, analytic: &A) -> RunResult<A::V> {
        self.session.baseline(analytic, self.graph.csr())
    }

    /// Result-only incremental re-execution after the last commit:
    /// reuse `prev_values` (the previous epoch's final values) where
    /// the analytic's [`ariadne_vc::Incrementality`] contract allows,
    /// re-running only from the mutation's invalidation frontier.
    /// Values are bit-identical to [`MutableSession::baseline`] on the
    /// mutated graph at every thread count; the returned
    /// [`IncrementalRun`] says which path ran and how much was reused.
    ///
    /// Errors if no commit has happened yet.
    pub fn rerun_incremental<A>(
        &self,
        analytic: &A,
        prev_values: &[A::V],
    ) -> Result<IncrementalRun<A::V>, AriadneError>
    where
        A: VertexProgram,
        A::V: Sync,
    {
        let (Some(old), Some(report)) = (&self.prev_csr, &self.last_report) else {
            return Err(AriadneError::NoCommittedMutation);
        };
        Ok(Engine::new(self.session.engine.clone()).run_incremental(
            analytic,
            old,
            self.graph.csr(),
            prev_values,
            report,
        ))
    }

    /// Capture-grade re-execution after a mutation: full re-run of
    /// analytic + capture query over the current snapshot (bit-identical
    /// to a cold capture — provenance layer identity is the contract,
    /// so no frontier shortcut here), whose store is then appended to
    /// `store` as a delta epoch. `store`'s logical layers afterwards
    /// read bit-identical to the fresh capture while paying only the
    /// diff in storage; `store.mutation_epoch()` advances, which is
    /// what invalidates serve-layer cursors and replay caches.
    pub fn capture_epoch<A>(
        &self,
        analytic: &A,
        spec: &CaptureSpec,
        store: &mut ProvStore,
    ) -> Result<(CaptureRun<A::V>, EpochStats), AriadneError>
    where
        A: VertexProgram,
        A::V: ProvEncode,
        A::M: ProvEncode,
    {
        let scratch = Ariadne {
            engine: self.session.engine.clone(),
            store: StoreConfig::in_memory(),
            naive_budget: self.session.naive_budget,
        };
        let run = scratch.capture(analytic, self.graph.csr(), spec)?;
        let stats = store.append_epoch(&run.store)?;
        Ok((run, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_analytics::Sssp;
    use ariadne_graph::{GraphBuilder, VertexId};
    use ariadne_vc::IncrementalMode;

    fn chain(n: u64) -> Csr {
        let mut b = GraphBuilder::new();
        for i in 0..n.saturating_sub(1) {
            b.add_edge(VertexId(i), VertexId(i + 1), 1.0);
        }
        b.build()
    }

    #[test]
    fn commit_applies_pending_batches_in_order() {
        let mut s = MutableSession::new(Ariadne::default(), chain(4));
        let mut d1 = GraphDelta::new();
        d1.add_edge(VertexId(0), VertexId(3), 1.0);
        let mut d2 = GraphDelta::new();
        d2.remove_edge(VertexId(0), VertexId(3));
        s.mutate(d1).mutate(d2);
        assert_eq!(s.pending_ops(), 2);
        let report = s.commit();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.pending_ops(), 0);
        // Normalization applies removals before inserts within one
        // barrier, so the queued add survives the queued remove.
        assert_eq!(report.inserted_edges, 1);
        assert_eq!(s.csr().num_edges(), 4);
    }

    #[test]
    fn rerun_incremental_matches_baseline() {
        let mut s = MutableSession::new(Ariadne::with_threads(3), chain(8));
        let sssp = Sssp::new(VertexId(0));
        let before = s.baseline(&sssp);
        let mut d = GraphDelta::new();
        d.add_edge(VertexId(0), VertexId(5), 1.5);
        s.mutate(d);
        s.commit();
        let inc = s.rerun_incremental(&sssp, &before.values).unwrap();
        assert_eq!(inc.mode, IncrementalMode::Frontier);
        assert_eq!(inc.result.values, s.baseline(&sssp).values);
    }

    #[test]
    fn rerun_incremental_before_commit_errors() {
        let s = MutableSession::new(Ariadne::default(), chain(3));
        let sssp = Sssp::new(VertexId(0));
        assert!(s.rerun_incremental(&sssp, &[0.0, 1.0, 2.0]).is_err());
    }
}
