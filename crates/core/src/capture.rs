//! Declaratively customized provenance capture (§3, §6.1).
//!
//! A [`CaptureSpec`] says *what* goes into the provenance store:
//!
//! * a set of raw Table-1 predicates (`value`, `send_message`, …) — the
//!   paper's Query 2 "capture the full provenance graph" is
//!   [`CaptureSpec::full`], and dropping predicates from the set is the
//!   customization that shrinks Tables 3 → 4;
//! * optionally, a **capture query** whose head relations are persisted —
//!   Query 3's recursive forward lineage and Query 11's
//!   `prov_value`/`prov_send`/`prov_edges` backward-custom capture.
//!
//! Capture runs online: the spec is compiled into the same wrapper as
//! online queries, with persistence enabled and an async store writer
//! draining tuples off the compute path.

use crate::compile::CompiledQuery;
use ariadne_provenance::edb::NeededEdbs;
use std::collections::BTreeSet;

/// What to capture.
#[derive(Clone, Debug, Default)]
pub struct CaptureSpec {
    /// Raw provenance EDB predicates to persist.
    pub edbs: NeededEdbs,
    /// Capture rules; their head relations are persisted too.
    pub query: Option<CompiledQuery>,
}

impl CaptureSpec {
    /// Full provenance graph capture (the paper's Query 2): the
    /// activation records (`superstep`), vertex `value`s, `evolution`
    /// edges and both message directions. This is exactly the compact
    /// representation of the unfolded provenance graph — its nodes
    /// (`superstep` × `value`) and its evolution and message edges.
    ///
    /// `edge_value` is deliberately **not** part of the full capture:
    /// edge weights are static input data, recoverable from the input
    /// graph rather than the store. It is generated (and persisted) on
    /// demand when a capture spec or query reads it — e.g. the ALS
    /// range-check query — like every other Table-1 predicate.
    pub fn full() -> Self {
        CaptureSpec {
            edbs: ["superstep", "value", "evolution", "send_message", "receive_message"]
                .into_iter()
                .map(String::from)
                .collect(),
            query: None,
        }
    }

    /// Capture only the given raw predicates.
    pub fn raw<I: IntoIterator<Item = S>, S: Into<String>>(preds: I) -> Self {
        CaptureSpec {
            edbs: preds.into_iter().map(Into::into).collect(),
            query: None,
        }
    }

    /// Capture through a query: only its head relations (plus any raw
    /// predicates already in the spec) are persisted.
    pub fn with_query(mut self, query: CompiledQuery) -> Self {
        self.query = Some(query);
        self
    }

    /// EDB predicates that must be *generated* during the run: the raw
    /// set plus whatever the capture query reads.
    pub fn needed(&self) -> NeededEdbs {
        let mut needed = self.edbs.clone();
        if let Some(q) = &self.query {
            needed.extend(q.query().edbs.iter().cloned());
        }
        needed
    }

    /// Predicates persisted to the store: raw EDBs plus query heads.
    pub fn persist_preds(&self) -> BTreeSet<String> {
        let mut preds = self.edbs.clone();
        if let Some(q) = &self.query {
            preds.extend(q.query().idbs.keys().cloned());
        }
        preds
    }

    /// Whether the capture can run online (capture always runs alongside
    /// the analytic, so its query must be forward or local).
    pub fn supports_online(&self) -> bool {
        self.query
            .as_ref()
            .map(|q| q.direction().supports_online())
            .unwrap_or(true)
    }
}

/// The outcome of a capture run.
#[derive(Debug)]
pub struct CaptureRun<V> {
    /// Final analytic values (unchanged by capture).
    pub values: Vec<V>,
    /// The captured provenance store.
    pub store: ariadne_provenance::ProvStore,
    /// Engine metrics for the capture run.
    pub metrics: ariadne_vc::RunMetrics,
    /// Query-evaluation counters accumulated across all vertices (zero
    /// for raw captures with no capture query).
    pub query_stats: ariadne_pql::EvalStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use ariadne_pql::Params;

    #[test]
    fn full_spec_covers_table1() {
        let spec = CaptureSpec::full();
        // The compact representation of the unfolded provenance graph:
        // its nodes and its evolution + message edges.
        for pred in ["superstep", "value", "evolution", "send_message", "receive_message"] {
            assert!(spec.edbs.contains(pred), "full() must capture {pred}");
        }
        // Static input data is NOT captured: edge weights live in the
        // input graph, and `edge_value` is generated only on demand.
        assert!(!spec.edbs.contains("edge_value"));
        assert!(!spec.edbs.contains("edge"));
        assert!(spec.supports_online());
        assert_eq!(spec.needed(), spec.edbs);
        assert_eq!(spec.persist_preds(), spec.edbs);
    }

    #[test]
    fn query_spec_unions_needs() {
        let q = compile(
            "prov_value(x, i, v) :- value(x, v, i), superstep(x, i).",
            Params::new(),
        )
        .unwrap();
        let spec = CaptureSpec::raw(["evolution"]).with_query(q);
        let needed = spec.needed();
        assert!(needed.contains("value"));
        assert!(needed.contains("superstep"));
        assert!(needed.contains("evolution"));
        let persist = spec.persist_preds();
        assert!(persist.contains("prov_value"));
        assert!(persist.contains("evolution"));
        assert!(!persist.contains("value"));
    }
}
