//! Naive offline evaluation — the traditional capture-first,
//! query-offline baseline (§6.2's *Naive* series).
//!
//! This is "straightforward offline querying on the captured provenance
//! graph": the **whole** provenance graph is materialized at once (per
//! input vertex, its compact annotation tables; plus the unfolded view),
//! and the query vertex program iterates over *all* vertices round after
//! round — shipping replica tables to every neighbour each round — until
//! a global fixpoint. No layer ordering is exploited, which is exactly
//! why this mode is slow and memory-hungry: the paper's Naive "was not
//! able to scale beyond the two smallest datasets in any of our
//! experiments". A configurable tuple budget reproduces that failure
//! deterministically.
//!
//! Strata are completed globally before the next stratum starts, so
//! stratified negation never races replica arrival.
//!
//! The module also provides [`run_centralized`]: a single-database
//! semi-naive evaluation used as the correctness oracle in the test suite
//! and as the only option for queries that are not VC-compatible.

use crate::compile::CompiledQuery;
use crate::session::AriadneError;
use crate::state::QueryState;
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::{Database, Value};
use ariadne_provenance::{ProvStore, UnfoldedGraph};

/// The outcome of a naive evaluation.
#[derive(Debug)]
pub struct NaiveRun {
    /// Merged query tables (IDB results).
    pub database: Database,
    /// Nodes of the materialized unfolded provenance graph.
    pub unfolded_nodes: usize,
    /// Edges of the materialized unfolded provenance graph.
    pub unfolded_edges: usize,
    /// Global rounds until fixpoint.
    pub rounds: u32,
}

/// Evaluate `query` naively over the whole materialized provenance.
///
/// `tuple_budget` simulates the memory ceiling of the evaluation cluster:
/// if the materialized provenance exceeds it, the run fails with
/// [`AriadneError::NaiveOverflow`] like the paper's Naive runs on the
/// larger datasets.
pub fn run_naive(
    graph: &Csr,
    store: &ProvStore,
    query: &CompiledQuery,
    tuple_budget: Option<usize>,
) -> Result<NaiveRun, AriadneError> {
    let total = store.tuple_count();
    if let Some(budget) = tuple_budget {
        if total > budget {
            return Err(AriadneError::NaiveOverflow {
                tuples: total,
                budget,
            });
        }
    }
    if !query.direction().is_vc_compatible() {
        // Unguarded remote references cannot run as a vertex program at
        // all; the only option is the centralized engine.
        let database = run_centralized(graph, store, query)?;
        return Ok(NaiveRun {
            database,
            unfolded_nodes: 0,
            unfolded_edges: 0,
            rounds: 1,
        });
    }

    let analyzed = query.query();
    let n = graph.num_vertices();
    let mut states: Vec<QueryState> = vec![QueryState::new(); n];

    // Materialize everything at once: all layers into their vertices...
    if let Some(max) = store.max_superstep() {
        for s in 0..=max {
            for (pred, tuples) in store.layer(s).map_err(AriadneError::Store)? {
                for t in tuples {
                    if let Some(v) = t.first().and_then(|v| v.as_id()) {
                        if (v as usize) < n {
                            states[v as usize].db.insert(&pred, t);
                        }
                    }
                }
            }
        }
    }
    for v in graph.vertices() {
        states[v.index()].inject_statics(graph, v, &analyzed.edbs);
    }
    // ...plus the unfolded graph view (part of the memory blowup).
    let mut full_db = Database::new();
    for st in &states {
        for (name, rel) in st.db.iter() {
            for t in rel.scan() {
                full_db.insert(name, t.clone());
            }
        }
    }
    let unfolded = UnfoldedGraph::from_database(&full_db);
    drop(full_db);

    // Global fixpoint, stratum by stratum. Within a stratum, every round
    // evaluates every vertex and ships fresh shipped-table tuples to all
    // neighbours (both directions: the whole-graph mode has no layer
    // ordering to restrict routes).
    let shipped: Vec<&String> = analyzed.shipped.iter().collect();
    let evaluator = query.evaluator();
    let mut rounds = 0u32;

    // Priming round: replicate shipped EDB partitions before any rule
    // evaluates, so remote negation never reads an incomplete replica.
    ship_fresh(graph, &mut states, &shipped, &mut rounds);

    for stratum in 0..evaluator.num_strata() {
        loop {
            rounds += 1;
            for (vi, state) in states.iter_mut().enumerate() {
                state
                    .evaluate_stratum(evaluator, VertexId(vi as u64), stratum)
                    .map_err(AriadneError::Pql)?;
            }
            let mut dummy = 0;
            if !ship_fresh(graph, &mut states, &shipped, &mut dummy) {
                break;
            }
        }
    }

    // Merge IDB results.
    let mut merged = Database::new();
    for st in &states {
        for (name, rel) in st.db.iter() {
            if analyzed.idbs.contains_key(name) {
                for t in rel.scan() {
                    merged.insert(name, t.clone());
                }
            }
        }
    }
    Ok(NaiveRun {
        database: merged,
        unfolded_nodes: unfolded.num_nodes(),
        unfolded_edges: unfolded.num_edges(),
        rounds,
    })
}

/// Ship every vertex's fresh shipped-table tuples to all its neighbours
/// (both directions). Returns whether anything moved.
fn ship_fresh(
    graph: &Csr,
    states: &mut [QueryState],
    shipped: &[&String],
    rounds: &mut u32,
) -> bool {
    if shipped.is_empty() {
        return false;
    }
    *rounds += 1;
    let mut moved = false;
    #[allow(clippy::type_complexity)]
    let mut deliveries: Vec<(usize, String, Vec<ariadne_pql::Tuple>)> = Vec::new();
    for (vi, state) in states.iter_mut().enumerate() {
        let vertex = VertexId(vi as u64);
        let fresh = state.take_shippable(shipped.iter().map(|s| s.as_str()), vertex);
        if fresh.is_empty() {
            continue;
        }
        let mut neighbors: Vec<VertexId> = graph
            .out_neighbors(vertex)
            .iter()
            .chain(graph.in_neighbors(vertex))
            .copied()
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        for (pred, tuples) in fresh {
            for &nb in &neighbors {
                deliveries.push((nb.index(), pred.clone(), tuples.clone()));
            }
        }
    }
    for (vi, pred, tuples) in deliveries {
        for t in tuples {
            if states[vi].db.insert(&pred, t) {
                moved = true;
            }
        }
    }
    moved
}

/// Centralized evaluation: load everything into one database and run the
/// semi-naive engine. The correctness oracle for the other modes, and
/// the only evaluator for non-VC-compatible queries.
pub fn run_centralized(
    graph: &Csr,
    store: &ProvStore,
    query: &CompiledQuery,
) -> Result<Database, AriadneError> {
    let mut db = store.to_database().map_err(AriadneError::Store)?;
    let analyzed = query.query();
    if analyzed.edbs.contains("edge") {
        for (s, d, _) in graph.edges() {
            db.insert("edge", vec![Value::Id(s.0), Value::Id(d.0)]);
        }
    }
    if analyzed.edbs.contains("in_edge") {
        for (s, d, _) in graph.edges() {
            db.insert("in_edge", vec![Value::Id(d.0), Value::Id(s.0)]);
        }
    }
    query.evaluator().run(&mut db).map_err(AriadneError::Pql)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use ariadne_graph::generators::regular::path;
    use ariadne_pql::Params;
    use ariadne_provenance::StoreConfig;

    fn store_with_steps() -> ProvStore {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(
            0,
            "superstep",
            vec![
                vec![Value::Id(0), Value::Int(0)],
                vec![Value::Id(1), Value::Int(0)],
            ],
        )
        .unwrap();
        store
    }

    #[test]
    fn budget_guard() {
        let g = path(2);
        let store = store_with_steps();
        let q = compile("active(x, i) :- superstep(x, i).", Params::new()).unwrap();
        match run_naive(&g, &store, &q, Some(1)) {
            Err(AriadneError::NaiveOverflow { tuples, budget }) => {
                assert_eq!(tuples, 2);
                assert_eq!(budget, 1);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
        assert!(run_naive(&g, &store, &q, Some(100)).is_ok());
    }

    #[test]
    fn local_query_whole_graph() {
        let g = path(2);
        let store = store_with_steps();
        let q = compile("active(x, i) :- superstep(x, i).", Params::new()).unwrap();
        let run = run_naive(&g, &store, &q, None).unwrap();
        assert_eq!(run.database.len("active"), 2);
        assert!(run.unfolded_nodes >= 2);
        assert!(run.rounds >= 1);
    }

    #[test]
    fn unrestricted_queries_fall_back_to_centralized() {
        let g = path(3);
        let store = store_with_steps();
        // t(y, i) is remote and unguarded in r's body.
        let q = compile(
            "t(y, i) :- superstep(y, i).
             r(x, i) :- superstep(x, i), t(y, i), x != y.",
            Params::new(),
        )
        .unwrap();
        assert!(!q.direction().is_vc_compatible());
        let run = run_naive(&g, &store, &q, None).unwrap();
        // Vertices 0 and 1 are both active at superstep 0: each sees the
        // other in the centralized view.
        assert_eq!(run.database.len("r"), 2);
    }

    #[test]
    fn centralized_injects_graph_edbs() {
        let g = path(3);
        let store = ProvStore::new(StoreConfig::in_memory());
        let q = compile(
            "deg(x, count(y)) :- edge(x, y).
             incoming(x, count(y)) :- in_edge(x, y).",
            Params::new(),
        )
        .unwrap();
        let db = run_centralized(&g, &store, &q).unwrap();
        assert_eq!(db.len("deg"), 2); // vertices 0 and 1 have out-edges
        assert_eq!(db.len("incoming"), 2); // vertices 1 and 2 have in-edges
    }
}
