//! The paper's queries (1–12) as ready-made builders.
//!
//! Each builder returns a [`CompiledQuery`] or [`CaptureSpec`]. The PQL
//! sources follow the paper §4–§6 with two mechanical adaptations:
//! hyphens in names become underscores, and rules are stated with the
//! most selective scan first (identical semantics, better join order).
//! Where the paper's published rules contain small infelicities (Query
//! 7's unsatisfiable range conjunction, Query 4's count-based zero test)
//! we implement the stated intent and note it inline.

use crate::capture::CaptureSpec;
use crate::compile::{compile, compile_with, CompiledQuery};
use ariadne_graph::VertexId;
use ariadne_pql::catalog::MessageKind;
use ariadne_pql::{Catalog, Params, PqlError, UdfRegistry, Value};

/// Query 1 — the apt (approximate-optimization) query of §2.2/§6.2.2.
///
/// `udf` is the vertex-value comparison function: `udf_diff` for
/// PageRank/SSSP/WCC, `udf_euclidean` for ALS; `eps` the threshold.
pub fn apt(udf: &str, eps: Value) -> Result<CompiledQuery, PqlError> {
    let src = format!(
        "change(x, i) :- evolution(x, j, i), value(x, d1, i), value(x, d2, j), {udf}(d1, d2, $eps).
         neighbor_change(x, i) :- receive_message(x, y, m, i), !change(y, j), j = i - 1.
         no_execute(x, i) :- !neighbor_change(x, i), superstep(x, i), i > 0.
         safe(x, i) :- no_execute(x, i), change(x, i).
         unsafe(x, i) :- no_execute(x, i), !change(x, i)."
    );
    compile(&src, Params::new().with("eps", eps))
}

/// Query 2 — capture the full provenance graph.
pub fn capture_full() -> CaptureSpec {
    CaptureSpec::full()
}

/// Query 3 — custom capture: the forward lineage (set of influenced
/// vertices with their values) of vertex `alpha`.
pub fn capture_forward_lineage(alpha: VertexId) -> Result<CaptureSpec, PqlError> {
    let q = compile(
        "fwd_lineage(x, v, i) :- value(x, v, i), superstep(x, i), x = $alpha, i = 0.
         fwd_lineage(x, v, i) :- receive_message(x, y, m, i), fwd_lineage(y, w, j), value(x, v, i).",
        Params::new().with("alpha", Value::Id(alpha.0)),
    )?;
    Ok(CaptureSpec::default().with_query(q))
}

/// Query 4 — PageRank execution monitoring: a vertex with no incoming
/// edges must never receive a message. (The paper phrases the zero test
/// over `in_degree`; counts never produce zero rows in datalog, so the
/// faithful executable form uses negation. `in_degree` is still
/// computed, as the paper's overhead includes it.)
pub fn pagerank_check() -> Result<CompiledQuery, PqlError> {
    compile(
        "in_degree(x, count(y)) :- in_edge(x, y).
         has_in(x) :- in_edge(x, y).
         check_failed(x, y, i) :- receive_message(x, y, m, i), !has_in(x).",
        Params::new(),
    )
}

/// Query 5 — SSSP/WCC monitoring: a vertex value must never increase
/// (values only shrink toward the fixpoint when messages arrive).
pub fn sssp_wcc_value_check() -> Result<CompiledQuery, PqlError> {
    compile(
        "check_failed(x, i) :- evolution(x, j, i), value(x, d1, i), value(x, d2, j), receive_message(x, y, m, i), d1 > d2.",
        Params::new(),
    )
}

/// Query 6 — SSSP/WCC monitoring: no change without messages.
pub fn sssp_wcc_no_message_no_change() -> Result<CompiledQuery, PqlError> {
    compile(
        "neighbor_change(x, i) :- receive_message(x, y, m, i).
         problem(x, i) :- evolution(x, j, i), value(x, d1, i), value(x, d2, j), !neighbor_change(x, i), d1 != d2.",
        Params::new(),
    )
}

/// The catalog extended with the ALS custom provenance relations.
pub fn als_catalog() -> Catalog {
    let mut c = Catalog::standard();
    c.register(crate::custom::PROV_ERROR, 4);
    c.register(crate::custom::PROV_PREDICTION, 4);
    c
}

/// Query 7 — ALS data/algorithm range check: a failing per-edge error is
/// attributed to the input (rating outside 0–5) or to the algorithm
/// (prediction outside 0–5). The paper's published conjunction `e < 0,
/// e > 5` is unsatisfiable as written; this implements its stated intent
/// with `udf_out_of_range`.
pub fn als_range_check() -> Result<CompiledQuery, PqlError> {
    compile_with(
        "input_failed(x, y, i) :- prov_error(x, y, i, e), edge_value(x, y, w, i), udf_out_of_range(e, -5, 5), udf_out_of_range(w, 0, 5).
         algo_failed(x, y, i) :- prov_error(x, y, i, e), prov_prediction(x, y, i, p), udf_out_of_range(e, -5, 5), udf_out_of_range(p, 0, 5).",
        Params::new(),
        &als_catalog(),
        UdfRegistry::standard(),
    )
}

/// Query 8 — ALS quality monitoring: vertices whose average prediction
/// error increased by more than `eps` between consecutive active
/// supersteps.
pub fn als_error_increase(eps: f64) -> Result<CompiledQuery, PqlError> {
    compile_with(
        "degree(x, count(y)) :- receive_message(x, y, m, i).
         sum_error(x, i, sum(e)) :- prov_error(x, y, i, e).
         avg_error(x, i, s / d) :- sum_error(x, i, s), degree(x, d).
         problem(x, e1, e2, i) :- avg_error(x, i, e1), avg_error(x, j, e2), evolution(x, j, i), e1 > e2 + $eps.",
        Params::new().with("eps", Value::Float(eps)),
        &als_catalog(),
        UdfRegistry::standard(),
    )
}

/// Pruned capture (§7's provenance-pruning idea, expressed in PQL):
/// persist a vertex's value only at supersteps where it actually
/// *changed*. For analytics that recompute without changing (PageRank
/// tails, WCC non-updates) this drops the redundant rows that dominate
/// `value`'s volume, with no loss for queries that only care about
/// change points.
pub fn capture_changed_values() -> Result<CaptureSpec, PqlError> {
    let q = compile(
        "prov_changed(x, i, v) :- value(x, v, i), superstep(x, i), i = 0.
         prov_changed(x, i, v) :- evolution(x, j, i), value(x, v, i), value(x, w, j), v != w.",
        Params::new(),
    )?;
    Ok(CaptureSpec::default().with_query(q))
}

/// Query 10 — backward lineage over the full provenance graph: the
/// superstep-0 ancestors of vertex `alpha`'s value at superstep `sigma`.
pub fn backward_lineage(alpha: VertexId, sigma: u32) -> Result<CompiledQuery, PqlError> {
    compile(
        "back_trace(x, i) :- superstep(x, i), i = $sigma, x = $alpha.
         back_trace(x, i) :- send_message(x, y, m, i), back_trace(y, j), j = i + 1.
         back_lineage(x, d) :- back_trace(x, i), value(x, d, i), i = 0.",
        Params::new()
            .with("alpha", Value::Id(alpha.0))
            .with("sigma", Value::Int(sigma as i64)),
    )
}

/// Query 11 — custom capture for backward lineage: vertex values per
/// superstep, send *activity* (not message payloads), and the static
/// out-edges — everything Query 12 needs, nothing more.
pub fn capture_backward_custom() -> Result<CaptureSpec, PqlError> {
    let q = compile(
        "prov_value(x, i, v) :- value(x, v, i), superstep(x, i).
         prov_send(x, i) :- send_message(x, y, m, i).
         prov_edges(x, y) :- edge(x, y).",
        Params::new(),
    )?;
    Ok(CaptureSpec::default().with_query(q))
}

/// Variant of Query 11 for analytics that message *both* edge directions
/// (WCC): `prov_edges` must cover in-edges too, or Query 12 under-traces.
/// (The paper's out-edge substitution is only valid "for analytics where
/// vertices send messages to all their outgoing neighbors", §6.3.)
pub fn capture_backward_custom_undirected() -> Result<CaptureSpec, PqlError> {
    let q = compile(
        "prov_value(x, i, v) :- value(x, v, i), superstep(x, i).
         prov_send(x, i) :- send_message(x, y, m, i).
         prov_edges(x, y) :- edge(x, y).
         prov_edges(x, y) :- in_edge(x, y).",
        Params::new(),
    )?;
    Ok(CaptureSpec::default().with_query(q))
}

/// The catalog for queries over the Query-11 custom capture:
/// `prov_edges` is registered as communication-certifying so the
/// directedness analysis accepts Query 12 as backward (§6.3).
pub fn backward_custom_catalog() -> Catalog {
    let mut c = Catalog::standard();
    c.register("prov_value", 3);
    c.register("prov_send", 2);
    c.register_message_like("prov_edges", 2, 1, MessageKind::Send);
    c
}

/// Query 12 — backward lineage over the custom capture of Query 11.
pub fn backward_lineage_custom(
    alpha: VertexId,
    sigma: u32,
) -> Result<CompiledQuery, PqlError> {
    compile_with(
        "back_trace(x, i) :- prov_value(x, i, v), i = $sigma, x = $alpha.
         back_trace(x, i) :- prov_edges(x, y), prov_send(x, i), back_trace(y, j), j = i + 1.
         back_lineage(x, d) :- back_trace(x, i), prov_value(x, i, d), i = 0.",
        Params::new()
            .with("alpha", Value::Id(alpha.0))
            .with("sigma", Value::Int(sigma as i64)),
        &backward_custom_catalog(),
        UdfRegistry::standard(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_pql::Direction;

    #[test]
    fn apt_is_forward() {
        let q = apt("udf_diff", Value::Float(0.01)).unwrap();
        assert_eq!(q.direction(), Direction::Forward);
        assert!(q.query().shipped.contains("change"));
    }

    #[test]
    fn monitoring_queries_are_online_capable() {
        for q in [
            pagerank_check().unwrap(),
            sssp_wcc_value_check().unwrap(),
            sssp_wcc_no_message_no_change().unwrap(),
            als_range_check().unwrap(),
            als_error_increase(0.5).unwrap(),
        ] {
            assert!(q.direction().supports_online(), "{:?}", q.direction());
        }
    }

    #[test]
    fn lineage_queries_classify() {
        let fwd = capture_forward_lineage(VertexId(0)).unwrap();
        assert!(fwd.supports_online());
        let bwd = backward_lineage(VertexId(0), 5).unwrap();
        assert_eq!(bwd.direction(), Direction::Backward);
        assert!(!bwd.direction().supports_online());
        let bwd_custom = backward_lineage_custom(VertexId(0), 5).unwrap();
        assert_eq!(bwd_custom.direction(), Direction::Backward);
    }

    #[test]
    fn backward_custom_capture_is_local() {
        let spec = capture_backward_custom().unwrap();
        assert!(spec.supports_online());
        let persist = spec.persist_preds();
        assert!(persist.contains("prov_value"));
        assert!(persist.contains("prov_send"));
        assert!(persist.contains("prov_edges"));
        // It reads message payloads' existence but stores none of them.
        assert!(!persist.contains("send_message"));
    }

    #[test]
    fn capture_specs_need_right_edbs() {
        let spec = capture_forward_lineage(VertexId(3)).unwrap();
        let needed = spec.needed();
        assert!(needed.contains("value"));
        assert!(needed.contains("receive_message"));
        assert!(needed.contains("superstep"));
    }
}
