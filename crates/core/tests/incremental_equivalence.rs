//! The mutation-equivalence matrix (the PR-10 acceptance contract):
//! random mutation batches (insert-only / delete-only / mixed) ×
//! {PageRank, SSSP, WCC} × threads {1, 2, 3, 7}, checking
//!
//! * **result equivalence** — after `commit()`, the frontier-seeded
//!   incremental re-execution produces values bit-identical to a cold
//!   re-run on the mutated graph, at every thread count, and every
//!   thread count agrees with single-threaded;
//! * **provenance equivalence** — `capture_epoch()` appends a delta
//!   epoch whose *logical* layers read bit-identical to a cold capture
//!   of the mutated graph (same layers, same database), so deletions
//!   leave no ghost provenance: any tuple derived through a removed
//!   edge is absent exactly as it is from the cold capture.

use ariadne::session::Ariadne;
use ariadne::{CaptureSpec, MutableSession};
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::{generators::erdos_renyi, Csr, GraphDelta, VertexId};
use ariadne_provenance::{ProvEncode, ProvStore};
use ariadne_vc::VertexProgram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 4] = [1, 2, 3, 7];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BatchKind {
    InsertOnly,
    DeleteOnly,
    Mixed,
}

const KINDS: [BatchKind; 3] = [BatchKind::InsertOnly, BatchKind::DeleteOnly, BatchKind::Mixed];

/// A random mutation batch of `kind` against `csr`, deterministic in
/// `seed` so every thread count replays the identical batch.
fn random_batch(csr: &Csr, kind: BatchKind, seed: u64) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = csr.num_vertices() as u64;
    let existing: Vec<(VertexId, VertexId, f64)> = csr.edges().collect();
    let mut delta = GraphDelta::new();
    if matches!(kind, BatchKind::InsertOnly | BatchKind::Mixed) {
        for _ in 0..6 {
            let s = VertexId(rng.gen_range(0..n));
            let d = VertexId(rng.gen_range(0..n));
            let w = f64::from(rng.gen_range(1..8u32));
            delta.add_edge(s, d, w);
        }
    }
    if matches!(kind, BatchKind::DeleteOnly | BatchKind::Mixed) {
        for _ in 0..4 {
            let (s, d, _) = existing[rng.gen_range(0..existing.len())];
            delta.remove_edge(s, d);
        }
        if kind == BatchKind::DeleteOnly {
            // Isolate one vertex too: the harshest retraction shape.
            delta.remove_vertex(VertexId(rng.gen_range(0..n)));
        }
    }
    delta
}

/// Incremental values after a commit must be bit-identical to a cold
/// re-run on the mutated graph, per thread count and across them.
fn assert_result_equivalence<A>(analytic: &A, label: &str)
where
    A: VertexProgram,
    A::V: PartialEq + std::fmt::Debug + Sync,
{
    for kind in KINDS {
        for (round, seed) in [11u64, 29, 47].into_iter().enumerate() {
            let mut oracle: Option<Vec<A::V>> = None;
            for threads in THREADS {
                let base = erdos_renyi(36, 120, seed);
                let mut s = MutableSession::new(Ariadne::with_threads(threads), base);
                let prev = s.baseline(analytic);
                s.mutate(random_batch(s.csr(), kind, seed.wrapping_mul(31)));
                s.commit();

                let inc = s.rerun_incremental(analytic, &prev.values).unwrap();
                let cold = s.baseline(analytic);
                assert_eq!(
                    inc.result.values, cold.values,
                    "{label} {kind:?} round {round}: incremental != cold at {threads} threads"
                );
                match &oracle {
                    None => oracle = Some(cold.values),
                    Some(o) => assert_eq!(
                        o, &cold.values,
                        "{label} {kind:?} round {round}: {threads} threads diverged from 1"
                    ),
                }
            }
        }
    }
}

/// Logical content of every layer in canonical (sorted) tuple order —
/// the form layer equivalence is defined over: multi-threaded captures
/// ingest per-chunk buffers in arrival order, so raw in-layer order is
/// not deterministic even between two cold runs of the same capture.
fn all_layers(store: &ProvStore) -> Vec<(u32, Vec<(String, Vec<ariadne_pql::Tuple>)>)> {
    let mut out = Vec::new();
    if let Some(max) = store.max_superstep() {
        for s in 0..=max {
            let mut layer = store.layer(s).expect("layer read");
            for (_, tuples) in &mut layer {
                tuples.sort();
            }
            out.push((s, layer));
        }
    }
    out
}

fn db_snapshot(store: &ProvStore) -> Vec<(String, Vec<ariadne_pql::Tuple>)> {
    let db = store.to_database().expect("to_database");
    let mut out: Vec<_> = db
        .iter()
        .map(|(name, _)| (name.to_string(), db.sorted(name)))
        .collect();
    out.sort();
    out
}

/// After `capture_epoch`, the live store's logical reads must be
/// bit-identical to a cold capture of the mutated graph; for deleting
/// batches, the epoch must actually retract provenance.
fn assert_provenance_equivalence<A>(analytic: &A, label: &str)
where
    A: VertexProgram,
    A::V: ProvEncode + Sync,
    A::M: ProvEncode,
{
    let spec = CaptureSpec::full();
    for kind in KINDS {
        let seed = 53u64;
        for threads in THREADS {
            let base = erdos_renyi(30, 90, seed);
            let session = Ariadne::with_threads(threads);
            let mut store = session
                .capture(analytic, &base, &spec)
                .expect("base capture")
                .store;
            let before = db_snapshot(&store);

            let mut s = MutableSession::new(session, base);
            s.mutate(random_batch(s.csr(), kind, seed.wrapping_mul(7)));
            s.commit();
            let (_, stats) = s
                .capture_epoch(analytic, &spec, &mut store)
                .expect("epoch capture");
            assert_eq!(stats.epoch, 1, "{label} {kind:?}");

            let cold = Ariadne::with_threads(threads)
                .capture(analytic, s.csr(), &spec)
                .expect("cold capture")
                .store;
            assert_eq!(
                all_layers(&store),
                all_layers(&cold),
                "{label} {kind:?} at {threads} threads: logical layers != cold capture"
            );
            let after = db_snapshot(&store);
            assert_eq!(
                after,
                db_snapshot(&cold),
                "{label} {kind:?} at {threads} threads: database != cold capture"
            );
            if kind != BatchKind::InsertOnly {
                // The equality above is the no-ghost guarantee; this
                // checks the retraction was real, not vacuous: some
                // pre-mutation provenance no longer exists.
                let survived = before.iter().all(|(pred, tuples)| {
                    after
                        .iter()
                        .find(|(p, _)| p == pred)
                        .is_some_and(|(_, t)| tuples.iter().all(|x| t.contains(x)))
                });
                assert!(
                    !survived,
                    "{label} {kind:?} at {threads} threads: deletions retracted nothing"
                );
            }
        }
    }
}

#[test]
fn sssp_results_match_cold_rerun() {
    assert_result_equivalence(&Sssp::new(VertexId(0)), "sssp");
}

#[test]
fn wcc_results_match_cold_rerun() {
    assert_result_equivalence(&Wcc, "wcc");
}

#[test]
fn pagerank_results_match_cold_rerun() {
    let pr = PageRank {
        supersteps: 8,
        ..PageRank::default()
    };
    assert_result_equivalence(&pr, "pagerank");
}

#[test]
fn sssp_provenance_matches_cold_capture() {
    assert_provenance_equivalence(&Sssp::new(VertexId(0)), "sssp");
}

#[test]
fn wcc_provenance_matches_cold_capture() {
    assert_provenance_equivalence(&Wcc, "wcc");
}

#[test]
fn pagerank_provenance_matches_cold_capture() {
    let pr = PageRank {
        supersteps: 6,
        ..PageRank::default()
    };
    assert_provenance_equivalence(&pr, "pagerank");
}

#[test]
fn multi_epoch_chain_stays_equivalent() {
    // Three successive mutation barriers on one store: the epoch chain
    // folds correctly, not just a single append.
    let spec = CaptureSpec::full();
    let sssp = Sssp::new(VertexId(0));
    let session = Ariadne::with_threads(3);
    let base = erdos_renyi(24, 70, 5);
    let mut store = session.capture(&sssp, &base, &spec).unwrap().store;
    let mut s = MutableSession::new(session, base);
    for (i, kind) in KINDS.into_iter().enumerate() {
        s.mutate(random_batch(s.csr(), kind, 100 + i as u64));
        s.commit();
        let (_, stats) = s.capture_epoch(&sssp, &spec, &mut store).unwrap();
        assert_eq!(stats.epoch as usize, i + 1);
        let cold = Ariadne::with_threads(3)
            .capture(&sssp, s.csr(), &spec)
            .unwrap()
            .store;
        assert_eq!(all_layers(&store), all_layers(&cold), "epoch {}", i + 1);
    }
    assert_eq!(store.mutation_epoch(), 3);
}

// Silence the unused-variant lint if a kind list shrinks in a refactor.
const _: () = {
    assert!(KINDS.len() == 3 && THREADS.len() == 4);
};
