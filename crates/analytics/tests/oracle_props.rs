//! Property-based validation of the vertex-centric analytics against
//! their sequential oracles, on arbitrary graphs.

use ariadne_analytics::reference::{dijkstra, pagerank_power_iteration};
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::stats::weakly_connected_components;
use ariadne_graph::{Csr, GraphBuilder, VertexId};
use ariadne_vc::{Engine, EngineConfig};
use proptest::prelude::*;

fn arb_weighted_graph() -> impl Strategy<Value = Csr> {
    (
        2usize..40,
        proptest::collection::vec((0u64..40, 0u64..40, 0.01f64..5.0), 1..150),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex(VertexId(n as u64 - 1));
            for (s, d, w) in edges {
                let (s, d) = (s % n as u64, d % n as u64);
                if s != d {
                    b.add_edge(VertexId(s), VertexId(d), w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sssp_matches_dijkstra(g in arb_weighted_graph()) {
        let vc = Engine::new(EngineConfig::sequential()).run(&Sssp::new(VertexId(0)), &g);
        let oracle = dijkstra(&g, VertexId(0));
        for (v, (a, b)) in vc.values.iter().zip(&oracle).enumerate() {
            if a.is_finite() || b.is_finite() {
                prop_assert!((a - b).abs() < 1e-9, "vertex {v}: vc {a} oracle {b}");
            }
        }
    }

    #[test]
    fn wcc_matches_union_find(g in arb_weighted_graph()) {
        let vc = Engine::new(EngineConfig::sequential()).run(&Wcc, &g);
        prop_assert_eq!(vc.values, weakly_connected_components(&g));
    }

    #[test]
    fn pagerank_matches_power_iteration(g in arb_weighted_graph()) {
        let pr = PageRank { supersteps: 15, ..Default::default() };
        let vc = Engine::new(EngineConfig::sequential()).run(&pr, &g);
        let oracle = pagerank_power_iteration(&g, 0.85, 15);
        for (a, b) in vc.values.iter().zip(&oracle) {
            prop_assert!((a - b).abs() < 1e-9, "vc {a} oracle {b}");
        }
    }

    #[test]
    fn pagerank_total_mass_bounded(g in arb_weighted_graph()) {
        // With dangling vertices mass leaks, so total <= n; and ranks
        // stay at least the teleport floor.
        let pr = PageRank { supersteps: 20, ..Default::default() };
        let vc = Engine::new(EngineConfig::sequential()).run(&pr, &g);
        let n = g.num_vertices() as f64;
        let total: f64 = vc.values.iter().sum();
        prop_assert!(total <= n + 1e-6, "total {total} > n {n}");
        for &r in &vc.values {
            prop_assert!(r >= 0.15 - 1e-9 || r == 1.0, "rank {r} below floor");
        }
    }
}
