//! Approximation-error metrics (§6.2.2).
//!
//! The paper measures approximation error "in the same manner as \[26\] by
//! using the L_p norm": `L_p(r0 - r1) / L_p(r0)` where `r0` is the
//! original analytic's result vector and `r1` the optimized one. Table 5
//! uses L2 (PageRank), Table 6 uses L1 (SSSP).

/// The L_p norm of a vector. Non-finite entries are skipped (SSSP leaves
/// unreachable vertices at infinity in both result vectors; they carry no
/// information about approximation quality).
pub fn lp_norm(v: &[f64], p: f64) -> f64 {
    assert!(p >= 1.0, "L_p norm requires p >= 1");
    v.iter()
        .filter(|x| x.is_finite())
        .map(|x| x.abs().powf(p))
        .sum::<f64>()
        .powf(1.0 / p)
}

/// Normalized relative error `L_p(r0 - r1) / L_p(r0)`.
///
/// Entry pairs where either side is non-finite are skipped; if the
/// reference norm is zero the result is 0 when the difference norm also
/// is, and infinity otherwise.
pub fn relative_error(r0: &[f64], r1: &[f64], p: f64) -> f64 {
    assert_eq!(r0.len(), r1.len(), "result vectors must align");
    let diffs: Vec<f64> = r0
        .iter()
        .zip(r1)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| a - b)
        .collect();
    let base: Vec<f64> = r0
        .iter()
        .zip(r1)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, _)| *a)
        .collect();
    let num = lp_norm(&diffs, p);
    let den = lp_norm(&base, p);
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// Median of a value slice (non-finite entries skipped). Tables 5 and 6
/// report result medians alongside the error so readers can judge scale.
pub fn median(values: &[f64]) -> f64 {
    let mut finite: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = finite.len() / 2;
    if finite.len() % 2 == 1 {
        finite[mid]
    } else {
        (finite[mid - 1] + finite[mid]) / 2.0
    }
}

/// Fraction of entries that differ by more than `tol` (used for the WCC
/// "the optimization is wrong" check, where labels are nominal).
pub fn mismatch_fraction(r0: &[f64], r1: &[f64], tol: f64) -> f64 {
    assert_eq!(r0.len(), r1.len());
    if r0.is_empty() {
        return 0.0;
    }
    let wrong = r0
        .iter()
        .zip(r1)
        .filter(|(a, b)| (*a - *b).abs() > tol)
        .count();
    wrong as f64 / r0.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert!((lp_norm(&[3.0, 4.0], 2.0) - 5.0).abs() < 1e-12);
        assert!((lp_norm(&[1.0, -2.0, 3.0], 1.0) - 6.0).abs() < 1e-12);
        assert_eq!(lp_norm(&[], 2.0), 0.0);
    }

    #[test]
    fn norm_skips_infinities() {
        assert!((lp_norm(&[3.0, f64::INFINITY, 4.0], 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_basics() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(relative_error(&a, &a, 2.0), 0.0);
        let b = [1.1, 2.0, 3.0];
        let e = relative_error(&a, &b, 2.0);
        assert!(e > 0.0 && e < 0.1);
    }

    #[test]
    fn relative_error_with_unreachable() {
        let a = [0.0, 1.0, f64::INFINITY];
        let b = [0.0, 1.5, f64::INFINITY];
        let e = relative_error(&a, &b, 1.0);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_reference() {
        assert_eq!(relative_error(&[0.0], &[0.0], 2.0), 0.0);
        assert!(relative_error(&[0.0], &[1.0], 2.0).is_infinite());
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
        assert_eq!(median(&[f64::INFINITY, 1.0]), 1.0);
    }

    #[test]
    fn mismatch_fraction_counts() {
        let a = [0.0, 0.0, 1.0, 1.0];
        let b = [0.0, 2.0, 1.0, 3.0];
        assert_eq!(mismatch_fraction(&a, &b, 0.5), 0.5);
        assert_eq!(mismatch_fraction(&[], &[], 0.1), 0.0);
    }
}
