//! Weakly connected components by min-label propagation.
//!
//! Every vertex starts labelled with its own id and adopts the smallest
//! label seen among its neighbours (in **both** edge directions — that is
//! what makes the components *weakly* connected). The fixpoint labels
//! every vertex with the minimum vertex id of its component, matching the
//! union-find oracle in [`crate::reference`].

use ariadne_graph::{Csr, VertexId};
use ariadne_vc::{Combiner, Context, Envelope, Incrementality, MinCombiner, VertexProgram};

/// WCC vertex program.
#[derive(Clone, Debug, Default)]
pub struct Wcc;

/// Broadcast `label` to all out- and in-neighbours of the current vertex.
fn send_both_ways(ctx: &mut dyn Context<u64>, label: u64) {
    let v = ctx.vertex();
    let outs: Vec<VertexId> = ctx.graph().out_neighbors(v).to_vec();
    let ins: Vec<VertexId> = ctx.graph().in_neighbors(v).to_vec();
    for t in outs {
        ctx.send(t, label);
    }
    for t in ins {
        ctx.send(t, label);
    }
}

impl VertexProgram for Wcc {
    type V = u64;
    type M = u64;

    fn init(&self, v: VertexId, _g: &Csr) -> u64 {
        v.0
    }

    fn compute(&self, ctx: &mut dyn Context<u64>, value: &mut u64, messages: &[Envelope<u64>]) {
        if ctx.superstep() == 0 {
            send_both_ways(ctx, *value);
            return;
        }
        let best = messages.iter().map(|e| e.msg).min().unwrap_or(*value);
        if best < *value {
            *value = best;
            send_both_ways(ctx, best);
        }
    }

    fn combiner(&self) -> Option<Box<dyn Combiner<u64>>> {
        Some(Box::new(MinCombiner))
    }

    /// Min-label flood is a monotone (greatest-lower-bound) fixpoint, so
    /// insert-only batches can seed from previous labels. It is **not**
    /// deletion-safe: removing a bridge edge splits a component and
    /// *raises* labels across half of it, a change no forward frontier
    /// from the deleted edge can bound.
    fn incrementality(&self) -> Incrementality {
        Incrementality::Monotone {
            deletion_safe: false,
        }
    }

    fn reseed(&self, ctx: &mut dyn Context<u64>, value: &mut u64) {
        send_both_ways(ctx, *value);
    }
}

/// The "optimized" WCC the paper's apt query correctly rejects (§6.2.2).
///
/// The approximate-optimization template skips propagation when the value
/// changed by at most `epsilon`. For WCC with ε = 1 that swallows label
/// improvements of 1, which are *not* safe to skip — component ids are
/// nominal, not metric — so the analytic converges to wrong labels with a
/// normalized error around 0.9, as Table/§6.2.2 reports. The apt query
/// predicts this: its `safe` table is empty, `unsafe` equals `no_execute`.
#[derive(Clone, Debug)]
pub struct ApproxWcc {
    /// Changes of at most this size are not propagated. The paper uses 1.
    pub epsilon: u64,
}

impl Default for ApproxWcc {
    fn default() -> Self {
        ApproxWcc { epsilon: 1 }
    }
}

impl VertexProgram for ApproxWcc {
    type V = u64;
    type M = u64;

    fn init(&self, v: VertexId, _g: &Csr) -> u64 {
        v.0
    }

    fn compute(&self, ctx: &mut dyn Context<u64>, value: &mut u64, messages: &[Envelope<u64>]) {
        if ctx.superstep() == 0 {
            send_both_ways(ctx, *value);
            return;
        }
        let best = messages.iter().map(|e| e.msg).min().unwrap_or(*value);
        if best < *value {
            let change = *value - best;
            *value = best;
            // The unsound shortcut: treat small label changes as not
            // worth telling the neighbours about.
            if change > self.epsilon {
                send_both_ways(ctx, best);
            }
        }
    }

    fn combiner(&self) -> Option<Box<dyn Combiner<u64>>> {
        Some(Box::new(MinCombiner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_graph::stats::weakly_connected_components;
    use ariadne_graph::GraphBuilder;
    use ariadne_vc::{Engine, EngineConfig};

    fn two_components() -> Csr {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(1), VertexId(0), 1.0);
        b.add_edge(VertexId(1), VertexId(2), 1.0);
        b.add_edge(VertexId(4), VertexId(3), 1.0);
        b.add_edge(VertexId(4), VertexId(5), 1.0);
        b.build()
    }

    #[test]
    fn labels_two_components() {
        let g = two_components();
        let r = Engine::new(EngineConfig::sequential()).run(&Wcc, &g);
        assert_eq!(r.values, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn matches_union_find_oracle() {
        let g = ariadne_graph::generators::erdos_renyi(300, 400, 17);
        let r = Engine::new(EngineConfig::sequential()).run(&Wcc, &g);
        assert_eq!(r.values, weakly_connected_components(&g));
    }

    #[test]
    fn direction_blind() {
        // 0 -> 1 and 2 -> 1: all weakly connected even though 0 cannot
        // reach 2 following edge directions.
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.add_edge(VertexId(2), VertexId(1), 1.0);
        let g = b.build();
        let r = Engine::new(EngineConfig::sequential()).run(&Wcc, &g);
        assert_eq!(r.values, vec![0, 0, 0]);
    }

    #[test]
    fn approx_wcc_is_wrong() {
        // A long path of consecutive ids: every improvement is exactly 1,
        // so the epsilon=1 variant never propagates past the first hop.
        let mut b = GraphBuilder::new();
        for i in 0..19u64 {
            b.add_edge(VertexId(i), VertexId(i + 1), 1.0);
        }
        let g = b.build();
        let exact = Engine::new(EngineConfig::sequential()).run(&Wcc, &g);
        let approx = Engine::new(EngineConfig::sequential()).run(&ApproxWcc::default(), &g);
        assert!(exact.values.iter().all(|&l| l == 0));
        let wrong = approx
            .values
            .iter()
            .zip(&exact.values)
            .filter(|(a, e)| a != e)
            .count();
        assert!(wrong > 10, "only {wrong} wrong labels");
    }

    #[test]
    fn approx_wcc_with_huge_epsilon_only_first_hop() {
        let g = two_components();
        let approx = Engine::new(EngineConfig::sequential()).run(
            &ApproxWcc { epsilon: u64::MAX },
            &g,
        );
        // Nothing propagates beyond superstep 0's initial broadcast.
        assert_ne!(approx.values, vec![0, 0, 0, 3, 3, 3]);
    }
}
