//! Single-source shortest paths — Algorithm 2 in the paper's appendix.

use ariadne_graph::{Csr, VertexId};
use ariadne_vc::{Combiner, Context, Envelope, Incrementality, MinCombiner, VertexProgram};

/// SSSP vertex program: vertices carry their best-known distance to the
/// source and relax it as smaller distances arrive; on improvement they
/// offer `distance + weight` to each outgoing neighbour.
///
/// Distances of unreachable vertices remain [`f64::INFINITY`].
#[derive(Clone, Debug)]
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type V = f64;
    type M = f64;

    fn init(&self, _v: VertexId, _g: &Csr) -> f64 {
        f64::INFINITY
    }

    fn compute(&self, ctx: &mut dyn Context<f64>, value: &mut f64, messages: &[Envelope<f64>]) {
        let mut min_dist = if ctx.vertex() == self.source {
            0.0
        } else {
            f64::INFINITY
        };
        for e in messages {
            min_dist = min_dist.min(e.msg);
        }
        if min_dist < *value {
            *value = min_dist;
            for edge in ctx.out_edges() {
                ctx.send(edge.neighbor, min_dist + edge.weight);
            }
        }
    }

    fn combiner(&self) -> Option<Box<dyn Combiner<f64>>> {
        Some(Box::new(MinCombiner))
    }

    /// SSSP distances are the least fixpoint of edge relaxation, a
    /// monotone operator, and invalidated distances are recomputable from
    /// a reset frontier even after deletions (the taint closure resets
    /// every vertex whose shortest path could have used a removed edge).
    fn incrementality(&self) -> Incrementality {
        Incrementality::Monotone {
            deletion_safe: true,
        }
    }

    fn reseed(&self, ctx: &mut dyn Context<f64>, value: &mut f64) {
        // The source repairs its own distance if the taint reset hit it.
        if ctx.vertex() == self.source {
            *value = 0.0;
        }
        if value.is_finite() {
            let d = *value;
            for edge in ctx.out_edges() {
                ctx.send(edge.neighbor, d + edge.weight);
            }
        }
    }
}

/// Approximate SSSP: a vertex propagates only improvements larger than
/// `epsilon`. The apt query (Query 1) discovers this is safe for SSSP —
/// small refinements rarely change downstream decisions — and Table 6
/// quantifies the resulting error at ε = 0.1.
#[derive(Clone, Debug)]
pub struct ApproxSssp {
    /// The source vertex.
    pub source: VertexId,
    /// Minimum improvement worth propagating.
    pub epsilon: f64,
}

impl ApproxSssp {
    /// Approximate SSSP from `source` with threshold `epsilon`.
    pub fn new(source: VertexId, epsilon: f64) -> Self {
        ApproxSssp { source, epsilon }
    }
}

impl VertexProgram for ApproxSssp {
    type V = f64;
    type M = f64;

    fn init(&self, _v: VertexId, _g: &Csr) -> f64 {
        f64::INFINITY
    }

    fn compute(&self, ctx: &mut dyn Context<f64>, value: &mut f64, messages: &[Envelope<f64>]) {
        let mut min_dist = if ctx.vertex() == self.source {
            0.0
        } else {
            f64::INFINITY
        };
        for e in messages {
            min_dist = min_dist.min(e.msg);
        }
        // Improvement must beat epsilon to be worth the downstream work
        // (infinite -> finite always qualifies).
        let improvement = *value - min_dist;
        if min_dist < *value && (improvement > self.epsilon || value.is_infinite()) {
            *value = min_dist;
            for edge in ctx.out_edges() {
                ctx.send(edge.neighbor, min_dist + edge.weight);
            }
        }
    }

    fn combiner(&self) -> Option<Box<dyn Combiner<f64>>> {
        Some(Box::new(MinCombiner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dijkstra;
    use ariadne_graph::generators::regular::{grid, path};
    use ariadne_graph::generators::{rmat, RmatConfig};
    use ariadne_graph::GraphBuilder;
    use ariadne_vc::{Engine, EngineConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn path_distances() {
        let g = path(5);
        let r = Engine::new(EngineConfig::sequential()).run(&Sssp::new(VertexId(0)), &g);
        assert_eq!(r.values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.ensure_vertex(VertexId(2));
        let g = b.build();
        let r = Engine::new(EngineConfig::sequential()).run(&Sssp::new(VertexId(0)), &g);
        assert!(r.values[2].is_infinite());
    }

    #[test]
    fn matches_dijkstra_on_weighted_random_graph() {
        let mut rng = StdRng::seed_from_u64(99);
        let g = rmat(RmatConfig {
            scale: 8,
            edge_factor: 6,
            ..Default::default()
        })
        .map_weights(|_, _, _| rng.gen::<f64>());
        let src = VertexId(0);
        let vc = Engine::new(EngineConfig::sequential()).run(&Sssp::new(src), &g);
        let oracle = dijkstra(&g, src);
        for (a, b) in vc.values.iter().zip(&oracle) {
            if a.is_finite() || b.is_finite() {
                assert!((a - b).abs() < 1e-9, "vc {a} oracle {b}");
            }
        }
    }

    #[test]
    fn takes_shortcut_when_cheaper() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 10.0);
        b.add_edge(VertexId(0), VertexId(2), 1.0);
        b.add_edge(VertexId(2), VertexId(1), 2.0);
        let g = b.build();
        let r = Engine::new(EngineConfig::sequential()).run(&Sssp::new(VertexId(0)), &g);
        assert_eq!(r.values[1], 3.0);
    }

    #[test]
    fn approx_bounded_error_and_less_work() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = grid(20, 20).map_weights(|_, _, _| 0.05 + rng.gen::<f64>());
        let src = VertexId(0);
        let exact = Engine::new(EngineConfig::sequential()).run(&Sssp::new(src), &g);
        let approx =
            Engine::new(EngineConfig::sequential()).run(&ApproxSssp::new(src, 0.1), &g);
        // Approximate distances are never better than exact and are close.
        for (e, a) in exact.values.iter().zip(&approx.values) {
            assert!(*a >= *e - 1e-12, "approx {a} beat exact {e}");
        }
        let err = crate::error::relative_error(&exact.values, &approx.values, 1.0);
        assert!(err < 0.2, "relative error {err}");
        assert!(
            approx.metrics.total_activations() <= exact.metrics.total_activations(),
            "approx should not do more work"
        );
    }

    #[test]
    fn approx_with_zero_epsilon_is_exact() {
        let g = path(6);
        let exact = Engine::new(EngineConfig::sequential()).run(&Sssp::new(VertexId(0)), &g);
        let approx =
            Engine::new(EngineConfig::sequential()).run(&ApproxSssp::new(VertexId(0), 0.0), &g);
        assert_eq!(exact.values, approx.values);
    }
}
