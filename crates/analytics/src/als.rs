//! Alternating Least Squares on a bipartite ratings graph.
//!
//! The paper (§6, ML-20 workload): "the user-movie ratings are represented
//! as a bipartite graph ... At every iteration, only one side of the
//! bipartite graph computes, either the users or the movies since the
//! algorithm optimizes the error function by fixing one set of variables
//! and solving for the other."
//!
//! The vertex-centric formulation realizes that alternation through
//! message-driven activation: at superstep 0 item vertices broadcast their
//! (seeded) feature vectors; users receive them at superstep 1, solve
//! their regularized normal equations, and broadcast back; items solve at
//! superstep 2; and so on. No side ever computes out of turn because it
//! simply has no messages.

use crate::linalg::{axpy, dot, SquareMat};
use ariadne_graph::{Csr, VertexId};
use ariadne_vc::{AggOp, AggValue, Aggregates, Context, Envelope, VertexProgram};

/// Name of the aggregator accumulating the sum of squared prediction
/// errors per superstep.
pub const SSE_AGG: &str = "als.sse";
/// Name of the aggregator counting rated edges contributing to [`SSE_AGG`].
pub const COUNT_AGG: &str = "als.count";

/// ALS configuration.
#[derive(Clone, Debug)]
pub struct AlsConfig {
    /// Vertices `0..users` are users; the rest are items.
    pub users: usize,
    /// Number of latent features (the paper sweeps 5, 10, 15).
    pub rank: usize,
    /// Tikhonov regularization weight.
    pub lambda: f64,
    /// Superstep cap; each pair of supersteps is one ALS iteration.
    pub supersteps: u32,
    /// Seed for the deterministic initial feature vectors.
    pub seed: u64,
    /// Optional RMSE threshold for early convergence.
    pub rmse_target: Option<f64>,
}

impl AlsConfig {
    /// A reasonable default for a ratings graph with `users` user
    /// vertices and `rank` features.
    pub fn new(users: usize, rank: usize) -> Self {
        AlsConfig {
            users,
            rank,
            lambda: 0.1,
            supersteps: 11,
            seed: 0x5EED,
            rmse_target: None,
        }
    }
}

/// The ALS vertex program.
#[derive(Clone, Debug)]
pub struct Als {
    /// Configuration.
    pub config: AlsConfig,
}

impl Als {
    /// Create the program from a configuration.
    pub fn new(config: AlsConfig) -> Self {
        Als { config }
    }

    /// Whether `v` is a user vertex.
    pub fn is_user(&self, v: VertexId) -> bool {
        v.index() < self.config.users
    }

    /// Predicted rating from two feature vectors.
    pub fn predict(user_features: &[f64], item_features: &[f64]) -> f64 {
        dot(user_features, item_features)
    }

    /// Deterministic pseudo-random initial features in `[0, 1)` derived
    /// from the seed and vertex id (splitmix64).
    fn seeded_features(&self, v: VertexId) -> Vec<f64> {
        let mut state = self.config.seed ^ v.0.wrapping_mul(0x9E3779B97F4A7C15);
        (0..self.config.rank)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }
}

impl VertexProgram for Als {
    type V = Vec<f64>;
    type M = Vec<f64>;

    fn init(&self, v: VertexId, _g: &Csr) -> Vec<f64> {
        self.seeded_features(v)
    }

    fn compute(
        &self,
        ctx: &mut dyn Context<Vec<f64>>,
        value: &mut Vec<f64>,
        messages: &[Envelope<Vec<f64>>],
    ) {
        let rank = self.config.rank;
        if ctx.superstep() == 0 {
            // Items kick off the alternation.
            if !self.is_user(ctx.vertex()) {
                ctx.send_to_out_neighbors(value.clone());
            }
            return;
        }

        // Solve (sum f f^T + lambda * k * I) x = sum r * f over incoming
        // neighbour features f with ratings r (the edge weights).
        let me = ctx.vertex();
        let mut a = SquareMat::scaled_identity(rank, self.config.lambda * messages.len().max(1) as f64);
        let mut b = vec![0.0; rank];
        for e in messages {
            debug_assert!(!e.is_combined(), "ALS requires per-source messages");
            let rating = ctx
                .graph()
                .edge_weight(me, e.src)
                .expect("ALS message from a non-neighbour");
            a.add_outer(&e.msg);
            axpy(&mut b, rating, &e.msg);
        }
        if let Some(x) = a.cholesky_solve(&b) {
            *value = x;
        }

        // Track global squared prediction error over this side's edges.
        let mut sse = 0.0;
        let mut count = 0i64;
        for e in messages {
            let rating = ctx.graph().edge_weight(me, e.src).unwrap_or(0.0);
            let pred = Self::predict(value, &e.msg);
            sse += (pred - rating) * (pred - rating);
            count += 1;
        }
        ctx.aggregate(SSE_AGG, AggValue::F64(sse));
        ctx.aggregate(COUNT_AGG, AggValue::I64(count));

        if ctx.superstep() + 1 < self.config.supersteps {
            ctx.send_to_out_neighbors(value.clone());
        }
    }

    fn aggregators(&self) -> Vec<(String, AggOp)> {
        vec![
            (SSE_AGG.to_string(), AggOp::Sum),
            (COUNT_AGG.to_string(), AggOp::Sum),
        ]
    }

    fn max_supersteps(&self) -> u32 {
        self.config.supersteps
    }

    fn should_halt(&self, superstep: u32, aggregates: &Aggregates) -> bool {
        match self.config.rmse_target {
            Some(target) if superstep > 0 => {
                let sse = aggregates.current(SSE_AGG).map(|v| v.as_f64()).unwrap_or(f64::MAX);
                let count = aggregates.current(COUNT_AGG).map(|v| v.as_i64()).unwrap_or(0);
                count > 0 && (sse / count as f64).sqrt() < target
            }
            _ => false,
        }
    }

    fn message_bytes(&self, msg: &Vec<f64>) -> usize {
        msg.len() * std::mem::size_of::<f64>()
    }
}

/// Root-mean-square prediction error of a trained model over all rated
/// edges of the bipartite graph.
pub fn rmse(graph: &Csr, features: &[Vec<f64>], users: usize) -> f64 {
    let mut sse = 0.0;
    let mut count = 0usize;
    for (s, d, rating) in graph.edges() {
        if s.index() < users && d.index() >= users {
            let pred = Als::predict(&features[s.index()], &features[d.index()]);
            sse += (pred - rating) * (pred - rating);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (sse / count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_graph::generators::{BipartiteRatings, RatingsConfig};
    use ariadne_vc::{Engine, EngineConfig};

    fn small_ratings() -> BipartiteRatings {
        BipartiteRatings::generate(&RatingsConfig {
            users: 60,
            items: 15,
            ratings_per_user: 8,
            planted_rank: 3,
            noise: 0.1,
            seed: 42,
        })
    }

    #[test]
    fn rmse_decreases_with_training() {
        let br = small_ratings();
        let als = Als::new(AlsConfig::new(br.users, 4));
        let init: Vec<Vec<f64>> = (0..br.graph.num_vertices())
            .map(|i| als.init(VertexId(i as u64), &br.graph))
            .collect();
        let before = rmse(&br.graph, &init, br.users);
        let r = Engine::new(EngineConfig::sequential()).run(&als, &br.graph);
        let after = rmse(&br.graph, &r.values, br.users);
        assert!(
            after < before * 0.7,
            "rmse did not improve: {before} -> {after}"
        );
        assert!(after < 1.0, "absolute rmse too high: {after}");
    }

    #[test]
    fn alternation_matches_sides() {
        // After superstep 0 only items have sent; users solve at odd
        // supersteps, items at even ones. We verify via activation counts.
        let br = small_ratings();
        let als = Als::new(AlsConfig::new(br.users, 3));
        let r = Engine::new(EngineConfig::sequential()).run(&als, &br.graph);
        let m = &r.metrics.supersteps;
        // Superstep 1 activates (at most) the users, superstep 2 the items.
        assert!(m[1].active_vertices <= br.users);
        assert!(m[2].active_vertices <= br.items);
    }

    #[test]
    fn rmse_target_halts_early() {
        let br = small_ratings();
        let mut cfg = AlsConfig::new(br.users, 4);
        cfg.supersteps = 50;
        cfg.rmse_target = Some(0.8);
        let r = Engine::new(EngineConfig::sequential()).run(&Als::new(cfg), &br.graph);
        assert!(r.supersteps() < 50, "ran {}", r.supersteps());
    }

    #[test]
    fn deterministic_init() {
        let als = Als::new(AlsConfig::new(10, 5));
        let g = Csr::empty(1);
        let a = als.init(VertexId(3), &g);
        let b = als.init(VertexId(3), &g);
        assert_eq!(a, b);
        let c = als.init(VertexId(4), &g);
        assert_ne!(a, c);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn parallel_matches_sequential() {
        let br = small_ratings();
        let als = Als::new(AlsConfig::new(br.users, 3));
        let seq = Engine::new(EngineConfig::sequential()).run(&als, &br.graph);
        let par = Engine::new(EngineConfig::parallel(3)).run(&als, &br.graph);
        for (a, b) in seq.values.iter().zip(&par.values) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
