//! The graph analytics evaluated in the paper, implemented as
//! vertex-centric programs for the `ariadne-vc` engine.
//!
//! * [`pagerank`] — classic Giraph-style PageRank plus the delta-encoded
//!   approximate variant the apt query (Query 1) discovers.
//! * [`sssp`] — single-source shortest paths (Algorithm 2 of the paper's
//!   appendix) plus its threshold-gated approximate variant.
//! * [`wcc`] — weakly connected components by min-label propagation, plus
//!   the "optimized" variant the paper shows is *unsafe* (§6.2.2).
//! * [`als`] — alternating least squares on a bipartite ratings graph
//!   (the MovieLens workload), built on a small dense [`linalg`] solver.
//! * [`reference`](mod@reference) — sequential oracles (Dijkstra, power iteration,
//!   union-find) used to validate the vertex-centric implementations.
//! * [`error`] — the L_p-norm relative-error metrics of Tables 5 and 6.

pub mod als;
pub mod error;
pub mod linalg;
pub mod pagerank;
pub mod reference;
pub mod sssp;
pub mod wcc;

pub use als::{Als, AlsConfig};
pub use pagerank::{DeltaPageRank, PageRank};
pub use sssp::{ApproxSssp, Sssp};
pub use wcc::{ApproxWcc, Wcc};
