//! Sequential oracle implementations used to validate the vertex-centric
//! analytics. None of these run on the BSP engine.

use ariadne_graph::{Csr, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dijkstra's algorithm from `source`; unreachable vertices get
/// [`f64::INFINITY`]. Edge weights must be non-negative.
pub fn dijkstra(g: &Csr, source: VertexId) -> Vec<f64> {
    #[derive(PartialEq)]
    struct Entry(f64, VertexId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse for a min-heap; distances are finite non-NaN here.
            other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
        }
    }

    let mut dist = vec![f64::INFINITY; g.num_vertices()];
    if g.num_vertices() == 0 {
        return dist;
    }
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Entry(0.0, source));
    while let Some(Entry(d, v)) = heap.pop() {
        if d > dist[v.index()] {
            continue;
        }
        for e in g.out_edges(v) {
            debug_assert!(e.weight >= 0.0, "negative edge weight");
            let nd = d + e.weight;
            if nd < dist[e.neighbor.index()] {
                dist[e.neighbor.index()] = nd;
                heap.push(Entry(nd, e.neighbor));
            }
        }
    }
    dist
}

/// Dense power iteration for PageRank in the "sums to |V|" convention
/// (`r = (1-d) + d * A^T r`), mirroring the Jacobi sequence the classic
/// vertex-centric program computes. Dangling contributions are dropped,
/// exactly like the VC implementation.
pub fn pagerank_power_iteration(g: &Csr, damping: f64, iterations: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let mut rank = vec![1.0; n];
    let mut next = vec![0.0; n];
    for _ in 1..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        for v in g.vertices() {
            let deg = g.out_degree(v);
            if deg > 0 {
                let share = rank[v.index()] / deg as f64;
                for &t in g.out_neighbors(v) {
                    next[t.index()] += share;
                }
            }
        }
        for i in 0..n {
            rank[i] = (1.0 - damping) + damping * next[i];
        }
    }
    rank
}

/// Re-export of the union-find WCC oracle (labels are component-minimum
/// vertex ids, the same fixpoint as the min-label analytic).
pub use ariadne_graph::stats::weakly_connected_components;

/// Forward-reachable set from `source` following out-edges; oracle for
/// forward lineage (Query 3).
pub fn forward_reachable(g: &Csr, source: VertexId) -> Vec<bool> {
    let mut seen = vec![false; g.num_vertices()];
    if g.num_vertices() == 0 {
        return seen;
    }
    let mut stack = vec![source];
    seen[source.index()] = true;
    while let Some(v) = stack.pop() {
        for &t in g.out_neighbors(v) {
            if !seen[t.index()] {
                seen[t.index()] = true;
                stack.push(t);
            }
        }
    }
    seen
}

/// Backward-reachable set into `target` (vertices with a directed path to
/// `target`); oracle for backward lineage (Queries 10 and 12).
pub fn backward_reachable(g: &Csr, target: VertexId) -> Vec<bool> {
    let mut seen = vec![false; g.num_vertices()];
    if g.num_vertices() == 0 {
        return seen;
    }
    let mut stack = vec![target];
    seen[target.index()] = true;
    while let Some(v) = stack.pop() {
        for &s in g.in_neighbors(v) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_graph::generators::regular::{cycle, path, star};
    use ariadne_graph::GraphBuilder;

    #[test]
    fn dijkstra_on_weighted_diamond() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.add_edge(VertexId(0), VertexId(2), 4.0);
        b.add_edge(VertexId(1), VertexId(2), 1.0);
        b.add_edge(VertexId(2), VertexId(3), 1.0);
        let g = b.build();
        let d = dijkstra(&g, VertexId(0));
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn dijkstra_unreachable() {
        let g = path(3);
        let d = dijkstra(&g, VertexId(2));
        assert!(d[0].is_infinite() && d[1].is_infinite());
        assert_eq!(d[2], 0.0);
    }

    #[test]
    fn power_iteration_uniform_on_cycle() {
        let r = pagerank_power_iteration(&cycle(5), 0.85, 25);
        for &x in &r {
            assert!((x - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reachability_on_star() {
        let g = star(5);
        let fwd = forward_reachable(&g, VertexId(0));
        assert!(fwd.iter().all(|&b| b));
        let bwd = backward_reachable(&g, VertexId(3));
        assert_eq!(bwd, vec![true, false, false, true, false]);
    }

    #[test]
    fn reachability_respects_direction() {
        let g = path(4);
        assert_eq!(
            forward_reachable(&g, VertexId(2)),
            vec![false, false, true, true]
        );
        assert_eq!(
            backward_reachable(&g, VertexId(2)),
            vec![true, true, true, false]
        );
    }
}
