//! Minimal dense linear algebra for ALS: symmetric positive-definite
//! systems solved by Cholesky factorization.
//!
//! ALS solves one small (rank × rank) normal-equation system per vertex
//! per superstep, so this module optimizes for small fixed sizes and zero
//! allocation beyond the matrix itself.

/// A small square matrix, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct SquareMat {
    n: usize,
    data: Vec<f64>,
}

impl SquareMat {
    /// The `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SquareMat {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The `n x n` identity scaled by `lambda`.
    pub fn scaled_identity(n: usize, lambda: f64) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = lambda;
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Accumulate the outer product `v * v^T` (rank-1 update).
    pub fn add_outer(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.n);
        for (i, &vi) in v.iter().enumerate() {
            let row = &mut self.data[i * self.n..(i + 1) * self.n];
            for (cell, &vj) in row.iter_mut().zip(v) {
                *cell += vi * vj;
            }
        }
    }

    /// In-place Cholesky factorization (lower triangular); returns false
    /// if the matrix is not positive definite.
    #[allow(clippy::needless_range_loop)] // index arithmetic over two axes
    fn cholesky_in_place(&mut self) -> bool {
        let n = self.n;
        for j in 0..n {
            let mut d = self[(j, j)];
            for k in 0..j {
                d -= self[(j, k)] * self[(j, k)];
            }
            if d <= 0.0 {
                return false;
            }
            let d = d.sqrt();
            self[(j, j)] = d;
            for i in (j + 1)..n {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= self[(i, k)] * self[(j, k)];
                }
                self[(i, j)] = s / d;
            }
        }
        // Zero the strict upper triangle for cleanliness.
        for i in 0..n {
            for j in (i + 1)..n {
                self[(i, j)] = 0.0;
            }
        }
        true
    }

    /// Solve `A x = b` for symmetric positive-definite `A` (consumed).
    /// Returns `None` if `A` is not positive definite.
    pub fn cholesky_solve(mut self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.n);
        if !self.cholesky_in_place() {
            return None;
        }
        let n = self.n;
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                let lik = self[(i, k)];
                y[i] -= lik * y[k];
            }
            y[i] /= self[(i, i)];
        }
        // Back substitution: L^T x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let lki = self[(k, i)];
                y[i] -= lki * y[k];
            }
            y[i] /= self[(i, i)];
        }
        Some(y)
    }
}

impl std::ops::Index<(usize, usize)> for SquareMat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for SquareMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Dot product of equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `acc += scale * v`, elementwise.
pub fn axpy(acc: &mut [f64], scale: f64, v: &[f64]) {
    debug_assert_eq!(acc.len(), v.len());
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += scale * x;
    }
}

/// Euclidean distance between two vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = SquareMat::scaled_identity(3, 1.0);
        let x = a.cholesky_solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
        let mut a = SquareMat::zeros(2);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        let x = a.cholesky_solve(&[10.0, 8.0]).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 1.5).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn non_positive_definite_rejected() {
        let mut a = SquareMat::zeros(2);
        a[(0, 0)] = 0.0;
        a[(1, 1)] = 1.0;
        assert!(a.cholesky_solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn outer_product_accumulation() {
        let mut a = SquareMat::zeros(2);
        a.add_outer(&[1.0, 2.0]);
        a.add_outer(&[3.0, 0.0]);
        assert_eq!(a[(0, 0)], 10.0);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(1, 0)], 2.0);
        assert_eq!(a[(1, 1)], 4.0);
    }

    #[test]
    fn normal_equations_recover_least_squares() {
        // Fit x in R^2 to rows m_i with targets r_i: x = argmin ||M x - r||.
        let rows = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];
        let targets = [1.0, 2.0, 3.0];
        let mut a = SquareMat::scaled_identity(2, 1e-9);
        let mut b = vec![0.0; 2];
        for (row, &t) in rows.iter().zip(&targets) {
            a.add_outer(row);
            axpy(&mut b, t, row);
        }
        let x = a.cholesky_solve(&b).unwrap();
        // Exact solution of the normal equations is x = (1, 2).
        assert!((x[0] - 1.0).abs() < 1e-6, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-6, "{x:?}");
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut acc = vec![1.0, 1.0];
        axpy(&mut acc, 2.0, &[1.0, 3.0]);
        assert_eq!(acc, vec![3.0, 7.0]);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}
