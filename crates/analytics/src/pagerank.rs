//! PageRank.
//!
//! Two formulations:
//!
//! * [`PageRank`] — the classic Giraph implementation: every vertex is
//!   active every superstep, receives the summed contributions of its
//!   in-neighbours and resends `value / out_degree`. This is the paper's
//!   baseline analytic.
//! * [`DeltaPageRank`] — the delta-encoded formulation that supports the
//!   apt optimization (§2.2, §6.2.2): vertices accumulate *changes* and
//!   forward a change only when it exceeds a threshold `epsilon`. With
//!   `epsilon = 0` it converges to the same fixpoint as [`PageRank`];
//!   with `epsilon > 0` it trades accuracy for skipped work, which is
//!   exactly what the paper's Query 1 quantifies before a developer
//!   commits to it.
//!
//! Rank convention: ranks sum to `|V|` (`r = 0.15 + 0.85 * A^T r`), the
//! convention under which the paper's medians (~0.2) and thresholds
//! (ε = 0.01) are meaningful.

use ariadne_graph::{Csr, VertexId};
use ariadne_vc::{
    AggOp, AggValue, Aggregates, Combiner, Context, Envelope, Incrementality, SumCombiner,
    VertexProgram,
};

/// Name of the aggregator tracking the L1 change per superstep.
pub const DELTA_AGG: &str = "pagerank.delta";

/// Classic PageRank (the paper's baseline analytic).
#[derive(Clone, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 in the paper's ecosystem).
    pub damping: f64,
    /// Number of supersteps to run (the paper's runs use 20).
    pub supersteps: u32,
    /// Optional early-exit tolerance on the summed absolute rank change.
    pub tolerance: Option<f64>,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            supersteps: 20,
            tolerance: None,
        }
    }
}

impl VertexProgram for PageRank {
    type V = f64;
    type M = f64;

    fn init(&self, _v: VertexId, _g: &Csr) -> f64 {
        1.0
    }

    fn compute(&self, ctx: &mut dyn Context<f64>, value: &mut f64, messages: &[Envelope<f64>]) {
        if ctx.superstep() > 0 {
            let sum: f64 = messages.iter().map(|e| e.msg).sum();
            let new = (1.0 - self.damping) + self.damping * sum;
            ctx.aggregate(DELTA_AGG, AggValue::F64((new - *value).abs()));
            *value = new;
        }
        // Keep sending until the penultimate superstep; messages sent at
        // the final superstep would never be read.
        if ctx.superstep() + 1 < self.supersteps {
            let deg = ctx.out_degree();
            if deg > 0 {
                ctx.send_to_out_neighbors(*value / deg as f64);
            }
        }
    }

    fn combiner(&self) -> Option<Box<dyn Combiner<f64>>> {
        Some(Box::new(SumCombiner))
    }

    fn aggregators(&self) -> Vec<(String, AggOp)> {
        vec![(DELTA_AGG.to_string(), AggOp::Sum)]
    }

    fn always_active(&self) -> bool {
        true
    }

    fn max_supersteps(&self) -> u32 {
        self.supersteps
    }

    fn should_halt(&self, superstep: u32, aggregates: &Aggregates) -> bool {
        match self.tolerance {
            Some(tol) if superstep > 0 => aggregates
                .current(DELTA_AGG)
                .map(|v| v.as_f64() < tol)
                .unwrap_or(false),
            _ => false,
        }
    }

    /// PageRank is not a monotone fixpoint: any edge change shifts the
    /// stationary distribution at *every* vertex (mass is conserved
    /// globally), so previous-epoch ranks cannot seed a bit-identical
    /// run. Mutations restart the analytic. This is the trait default —
    /// stated explicitly here because PageRank is the canonical example.
    fn incrementality(&self) -> Incrementality {
        Incrementality::Restart
    }
}

/// Per-vertex state of [`DeltaPageRank`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DeltaState {
    /// The current rank estimate.
    pub rank: f64,
    /// Damped rank change accumulated since the vertex last messaged its
    /// neighbours (the unsent residual).
    pub pending: f64,
}

/// Delta-encoded PageRank supporting the apt approximate optimization.
///
/// A vertex's rank accumulates damped incoming deltas; changes also
/// accumulate in a `pending` residual that is forwarded to neighbours
/// only once it exceeds `epsilon`. Vertices that receive no deltas do not
/// execute — the engine's message-driven activation provides the "stop
/// computing" behaviour the optimization banks on, and the residual
/// accumulation keeps the approximation error bounded by the in-flight
/// residual mass rather than by everything ever skipped.
#[derive(Clone, Debug)]
pub struct DeltaPageRank {
    /// Damping factor.
    pub damping: f64,
    /// Superstep cap (matches the classic analytic for comparability).
    pub supersteps: u32,
    /// Minimum |pending| that is worth propagating. 0 = exact.
    pub epsilon: f64,
}

impl DeltaPageRank {
    /// Exact delta formulation (`epsilon = 0`): the error baseline for
    /// Table 5.
    pub fn exact(supersteps: u32) -> Self {
        DeltaPageRank {
            damping: 0.85,
            supersteps,
            epsilon: 0.0,
        }
    }

    /// Approximate variant with propagation threshold `epsilon`.
    pub fn approximate(supersteps: u32, epsilon: f64) -> Self {
        DeltaPageRank {
            damping: 0.85,
            supersteps,
            epsilon,
        }
    }
}

impl VertexProgram for DeltaPageRank {
    type V = DeltaState;
    type M = f64;

    fn init(&self, _v: VertexId, _g: &Csr) -> DeltaState {
        // rank0 = (1 - d): the fixed-point iteration then reproduces the
        // Jacobi sequence of the classic formulation, and the whole
        // initial mass starts out pending.
        DeltaState {
            rank: 1.0 - self.damping,
            pending: 1.0 - self.damping,
        }
    }

    fn compute(
        &self,
        ctx: &mut dyn Context<f64>,
        value: &mut DeltaState,
        messages: &[Envelope<f64>],
    ) {
        if ctx.superstep() > 0 {
            let change = self.damping * messages.iter().map(|e| e.msg).sum::<f64>();
            value.rank += change;
            value.pending += change;
        }
        if value.pending.abs() > self.epsilon {
            let deg = ctx.out_degree();
            if deg > 0 && ctx.superstep() + 1 < self.supersteps {
                ctx.send_to_out_neighbors(value.pending / deg as f64);
            }
            value.pending = 0.0;
        }
    }

    fn combiner(&self) -> Option<Box<dyn Combiner<f64>>> {
        Some(Box::new(SumCombiner))
    }

    fn max_supersteps(&self) -> u32 {
        self.supersteps
    }
}

impl ariadne_provenance::ProvEncode for DeltaState {
    /// The provenance-visible value of a delta-PageRank vertex is its
    /// rank; the pending residual is internal bookkeeping.
    fn encode(&self) -> ariadne_pql::Value {
        ariadne_pql::Value::Float(self.rank)
    }
}

/// Extract the rank vector from a [`DeltaPageRank`] run's values.
pub fn delta_ranks(values: &[DeltaState]) -> Vec<f64> {
    values.iter().map(|s| s.rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pagerank_power_iteration;
    use ariadne_graph::generators::regular::{complete, cycle};
    use ariadne_graph::generators::{rmat, RmatConfig};
    use ariadne_vc::{Engine, EngineConfig};

    #[test]
    fn uniform_on_regular_graphs() {
        // On a cycle every vertex has rank exactly 1.
        let g = cycle(8);
        let r = Engine::new(EngineConfig::sequential()).run(&PageRank::default(), &g);
        for &v in &r.values {
            assert!((v - 1.0).abs() < 1e-9, "rank {v}");
        }
    }

    #[test]
    fn matches_power_iteration() {
        let g = rmat(RmatConfig {
            scale: 8,
            edge_factor: 6,
            ..Default::default()
        });
        let pr = PageRank {
            supersteps: 30,
            ..Default::default()
        };
        let vc = Engine::new(EngineConfig::sequential()).run(&pr, &g);
        let oracle = pagerank_power_iteration(&g, 0.85, 30);
        for (a, b) in vc.values.iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-9, "vc {a} oracle {b}");
        }
    }

    #[test]
    fn delta_exact_converges_to_classic_fixpoint() {
        // The delta formulation starts from a different initial vector, so
        // it matches classic PageRank at the fixpoint, not per superstep.
        let g = rmat(RmatConfig {
            scale: 7,
            edge_factor: 5,
            ..Default::default()
        });
        let steps = 120;
        let classic = Engine::new(EngineConfig::sequential()).run(
            &PageRank {
                supersteps: steps,
                ..Default::default()
            },
            &g,
        );
        let delta = Engine::new(EngineConfig::sequential()).run(&DeltaPageRank::exact(steps), &g);
        for (a, b) in classic.values.iter().zip(delta_ranks(&delta.values)) {
            assert!((a - b).abs() < 1e-4, "classic {a} delta {b}");
        }
    }

    #[test]
    fn approximation_close_but_cheaper() {
        let g = rmat(RmatConfig {
            scale: 9,
            edge_factor: 8,
            ..Default::default()
        });
        let steps = 20;
        let exact = Engine::new(EngineConfig::sequential()).run(&DeltaPageRank::exact(steps), &g);
        let approx = Engine::new(EngineConfig::sequential())
            .run(&DeltaPageRank::approximate(steps, 0.01), &g);
        let err = crate::error::relative_error(
            &delta_ranks(&exact.values),
            &delta_ranks(&approx.values),
            2.0,
        );
        assert!(err < 0.05, "relative error {err}");
        assert!(
            approx.metrics.total_activations() < exact.metrics.total_activations(),
            "approximate variant should skip work: {} vs {}",
            approx.metrics.total_activations(),
            exact.metrics.total_activations()
        );
    }

    #[test]
    fn tolerance_halts_early() {
        let g = complete(6);
        let pr = PageRank {
            supersteps: 100,
            tolerance: Some(1e-6),
            ..Default::default()
        };
        let r = Engine::new(EngineConfig::sequential()).run(&pr, &g);
        assert!(r.supersteps() < 100, "ran {} supersteps", r.supersteps());
        for &v in &r.values {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn ranks_sum_to_n_when_no_dangling() {
        let g = cycle(10);
        let r = Engine::new(EngineConfig::sequential()).run(&PageRank::default(), &g);
        let total: f64 = r.values.iter().sum();
        assert!((total - 10.0).abs() < 1e-6, "total {total}");
    }
}
