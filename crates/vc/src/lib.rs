//! A vertex-centric BSP graph processing engine — the Giraph stand-in.
//!
//! The engine implements the Pregel/Giraph execution model the paper
//! builds on (§2.1):
//!
//! * computation proceeds in **supersteps** separated by global barriers;
//! * every vertex runs the same **vertex program** ([`VertexProgram`]);
//! * messages sent in superstep `i` are visible to their destinations at
//!   superstep `i + 1`;
//! * a vertex computes only if it received messages (all vertices compute
//!   at superstep 0), unless the program declares itself
//!   [`VertexProgram::always_active`];
//! * the run terminates when no messages are in flight, when the program's
//!   halt condition fires, or at a superstep cap.
//!
//! Parallel execution splits vertices into contiguous chunks with a
//! deterministic two-phase superstep (compute, then per-destination-chunk
//! delivery): N-thread runs equal 1-thread runs exactly. The default
//! [`MessagePlane::Flat`] plane balances chunks by **out-degree weight**
//! (so R-MAT hubs at low ids no longer serialize one worker), combines
//! messages **sender-side** for exact combiners, and moves messages
//! through recycled flat buffers — all without giving up bit-identical
//! determinism at every thread count. Determinism and provenance-faithful
//! message identity remain prioritized over peak scalability.
//!
//! Crucially for Ariadne, the engine is **never modified** for provenance:
//! the [`Context`] trait lets a wrapper program interpose on message sends
//! and piggyback provenance payloads, exactly as the paper's Figure 2
//! appends the query vertex program to the analytic.
//!
//! # Example
//!
//! ```
//! use ariadne_graph::{generators::regular::path, VertexId};
//! use ariadne_vc::{Context, Engine, EngineConfig, Envelope, VertexProgram};
//!
//! /// Propagate the maximum vertex id through the graph.
//! struct MaxId;
//! impl VertexProgram for MaxId {
//!     type V = u64;
//!     type M = u64;
//!     fn init(&self, v: VertexId, _: &ariadne_graph::Csr) -> u64 { v.0 }
//!     fn compute(
//!         &self,
//!         ctx: &mut dyn Context<u64>,
//!         value: &mut u64,
//!         messages: &[Envelope<u64>],
//!     ) {
//!         let incoming = messages.iter().map(|e| e.msg).max();
//!         let new = incoming.map_or(*value, |m| m.max(*value));
//!         if new > *value || ctx.superstep() == 0 {
//!             *value = new;
//!             ctx.send_to_out_neighbors(new);
//!         }
//!     }
//! }
//!
//! let g = path(4);
//! let result = Engine::new(EngineConfig::default()).run(&MaxId, &g);
//! assert_eq!(result.values, vec![0, 1, 2, 3]); // directed path: max flows forward
//! ```

pub mod aggregate;
pub mod checkpoint;
pub mod context;
pub mod engine;
pub mod fault;
pub mod incremental;
pub mod message;
pub mod metrics;
pub mod program;

pub use aggregate::{AggOp, AggValue, Aggregates};
pub use checkpoint::{
    fsync_dir, write_versioned_durable, CheckpointConfig, EngineCheckpoint, EngineError, SnapError,
    Snapshot, SNAPSHOT_VERSION,
};
pub use context::Context;
pub use engine::{chunk_align, Engine, EngineConfig, MessagePlane, RunResult};
pub use incremental::{IncrementalMode, IncrementalRun};
pub use fault::FaultPlan;
pub use message::{Combiner, Envelope, MaxCombiner, MinCombiner, SumCombiner};
pub use metrics::{PhaseTimes, RunMetrics, SuperstepMetrics};
pub use program::{Incrementality, VertexProgram};
