//! Incremental re-execution after a graph mutation batch.
//!
//! Instead of re-running an analytic from scratch on every mutated
//! graph, [`Engine::run_incremental`] seeds the next run from the
//! previous epoch's converged values and re-activates only the vertices
//! a mutation batch could have affected:
//!
//! 1. **Taint** — the invalidation closure: every vertex whose old value
//!    may have depended on a removed/reweighted edge. Computed as the
//!    forward closure *over the old graph* from the batch's
//!    [`MutationReport::invalidation_seeds`] (old paths are what carried
//!    the stale contribution, so the closure must follow old edges).
//!    Tainted vertices reset to [`VertexProgram::init`].
//! 2. **Activation** — the reseed frontier: tainted vertices, their
//!    in-neighbors in the new graph (they must re-offer their still-valid
//!    values), sources of inserted/reweighted edges, and new vertices.
//! 3. A wrapped program runs on the new graph: superstep 0 calls
//!    [`VertexProgram::reseed`] for activated vertices only; every later
//!    superstep is ordinary message-driven [`VertexProgram::compute`].
//!
//! **Exactness.** This is only attempted for programs declaring
//! [`Incrementality::Monotone`]: their fixpoint is the unique solution
//! of a monotone operator, every non-tainted seed value is already *at*
//! its fixpoint value (any dependence on a removed edge would have put
//! it in the old-graph forward closure), and improvements introduced by
//! inserted edges propagate through normal computation. The engine's
//! bit-identical determinism then gives final values equal to a cold run
//! — per-path float sums are evaluated in the same order either way.
//! Programs declaring [`Incrementality::Restart`], and deletion batches
//! against `Monotone { deletion_safe: false }` programs, fall back to a
//! full re-run; both paths return the same values, only the work
//! differs. See `docs/MUTATIONS.md` for the worked example.


#![warn(missing_docs)]
use crate::context::Context;
use crate::engine::{Engine, RunResult};
use crate::message::{Combiner, Envelope};
use crate::program::{Incrementality, VertexProgram};
use ariadne_graph::delta::{forward_closure, MutationReport};
use ariadne_graph::{Csr, VertexId};
use crate::aggregate::{AggOp, Aggregates};

/// Which path an incremental run actually took.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IncrementalMode {
    /// Values were seeded from the previous epoch; only the frontier
    /// re-activated.
    Frontier,
    /// Full re-run from scratch (restart-class program, deletion batch
    /// against a non-deletion-safe program, or missing previous values).
    FullRerun,
}

/// The outcome of [`Engine::run_incremental`].
#[derive(Clone, Debug)]
pub struct IncrementalRun<V> {
    /// The run's values/metrics/aggregates — values are bit-identical to
    /// a cold [`Engine::run`] on the same (mutated) graph.
    pub result: RunResult<V>,
    /// Which path produced it.
    pub mode: IncrementalMode,
    /// Vertices reset to `init` (0 under [`IncrementalMode::FullRerun`]).
    pub reset_vertices: usize,
    /// Vertices in the superstep-0 reseed frontier (0 under full rerun).
    pub activated_vertices: usize,
}

/// Wrapper that seeds values and replaces superstep 0 with a selective
/// reseed pass. All other behaviour delegates to the inner program.
struct Seeded<'a, P: VertexProgram>
where
    P::V: Sync,
{
    inner: &'a P,
    seeds: Vec<P::V>,
    activate: Vec<bool>,
}

impl<P: VertexProgram> VertexProgram for Seeded<'_, P>
where
    P::V: Sync,
{
    type V = P::V;
    type M = P::M;

    fn init(&self, v: VertexId, graph: &Csr) -> P::V {
        match self.seeds.get(v.index()) {
            Some(seed) => seed.clone(),
            None => self.inner.init(v, graph),
        }
    }

    fn compute(
        &self,
        ctx: &mut dyn Context<P::M>,
        value: &mut P::V,
        messages: &[Envelope<P::M>],
    ) {
        if ctx.superstep() == 0 {
            // Reseed pass: only frontier vertices act; everyone else
            // keeps their seeded value and stays silent.
            if self.activate.get(ctx.vertex().index()).copied().unwrap_or(false) {
                self.inner.reseed(ctx, value);
            }
        } else {
            self.inner.compute(ctx, value, messages);
        }
    }

    fn combiner(&self) -> Option<Box<dyn Combiner<P::M>>> {
        self.inner.combiner()
    }

    fn aggregators(&self) -> Vec<(String, AggOp)> {
        self.inner.aggregators()
    }

    fn always_active(&self) -> bool {
        self.inner.always_active()
    }

    fn max_supersteps(&self) -> u32 {
        self.inner.max_supersteps()
    }

    fn should_halt(&self, superstep: u32, aggregates: &Aggregates) -> bool {
        self.inner.should_halt(superstep, aggregates)
    }

    fn message_bytes(&self, msg: &P::M) -> usize {
        self.inner.message_bytes(msg)
    }
}

impl Engine {
    /// Re-run `program` on `new_graph` after a mutation batch, reusing
    /// `prev_values` (the converged values on `old_graph`) wherever the
    /// program's [`Incrementality`] allows. Values in the returned
    /// [`IncrementalRun`] are bit-identical to `self.run(program,
    /// new_graph)`; metrics (supersteps, messages) reflect the actual —
    /// usually much smaller — frontier work.
    pub fn run_incremental<P: VertexProgram>(
        &self,
        program: &P,
        old_graph: &Csr,
        new_graph: &Csr,
        prev_values: &[P::V],
        report: &MutationReport,
    ) -> IncrementalRun<P::V>
    where
        P::V: Sync,
    {
        let seedable = match program.incrementality() {
            Incrementality::Restart => false,
            Incrementality::Monotone { deletion_safe } => {
                !report.has_removals() || deletion_safe
            }
        };
        if !seedable
            || program.always_active()
            || prev_values.len() != old_graph.num_vertices()
        {
            return IncrementalRun {
                result: self.run(program, new_graph),
                mode: IncrementalMode::FullRerun,
                reset_vertices: 0,
                activated_vertices: 0,
            };
        }

        let n = new_graph.num_vertices();
        // Taint over the OLD graph: stale contributions travelled along
        // edges that existed then.
        let taint_old = forward_closure(old_graph, report.invalidation_seeds.iter().copied());
        let mut activate = vec![false; n];
        let mut reset = 0usize;
        let mut seeds: Vec<P::V> = Vec::with_capacity(n);
        for vi in 0..n {
            let v = VertexId(vi as u64);
            let tainted = taint_old.get(vi).copied().unwrap_or(false);
            if tainted || vi >= prev_values.len() {
                seeds.push(program.init(v, new_graph));
                if tainted {
                    reset += 1;
                }
                // New vertices and tainted vertices both reseed (the SSSP
                // source must re-announce distance 0 after a reset).
                activate[vi] = true;
                // Their new-graph in-neighbors must re-offer valid state.
                for &s in new_graph.in_neighbors(v) {
                    activate[s.index()] = true;
                }
            } else {
                seeds.push(prev_values[vi].clone());
            }
        }
        for &s in report
            .insertion_sources
            .iter()
            .chain(&report.insertion_targets)
        {
            if s.index() < n {
                activate[s.index()] = true;
            }
        }
        let activated = activate.iter().filter(|&&a| a).count();
        let wrapped = Seeded {
            inner: program,
            seeds,
            activate,
        };
        let result = self.run(&wrapped, new_graph);
        IncrementalRun {
            result,
            mode: IncrementalMode::Frontier,
            reset_vertices: reset,
            activated_vertices: activated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ariadne_graph::{GraphBuilder, GraphDelta, MutableGraph};

    /// SSSP with the incremental hooks, local to this test module (the
    /// real analytics crate implements the same shape).
    #[derive(Clone)]
    struct IncSssp {
        source: VertexId,
    }

    impl VertexProgram for IncSssp {
        type V = f64;
        type M = f64;

        fn init(&self, _: VertexId, _: &Csr) -> f64 {
            f64::INFINITY
        }

        fn compute(&self, ctx: &mut dyn Context<f64>, value: &mut f64, msgs: &[Envelope<f64>]) {
            let mut best = if ctx.vertex() == self.source {
                0.0
            } else {
                f64::INFINITY
            };
            for e in msgs {
                best = best.min(e.msg);
            }
            if best < *value {
                *value = best;
                for e in ctx.out_edges() {
                    ctx.send(e.neighbor, best + e.weight);
                }
            }
        }

        fn incrementality(&self) -> Incrementality {
            Incrementality::Monotone {
                deletion_safe: true,
            }
        }

        fn reseed(&self, ctx: &mut dyn Context<f64>, value: &mut f64) {
            let d = if ctx.vertex() == self.source {
                0.0
            } else {
                *value
            };
            if d < *value {
                *value = d;
            }
            if d.is_finite() {
                for e in ctx.out_edges() {
                    ctx.send(e.neighbor, d + e.weight);
                }
            }
        }
    }

    fn grid_graph() -> MutableGraph {
        let mut b = GraphBuilder::new();
        for i in 0..30u64 {
            b.add_edge(VertexId(i), VertexId(i + 1), 1.0 + (i % 3) as f64);
            if i + 5 <= 30 {
                b.add_edge(VertexId(i), VertexId((i + 5).min(30)), 2.5);
            }
        }
        MutableGraph::new(b.build())
    }

    #[test]
    fn insert_batch_frontier_matches_cold() {
        for threads in [1usize, 2, 3, 7] {
            let engine = Engine::new(EngineConfig::parallel(threads));
            let mut g = grid_graph();
            let p = IncSssp {
                source: VertexId(0),
            };
            let before = engine.run(&p, g.csr());
            let old = g.csr().clone();
            let mut d = GraphDelta::new();
            d.add_edge(VertexId(0), VertexId(20), 0.5);
            d.add_edge(VertexId(20), VertexId(29), 0.25);
            let report = g.apply(&d);
            let inc = engine.run_incremental(&p, &old, g.csr(), &before.values, &report);
            assert_eq!(inc.mode, IncrementalMode::Frontier);
            let cold = engine.run(&p, g.csr());
            assert_eq!(inc.result.values, cold.values, "threads={threads}");
            assert!(inc.activated_vertices < g.csr().num_vertices());
        }
    }

    #[test]
    fn delete_batch_frontier_matches_cold() {
        for threads in [1usize, 2, 3, 7] {
            let engine = Engine::new(EngineConfig::parallel(threads));
            let mut g = grid_graph();
            let p = IncSssp {
                source: VertexId(0),
            };
            let before = engine.run(&p, g.csr());
            let old = g.csr().clone();
            let mut d = GraphDelta::new();
            d.remove_edge(VertexId(0), VertexId(1));
            d.remove_vertex(VertexId(10));
            let report = g.apply(&d);
            let inc = engine.run_incremental(&p, &old, g.csr(), &before.values, &report);
            assert_eq!(inc.mode, IncrementalMode::Frontier);
            assert!(inc.reset_vertices > 0);
            let cold = engine.run(&p, g.csr());
            assert_eq!(inc.result.values, cold.values, "threads={threads}");
        }
    }

    #[test]
    fn restart_program_falls_back() {
        struct Plain;
        impl VertexProgram for Plain {
            type V = u64;
            type M = u64;
            fn init(&self, v: VertexId, _: &Csr) -> u64 {
                v.0
            }
            fn compute(&self, _: &mut dyn Context<u64>, _: &mut u64, _: &[Envelope<u64>]) {}
        }
        let engine = Engine::new(EngineConfig::sequential());
        let mut g = grid_graph();
        let before = engine.run(&Plain, g.csr());
        let old = g.csr().clone();
        let mut d = GraphDelta::new();
        d.add_edge(VertexId(0), VertexId(2), 1.0);
        let report = g.apply(&d);
        let inc = engine.run_incremental(&Plain, &old, g.csr(), &before.values, &report);
        assert_eq!(inc.mode, IncrementalMode::FullRerun);
    }

    #[test]
    fn non_deletion_safe_monotone_restarts_on_removal() {
        struct MonotoneNoDel;
        impl VertexProgram for MonotoneNoDel {
            type V = u64;
            type M = u64;
            fn init(&self, v: VertexId, _: &Csr) -> u64 {
                v.0
            }
            fn compute(&self, _: &mut dyn Context<u64>, _: &mut u64, _: &[Envelope<u64>]) {}
            fn incrementality(&self) -> Incrementality {
                Incrementality::Monotone {
                    deletion_safe: false,
                }
            }
        }
        let engine = Engine::new(EngineConfig::sequential());
        let mut g = grid_graph();
        let before = engine.run(&MonotoneNoDel, g.csr());
        let old = g.csr().clone();
        let mut d = GraphDelta::new();
        d.remove_edge(VertexId(0), VertexId(1));
        let report = g.apply(&d);
        let inc =
            engine.run_incremental(&MonotoneNoDel, &old, g.csr(), &before.values, &report);
        assert_eq!(inc.mode, IncrementalMode::FullRerun);

        // Insert-only batches may seed.
        let old = g.csr().clone();
        let before = engine.run(&MonotoneNoDel, g.csr());
        let mut d = GraphDelta::new();
        d.add_edge(VertexId(2), VertexId(9), 1.0);
        let report = g.apply(&d);
        let inc =
            engine.run_incremental(&MonotoneNoDel, &old, g.csr(), &before.values, &report);
        assert_eq!(inc.mode, IncrementalMode::Frontier);
    }
}
