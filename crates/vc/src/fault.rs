//! Deterministic fault injection for crash-recovery testing.
//!
//! A [`FaultPlan`] scripts failures at exact points in an otherwise
//! deterministic execution: kill the run at the top of superstep `s`,
//! fail the `n`-th provenance spill write, corrupt the checkpoint file
//! written at barrier `c`. Components consult the plan through
//! `Option<Arc<FaultPlan>>` hooks — a `None` plan costs one branch and
//! touches no locks, so production paths pay nothing.
//!
//! Every fault is **one-shot**: it is consumed the first time it fires.
//! That matters for recovery tests — when a run is killed at superstep
//! `s` and resumed from an earlier snapshot, the loop passes superstep
//! `s` again, and a re-triggering fault would livelock the test. The
//! counters survive in the plan itself (it is shared via `Arc`), so a
//! resume using the same plan replays cleanly past the crash point.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A scripted set of one-shot failures, shareable across the engine and
/// the provenance store via `Arc`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Supersteps at which the engine dies before computing.
    kills: Mutex<BTreeSet<u32>>,
    /// Zero-based ordinals of spill writes that fail.
    spill_failures: Mutex<BTreeSet<u64>>,
    /// Running count of spill-write attempts observed.
    spill_attempts: AtomicU64,
    /// Barrier supersteps whose checkpoint file gets corrupted after
    /// being written.
    corruptions: Mutex<BTreeSet<u32>>,
    /// Zero-based ordinals of store-ingest attempts that stall, mapped
    /// to the stall duration in milliseconds.
    ingest_stalls: Mutex<std::collections::BTreeMap<u64, u64>>,
    /// Running count of store-ingest attempts observed.
    ingest_attempts: AtomicU64,
}

impl FaultPlan {
    /// An empty plan behind an `Arc`, ready to be scripted and shared.
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    // -- scripting ----------------------------------------------------

    /// Kill the run at the top of superstep `s` (before any compute).
    /// The engine surfaces this as `EngineError::InjectedCrash`.
    pub fn kill_at_superstep(&self, s: u32) -> &Self {
        self.kills.lock().unwrap().insert(s);
        self
    }

    /// Make the `n`-th (zero-based) provenance spill write fail with an
    /// IO error.
    pub fn fail_spill_write(&self, n: u64) -> &Self {
        self.spill_failures.lock().unwrap().insert(n);
        self
    }

    /// Corrupt the checkpoint file written at barrier superstep `s`
    /// immediately after it lands on disk (flips payload bytes so the
    /// CRC no longer matches).
    pub fn corrupt_checkpoint(&self, s: u32) -> &Self {
        self.corruptions.lock().unwrap().insert(s);
        self
    }

    /// Make the `n`-th (zero-based) store-ingest attempt stall for
    /// `millis` milliseconds before processing its batch. Used to pin
    /// the async store writer mid-queue so `finish_timeout`
    /// abandonment is deterministic to trigger in tests.
    pub fn stall_ingest(&self, n: u64, millis: u64) -> &Self {
        self.ingest_stalls.lock().unwrap().insert(n, millis);
        self
    }

    // -- hooks (consume on fire) --------------------------------------

    /// Engine hook: should the run die at superstep `s`? Consumes the
    /// fault when it fires.
    pub fn take_kill(&self, s: u32) -> bool {
        self.kills.lock().unwrap().remove(&s)
    }

    /// Store hook: record one spill-write attempt; `true` means this
    /// attempt must fail. Consumes the fault when it fires.
    pub fn take_spill_failure(&self) -> bool {
        let n = self.spill_attempts.fetch_add(1, Ordering::SeqCst);
        self.spill_failures.lock().unwrap().remove(&n)
    }

    /// Checkpoint hook: should the snapshot at barrier `s` be corrupted?
    /// Consumes the fault when it fires.
    pub fn take_corruption(&self, s: u32) -> bool {
        self.corruptions.lock().unwrap().remove(&s)
    }

    /// Store hook: record one ingest attempt; `Some(d)` means this
    /// attempt must sleep for `d` before proceeding. Consumes the fault
    /// when it fires.
    pub fn take_ingest_stall(&self) -> Option<std::time::Duration> {
        let n = self.ingest_attempts.fetch_add(1, Ordering::SeqCst);
        self.ingest_stalls
            .lock()
            .unwrap()
            .remove(&n)
            .map(std::time::Duration::from_millis)
    }

    // -- introspection ------------------------------------------------

    /// Faults scripted but not yet fired (useful for asserting a test
    /// actually exercised its plan).
    pub fn pending(&self) -> usize {
        self.kills.lock().unwrap().len()
            + self.spill_failures.lock().unwrap().len()
            + self.corruptions.lock().unwrap().len()
            + self.ingest_stalls.lock().unwrap().len()
    }

    /// Spill-write attempts observed so far.
    pub fn spill_attempts(&self) -> u64 {
        self.spill_attempts.load(Ordering::SeqCst)
    }

    /// Store-ingest attempts observed so far.
    pub fn ingest_attempts(&self) -> u64 {
        self.ingest_attempts.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_is_one_shot() {
        let plan = FaultPlan::new();
        plan.kill_at_superstep(3);
        assert!(!plan.take_kill(2));
        assert!(plan.take_kill(3));
        assert!(!plan.take_kill(3), "fault must be consumed");
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn spill_failure_targets_exact_ordinal() {
        let plan = FaultPlan::new();
        plan.fail_spill_write(1);
        assert!(!plan.take_spill_failure()); // attempt 0
        assert!(plan.take_spill_failure()); // attempt 1 fails
        assert!(!plan.take_spill_failure()); // attempt 2
        assert_eq!(plan.spill_attempts(), 3);
    }

    #[test]
    fn ingest_stall_targets_exact_ordinal() {
        let plan = FaultPlan::new();
        plan.stall_ingest(1, 250);
        assert_eq!(plan.pending(), 1);
        assert!(plan.take_ingest_stall().is_none()); // attempt 0
        assert_eq!(
            plan.take_ingest_stall(), // attempt 1 stalls
            Some(std::time::Duration::from_millis(250))
        );
        assert!(plan.take_ingest_stall().is_none()); // attempt 2
        assert_eq!(plan.ingest_attempts(), 3);
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn corruption_consumed_once() {
        let plan = FaultPlan::new();
        plan.corrupt_checkpoint(4).corrupt_checkpoint(8);
        assert_eq!(plan.pending(), 2);
        assert!(plan.take_corruption(4));
        assert!(!plan.take_corruption(4));
        assert_eq!(plan.pending(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let plan = FaultPlan::new();
        plan.fail_spill_write(0).fail_spill_write(5);
        let fired: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let p = Arc::clone(&plan);
                    s.spawn(move || usize::from(p.take_spill_failure()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(fired, 1, "exactly attempt 0 fails among 4 attempts");
    }
}
