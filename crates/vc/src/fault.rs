//! Deterministic fault injection for crash-recovery testing.
//!
//! A [`FaultPlan`] scripts failures at exact points in an otherwise
//! deterministic execution: kill the run at the top of superstep `s`,
//! fail the `n`-th provenance spill write, corrupt the checkpoint file
//! written at barrier `c`. Components consult the plan through
//! `Option<Arc<FaultPlan>>` hooks — a `None` plan costs one branch and
//! touches no locks, so production paths pay nothing.
//!
//! Every fault is **one-shot**: it is consumed the first time it fires.
//! That matters for recovery tests — when a run is killed at superstep
//! `s` and resumed from an earlier snapshot, the loop passes superstep
//! `s` again, and a re-triggering fault would livelock the test. The
//! counters survive in the plan itself (it is shared via `Arc`), so a
//! resume using the same plan replays cleanly past the crash point.
//! (The only deliberate exception is [`FaultPlan::transient_io_failures`],
//! which arms a *budget* of consecutive failures rather than a single
//! ordinal — each firing consumes one unit of the budget.)

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A scripted set of one-shot failures, shareable across the engine and
/// the provenance store via `Arc`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Supersteps at which the engine dies before computing.
    kills: Mutex<BTreeSet<u32>>,
    /// Zero-based ordinals of spill writes that fail.
    spill_failures: Mutex<BTreeSet<u64>>,
    /// Running count of spill-write attempts observed.
    spill_attempts: AtomicU64,
    /// Barrier supersteps whose checkpoint file gets corrupted after
    /// being written.
    corruptions: Mutex<BTreeSet<u32>>,
    /// Barrier supersteps whose checkpoint file gets truncated (torn
    /// write) after being written.
    truncations: Mutex<BTreeSet<u32>>,
    /// Zero-based ordinals of store-ingest attempts that stall, mapped
    /// to the stall duration in milliseconds.
    ingest_stalls: Mutex<std::collections::BTreeMap<u64, u64>>,
    /// Running count of store-ingest attempts observed.
    ingest_attempts: AtomicU64,
    /// Zero-based spill-write ordinals torn mid-record, mapped to the
    /// number of bytes actually written before the simulated crash.
    torn_writes: Mutex<std::collections::BTreeMap<u64, usize>>,
    /// Zero-based spill-write ordinals whose bytes get one byte flipped
    /// on the way to disk (silent corruption for scrub tests).
    bit_flips: Mutex<BTreeSet<u64>>,
    /// Cumulative spilled-byte threshold past which the next spill write
    /// fails like a full disk (ENOSPC).
    enospc_after: Mutex<Option<u64>>,
    /// Remaining budget of spill IO attempts that fail with a
    /// *transient* (retryable) error before succeeding.
    transient_budget: AtomicU64,
    /// Compaction protocol steps at which the process dies (see the
    /// store's `compact` for the numbered step points).
    compact_kills: Mutex<BTreeSet<u32>>,
}

impl FaultPlan {
    /// An empty plan behind an `Arc`, ready to be scripted and shared.
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    // -- scripting ----------------------------------------------------

    /// Kill the run at the top of superstep `s` (before any compute).
    /// The engine surfaces this as `EngineError::InjectedCrash`.
    pub fn kill_at_superstep(&self, s: u32) -> &Self {
        self.kills.lock().unwrap().insert(s);
        self
    }

    /// Make the `n`-th (zero-based) provenance spill write fail with an
    /// IO error.
    pub fn fail_spill_write(&self, n: u64) -> &Self {
        self.spill_failures.lock().unwrap().insert(n);
        self
    }

    /// Corrupt the checkpoint file written at barrier superstep `s`
    /// immediately after it lands on disk (flips payload bytes so the
    /// CRC no longer matches).
    pub fn corrupt_checkpoint(&self, s: u32) -> &Self {
        self.corruptions.lock().unwrap().insert(s);
        self
    }

    /// Truncate the checkpoint file written at barrier superstep `s`
    /// immediately after it lands on disk — a torn write, as opposed to
    /// the flipped-byte corruption of [`FaultPlan::corrupt_checkpoint`].
    pub fn truncate_checkpoint(&self, s: u32) -> &Self {
        self.truncations.lock().unwrap().insert(s);
        self
    }

    /// Make the `n`-th (zero-based) store-ingest attempt stall for
    /// `millis` milliseconds before processing its batch. Used to pin
    /// the async store writer mid-queue so `finish_timeout`
    /// abandonment is deterministic to trigger in tests.
    pub fn stall_ingest(&self, n: u64, millis: u64) -> &Self {
        self.ingest_stalls.lock().unwrap().insert(n, millis);
        self
    }

    /// Tear the `n`-th (zero-based) spill write: only the first
    /// `keep_bytes` bytes of the segment bytes reach the file before the
    /// write fails as if the process crashed mid-`write`. The spool is
    /// left with a genuinely torn tail for salvage tests.
    pub fn torn_write_at(&self, n: u64, keep_bytes: usize) -> &Self {
        self.torn_writes.lock().unwrap().insert(n, keep_bytes);
        self
    }

    /// Flip one byte of the `n`-th (zero-based) spill write on its way
    /// to disk. The write *succeeds* — the corruption is silent until a
    /// read or a scrub re-verifies the record CRCs.
    pub fn bit_flip_at(&self, n: u64) -> &Self {
        self.bit_flips.lock().unwrap().insert(n);
        self
    }

    /// Fail the first spill write that would push cumulative spilled
    /// bytes past `bytes`, with an ENOSPC-style (non-retryable) IO
    /// error — the simulated full disk.
    pub fn enospc_after_bytes(&self, bytes: u64) -> &Self {
        *self.enospc_after.lock().unwrap() = Some(bytes);
        self
    }

    /// Arm `n` consecutive *transient* spill IO failures: the next `n`
    /// attempts fail with a retryable error, then IO succeeds again.
    /// Exercises the store's bounded retry-with-backoff wrapper.
    pub fn transient_io_failures(&self, n: u64) -> &Self {
        self.transient_budget.store(n, Ordering::SeqCst);
        self
    }

    /// Kill the run at compaction protocol step `step` (zero-based; the
    /// store documents its numbered step points: before the generation
    /// file write, between write and rename, before the manifest write,
    /// between manifest write and rename, and before old-file deletion).
    /// Crash-recovery tests iterate every step and assert the spool
    /// reopens to either the old or the new generation.
    pub fn kill_at_compact_step(&self, step: u32) -> &Self {
        self.compact_kills.lock().unwrap().insert(step);
        self
    }

    // -- hooks (consume on fire) --------------------------------------

    /// Engine hook: should the run die at superstep `s`? Consumes the
    /// fault when it fires.
    pub fn take_kill(&self, s: u32) -> bool {
        self.kills.lock().unwrap().remove(&s)
    }

    /// Store hook: record one spill-write attempt; `true` means this
    /// attempt must fail. Consumes the fault when it fires.
    pub fn take_spill_failure(&self) -> bool {
        let n = self.spill_attempts.fetch_add(1, Ordering::SeqCst);
        self.spill_failures.lock().unwrap().remove(&n)
    }

    /// Checkpoint hook: should the snapshot at barrier `s` be corrupted?
    /// Consumes the fault when it fires.
    pub fn take_corruption(&self, s: u32) -> bool {
        self.corruptions.lock().unwrap().remove(&s)
    }

    /// Checkpoint hook: should the snapshot at barrier `s` be truncated
    /// (torn write)? Consumes the fault when it fires.
    pub fn take_truncation(&self, s: u32) -> bool {
        self.truncations.lock().unwrap().remove(&s)
    }

    /// Store hook: is spill-write attempt `attempt` torn? Returns the
    /// bytes to keep. Keyed by the ordinal [`FaultPlan::take_spill_failure`]
    /// just assigned (that hook owns the attempt counter). Consumes the
    /// fault when it fires.
    pub fn take_torn_write(&self, attempt: u64) -> Option<usize> {
        self.torn_writes.lock().unwrap().remove(&attempt)
    }

    /// Store hook: should spill-write attempt `attempt` have one byte
    /// flipped? Consumes the fault when it fires.
    pub fn take_bit_flip(&self, attempt: u64) -> bool {
        self.bit_flips.lock().unwrap().remove(&attempt)
    }

    /// Store hook: with `written` cumulative spilled bytes about to be
    /// exceeded, has the scripted disk-full threshold been crossed?
    /// Consumes the fault when it fires.
    pub fn take_enospc(&self, written: u64) -> bool {
        let mut guard = self.enospc_after.lock().unwrap();
        match *guard {
            Some(limit) if written >= limit => {
                *guard = None;
                true
            }
            _ => false,
        }
    }

    /// Store hook: should this spill IO attempt fail transiently?
    /// Consumes one unit of the armed budget when it fires.
    pub fn take_transient_io_failure(&self) -> bool {
        self.transient_budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Store hook: record one ingest attempt; `Some(d)` means this
    /// attempt must sleep for `d` before proceeding. Consumes the fault
    /// when it fires.
    pub fn take_ingest_stall(&self) -> Option<std::time::Duration> {
        let n = self.ingest_attempts.fetch_add(1, Ordering::SeqCst);
        self.ingest_stalls
            .lock()
            .unwrap()
            .remove(&n)
            .map(std::time::Duration::from_millis)
    }

    /// Store hook: should compaction die at protocol step `step`?
    /// Consumes the fault when it fires.
    pub fn take_compact_kill(&self, step: u32) -> bool {
        self.compact_kills.lock().unwrap().remove(&step)
    }

    // -- introspection ------------------------------------------------

    /// Faults scripted but not yet fired (useful for asserting a test
    /// actually exercised its plan).
    pub fn pending(&self) -> usize {
        self.kills.lock().unwrap().len()
            + self.spill_failures.lock().unwrap().len()
            + self.corruptions.lock().unwrap().len()
            + self.truncations.lock().unwrap().len()
            + self.ingest_stalls.lock().unwrap().len()
            + self.torn_writes.lock().unwrap().len()
            + self.bit_flips.lock().unwrap().len()
            + usize::from(self.enospc_after.lock().unwrap().is_some())
            + self.transient_budget.load(Ordering::SeqCst) as usize
            + self.compact_kills.lock().unwrap().len()
    }

    /// Spill-write attempts observed so far.
    pub fn spill_attempts(&self) -> u64 {
        self.spill_attempts.load(Ordering::SeqCst)
    }

    /// Store-ingest attempts observed so far.
    pub fn ingest_attempts(&self) -> u64 {
        self.ingest_attempts.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_is_one_shot() {
        let plan = FaultPlan::new();
        plan.kill_at_superstep(3);
        assert!(!plan.take_kill(2));
        assert!(plan.take_kill(3));
        assert!(!plan.take_kill(3), "fault must be consumed");
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn spill_failure_targets_exact_ordinal() {
        let plan = FaultPlan::new();
        plan.fail_spill_write(1);
        assert!(!plan.take_spill_failure()); // attempt 0
        assert!(plan.take_spill_failure()); // attempt 1 fails
        assert!(!plan.take_spill_failure()); // attempt 2
        assert_eq!(plan.spill_attempts(), 3);
    }

    #[test]
    fn ingest_stall_targets_exact_ordinal() {
        let plan = FaultPlan::new();
        plan.stall_ingest(1, 250);
        assert_eq!(plan.pending(), 1);
        assert!(plan.take_ingest_stall().is_none()); // attempt 0
        assert_eq!(
            plan.take_ingest_stall(), // attempt 1 stalls
            Some(std::time::Duration::from_millis(250))
        );
        assert!(plan.take_ingest_stall().is_none()); // attempt 2
        assert_eq!(plan.ingest_attempts(), 3);
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn corruption_consumed_once() {
        let plan = FaultPlan::new();
        plan.corrupt_checkpoint(4).corrupt_checkpoint(8);
        assert_eq!(plan.pending(), 2);
        assert!(plan.take_corruption(4));
        assert!(!plan.take_corruption(4));
        assert_eq!(plan.pending(), 1);
    }

    #[test]
    fn torn_write_and_bit_flip_target_exact_ordinals() {
        let plan = FaultPlan::new();
        plan.torn_write_at(2, 17).bit_flip_at(1);
        assert_eq!(plan.pending(), 2);
        assert_eq!(plan.take_torn_write(0), None);
        assert_eq!(plan.take_torn_write(2), Some(17));
        assert_eq!(plan.take_torn_write(2), None, "consumed");
        assert!(!plan.take_bit_flip(0));
        assert!(plan.take_bit_flip(1));
        assert!(!plan.take_bit_flip(1), "consumed");
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn enospc_fires_once_past_threshold() {
        let plan = FaultPlan::new();
        plan.enospc_after_bytes(100);
        assert_eq!(plan.pending(), 1);
        assert!(!plan.take_enospc(99));
        assert!(plan.take_enospc(100));
        assert!(!plan.take_enospc(1 << 40), "disk-full fault is one-shot");
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn transient_budget_drains() {
        let plan = FaultPlan::new();
        plan.transient_io_failures(2);
        assert_eq!(plan.pending(), 2);
        assert!(plan.take_transient_io_failure());
        assert!(plan.take_transient_io_failure());
        assert!(!plan.take_transient_io_failure(), "budget exhausted");
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn checkpoint_truncation_consumed_once() {
        let plan = FaultPlan::new();
        plan.truncate_checkpoint(6);
        assert_eq!(plan.pending(), 1);
        assert!(!plan.take_truncation(4));
        assert!(plan.take_truncation(6));
        assert!(!plan.take_truncation(6));
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn shared_across_threads() {
        let plan = FaultPlan::new();
        plan.fail_spill_write(0).fail_spill_write(5);
        let fired: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let p = Arc::clone(&plan);
                    s.spawn(move || usize::from(p.take_spill_failure()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(fired, 1, "exactly attempt 0 fails among 4 attempts");
    }
}
