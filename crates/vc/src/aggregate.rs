//! Global aggregators, reduced at the superstep barrier (Giraph-style).
//!
//! A vertex contributes values during superstep `i`; the reduced result is
//! visible to every vertex at superstep `i + 1` and to the program's halt
//! condition at the barrier. PageRank's tolerance-based termination and
//! ALS's global-error tracking use these.

use std::collections::HashMap;

/// A value contributed to / read from an aggregator.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum AggValue {
    /// Floating point.
    F64(f64),
    /// Integer (counts).
    I64(i64),
    /// Boolean (and/or reductions).
    Bool(bool),
}

impl AggValue {
    /// The f64 inside, panicking on type mismatch (programming error).
    pub fn as_f64(self) -> f64 {
        match self {
            AggValue::F64(v) => v,
            other => panic!("aggregator value {other:?} is not F64"),
        }
    }

    /// The i64 inside, panicking on type mismatch.
    pub fn as_i64(self) -> i64 {
        match self {
            AggValue::I64(v) => v,
            other => panic!("aggregator value {other:?} is not I64"),
        }
    }

    /// The bool inside, panicking on type mismatch.
    pub fn as_bool(self) -> bool {
        match self {
            AggValue::Bool(v) => v,
            other => panic!("aggregator value {other:?} is not Bool"),
        }
    }
}

/// Reduction operator for an aggregator.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AggOp {
    /// Numeric sum.
    Sum,
    /// Numeric minimum.
    Min,
    /// Numeric maximum.
    Max,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

impl AggOp {
    /// Reduce two values; panics on type mismatch between contributions.
    pub fn reduce(self, a: AggValue, b: AggValue) -> AggValue {
        use AggValue::*;
        match (self, a, b) {
            (AggOp::Sum, F64(x), F64(y)) => F64(x + y),
            (AggOp::Sum, I64(x), I64(y)) => I64(x + y),
            (AggOp::Min, F64(x), F64(y)) => F64(x.min(y)),
            (AggOp::Min, I64(x), I64(y)) => I64(x.min(y)),
            (AggOp::Max, F64(x), F64(y)) => F64(x.max(y)),
            (AggOp::Max, I64(x), I64(y)) => I64(x.max(y)),
            (AggOp::And, Bool(x), Bool(y)) => Bool(x && y),
            (AggOp::Or, Bool(x), Bool(y)) => Bool(x || y),
            (op, a, b) => panic!("aggregator type mismatch: {op:?} over {a:?}, {b:?}"),
        }
    }
}

/// A store of named aggregators with their reduction ops.
#[derive(Default, Clone, Debug, PartialEq)]
pub struct Aggregates {
    ops: HashMap<String, AggOp>,
    current: HashMap<String, AggValue>,
    previous: HashMap<String, AggValue>,
}

impl Aggregates {
    /// Create a store with the given registrations.
    pub fn new(defs: impl IntoIterator<Item = (String, AggOp)>) -> Self {
        Aggregates {
            ops: defs.into_iter().collect(),
            current: HashMap::new(),
            previous: HashMap::new(),
        }
    }

    /// Contribute `value` to aggregator `name` for the current superstep.
    ///
    /// Panics if `name` was never registered — contributing to an unknown
    /// aggregator is a programming error we want loud.
    pub fn contribute(&mut self, name: &str, value: AggValue) {
        let op = *self
            .ops
            .get(name)
            .unwrap_or_else(|| panic!("aggregator {name:?} not registered"));
        match self.current.remove(name) {
            Some(acc) => {
                self.current.insert(name.to_string(), op.reduce(acc, value));
            }
            None => {
                self.current.insert(name.to_string(), value);
            }
        }
    }

    /// The reduced value from the *previous* superstep, if any vertex
    /// contributed then.
    pub fn previous(&self, name: &str) -> Option<AggValue> {
        self.previous.get(name).copied()
    }

    /// The value reduced so far in the current superstep (used by the halt
    /// check at the barrier, before rotation).
    pub fn current(&self, name: &str) -> Option<AggValue> {
        self.current.get(name).copied()
    }

    /// Merge another store's current-superstep contributions (worker-local
    /// stores are merged at the barrier).
    pub fn merge_current(&mut self, other: &Aggregates) {
        for (name, &value) in &other.current {
            self.contribute(name, value);
        }
    }

    /// Rotate at the barrier: current becomes previous, current clears.
    pub fn rotate(&mut self) {
        self.previous = std::mem::take(&mut self.current);
    }

    /// Decompose into sorted `(ops, current, previous)` vectors — the
    /// deterministic form the checkpoint codec serializes.
    #[allow(clippy::type_complexity)]
    pub fn to_parts(
        &self,
    ) -> (
        Vec<(String, AggOp)>,
        Vec<(String, AggValue)>,
        Vec<(String, AggValue)>,
    ) {
        fn sorted<V: Copy>(m: &HashMap<String, V>) -> Vec<(String, V)> {
            let mut v: Vec<(String, V)> = m.iter().map(|(k, &x)| (k.clone(), x)).collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        }
        (sorted(&self.ops), sorted(&self.current), sorted(&self.previous))
    }

    /// Rebuild a store from [`Aggregates::to_parts`] output.
    pub fn from_parts(
        ops: Vec<(String, AggOp)>,
        current: Vec<(String, AggValue)>,
        previous: Vec<(String, AggValue)>,
    ) -> Aggregates {
        Aggregates {
            ops: ops.into_iter().collect(),
            current: current.into_iter().collect(),
            previous: previous.into_iter().collect(),
        }
    }

    /// A worker-local clone with the same registrations and empty buffers.
    pub fn fresh_local(&self) -> Aggregates {
        Aggregates {
            ops: self.ops.clone(),
            current: HashMap::new(),
            previous: HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Aggregates {
        Aggregates::new([
            ("sum".to_string(), AggOp::Sum),
            ("min".to_string(), AggOp::Min),
            ("any".to_string(), AggOp::Or),
        ])
    }

    #[test]
    fn sum_reduction() {
        let mut a = store();
        a.contribute("sum", AggValue::F64(1.0));
        a.contribute("sum", AggValue::F64(2.5));
        assert_eq!(a.current("sum"), Some(AggValue::F64(3.5)));
    }

    #[test]
    fn rotation_makes_previous_visible() {
        let mut a = store();
        a.contribute("min", AggValue::I64(9));
        a.contribute("min", AggValue::I64(3));
        assert_eq!(a.previous("min"), None);
        a.rotate();
        assert_eq!(a.previous("min"), Some(AggValue::I64(3)));
        assert_eq!(a.current("min"), None);
    }

    #[test]
    fn merge_worker_locals() {
        let mut global = store();
        let mut w1 = global.fresh_local();
        let mut w2 = global.fresh_local();
        w1.contribute("any", AggValue::Bool(false));
        w2.contribute("any", AggValue::Bool(true));
        global.merge_current(&w1);
        global.merge_current(&w2);
        assert_eq!(global.current("any"), Some(AggValue::Bool(true)));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_aggregator_panics() {
        store().contribute("nope", AggValue::F64(0.0));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut a = store();
        a.contribute("sum", AggValue::F64(1.0));
        a.contribute("sum", AggValue::I64(1));
    }

    #[test]
    fn accessors() {
        assert_eq!(AggValue::F64(2.0).as_f64(), 2.0);
        assert_eq!(AggValue::I64(2).as_i64(), 2);
        assert!(AggValue::Bool(true).as_bool());
    }
}
