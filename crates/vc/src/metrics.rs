//! Per-superstep and per-run execution metrics.
//!
//! The paper's figures are all *ratios of runtimes* plus message/space
//! accounting; the engine measures these uniformly for baseline, online,
//! layered and naive runs so the bench harness can form the same ratios.

use std::time::Duration;

/// Counters for one superstep.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuperstepMetrics {
    /// Superstep index.
    pub superstep: u32,
    /// Vertices that executed `compute`.
    pub active_vertices: usize,
    /// Messages sent during the superstep (after combining).
    pub messages_sent: usize,
    /// Approximate bytes of message payloads sent.
    pub message_bytes: usize,
    /// Messages materialized in outbox buffers before delivery. With
    /// sender-side combining this is the post-combine buffered count;
    /// without a combiner it equals `messages_sent`. This is the metric
    /// Tables 3–4-style space accounting cares about: it measures what
    /// the message plane actually held in flight.
    pub buffered_messages: usize,
    /// Approximate payload bytes held in outbox buffers before delivery.
    pub buffered_bytes: usize,
    /// Wall time of the superstep (compute + delivery).
    pub elapsed: Duration,
}

/// Aggregated counters for a whole run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// One entry per executed superstep.
    pub supersteps: Vec<SuperstepMetrics>,
    /// Total wall time of the run.
    pub elapsed: Duration,
}

impl RunMetrics {
    /// Number of supersteps executed.
    pub fn num_supersteps(&self) -> u32 {
        self.supersteps.len() as u32
    }

    /// Total messages across all supersteps.
    pub fn total_messages(&self) -> usize {
        self.supersteps.iter().map(|s| s.messages_sent).sum()
    }

    /// Total message bytes across all supersteps.
    pub fn total_message_bytes(&self) -> usize {
        self.supersteps.iter().map(|s| s.message_bytes).sum()
    }

    /// Total vertex activations across all supersteps.
    pub fn total_activations(&self) -> usize {
        self.supersteps.iter().map(|s| s.active_vertices).sum()
    }

    /// Total messages buffered in outboxes across all supersteps.
    pub fn total_buffered_messages(&self) -> usize {
        self.supersteps.iter().map(|s| s.buffered_messages).sum()
    }

    /// Total payload bytes buffered in outboxes across all supersteps.
    pub fn total_buffered_bytes(&self) -> usize {
        self.supersteps.iter().map(|s| s.buffered_bytes).sum()
    }

    /// Largest per-superstep buffered byte count — the peak in-flight
    /// footprint of the message plane for this run.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.supersteps
            .iter()
            .map(|s| s.buffered_bytes)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let m = RunMetrics {
            supersteps: vec![
                SuperstepMetrics {
                    superstep: 0,
                    active_vertices: 10,
                    messages_sent: 5,
                    message_bytes: 40,
                    buffered_messages: 8,
                    buffered_bytes: 64,
                    elapsed: Duration::from_millis(1),
                },
                SuperstepMetrics {
                    superstep: 1,
                    active_vertices: 4,
                    messages_sent: 2,
                    message_bytes: 16,
                    buffered_messages: 2,
                    buffered_bytes: 16,
                    elapsed: Duration::from_millis(1),
                },
            ],
            elapsed: Duration::from_millis(2),
        };
        assert_eq!(m.num_supersteps(), 2);
        assert_eq!(m.total_messages(), 7);
        assert_eq!(m.total_message_bytes(), 56);
        assert_eq!(m.total_activations(), 14);
        assert_eq!(m.total_buffered_messages(), 10);
        assert_eq!(m.total_buffered_bytes(), 80);
        assert_eq!(m.peak_buffered_bytes(), 64);
    }

    #[test]
    fn peak_of_empty_run_is_zero() {
        assert_eq!(RunMetrics::default().peak_buffered_bytes(), 0);
    }
}
