//! Per-superstep and per-run execution metrics.
//!
//! The paper's figures are all *ratios of runtimes* plus message/space
//! accounting; the engine measures these uniformly for baseline, online,
//! layered and naive runs so the bench harness can form the same ratios.

use std::ops::AddAssign;
use std::time::Duration;

/// Wall-time breakdown of one superstep into its BSP phases.
///
/// Phases are measured from the driver thread's perspective:
///
/// * `compute` — vertex programs running in parallel (includes
///   sender-side combining, which happens inside `Context::send`);
/// * `combine` — delivery-side combiner folding (pass 2 of flat
///   delivery when the program has a combiner, or the combiner branch
///   of naive delivery);
/// * `scatter` — message routing/transpose and inbox scatter (pass 1
///   counting + non-combined pass 2);
/// * `barrier` — aggregate merge, dedup-table recycling, halt voting,
///   and metric bookkeeping between phases.
///
/// Timings are wall-clock and therefore **not** deterministic across
/// runs or thread counts, unlike the message/activation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Parallel vertex-program execution.
    pub compute: Duration,
    /// Delivery-side combiner folding.
    pub combine: Duration,
    /// Message transpose + inbox scatter.
    pub scatter: Duration,
    /// Barrier bookkeeping between phases.
    pub barrier: Duration,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.compute + self.combine + self.scatter + self.barrier
    }
}

impl AddAssign for PhaseTimes {
    fn add_assign(&mut self, rhs: PhaseTimes) {
        self.compute += rhs.compute;
        self.combine += rhs.combine;
        self.scatter += rhs.scatter;
        self.barrier += rhs.barrier;
    }
}

/// Counters for one superstep.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuperstepMetrics {
    /// Superstep index.
    pub superstep: u32,
    /// Vertices that executed `compute`.
    pub active_vertices: usize,
    /// Messages sent during the superstep (after combining).
    pub messages_sent: usize,
    /// Messages delivered into destination inboxes for the next
    /// superstep. Exactly equals `messages_sent`: delivery happens in
    /// the same barrier and nothing is dropped. Tracked separately (and
    /// counted at the delivery site, not the send site) so tests can
    /// assert the conservation law per plane instead of assuming it.
    pub messages_delivered: usize,
    /// Approximate bytes of message payloads sent.
    pub message_bytes: usize,
    /// Messages materialized in outbox buffers before delivery. With
    /// sender-side combining this is the post-combine buffered count;
    /// without a combiner it equals `messages_sent`. This is the metric
    /// Tables 3–4-style space accounting cares about: it measures what
    /// the message plane actually held in flight.
    pub buffered_messages: usize,
    /// Approximate payload bytes held in outbox buffers before delivery.
    pub buffered_bytes: usize,
    /// Wall time of the superstep (compute + delivery), excluding
    /// checkpoint snapshot I/O, which is reported in `checkpoint`.
    pub elapsed: Duration,
    /// Wall-time breakdown of `elapsed` into BSP phases.
    pub phases: PhaseTimes,
    /// Time spent writing (or, on resume, reading) the checkpoint
    /// snapshot at this superstep's barrier. Zero when checkpointing is
    /// disabled or the interval did not fire. Previously this cost was
    /// silently folded into `elapsed`.
    pub checkpoint: Duration,
}

/// Aggregated counters for a whole run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// One entry per executed superstep.
    pub supersteps: Vec<SuperstepMetrics>,
    /// Total wall time of the run.
    pub elapsed: Duration,
}

impl RunMetrics {
    /// Number of supersteps executed.
    pub fn num_supersteps(&self) -> u32 {
        self.supersteps.len() as u32
    }

    /// Total messages across all supersteps.
    pub fn total_messages(&self) -> usize {
        self.supersteps.iter().map(|s| s.messages_sent).sum()
    }

    /// Total message bytes across all supersteps.
    pub fn total_message_bytes(&self) -> usize {
        self.supersteps.iter().map(|s| s.message_bytes).sum()
    }

    /// Total vertex activations across all supersteps.
    pub fn total_activations(&self) -> usize {
        self.supersteps.iter().map(|s| s.active_vertices).sum()
    }

    /// Total messages buffered in outboxes across all supersteps.
    pub fn total_buffered_messages(&self) -> usize {
        self.supersteps.iter().map(|s| s.buffered_messages).sum()
    }

    /// Total payload bytes buffered in outboxes across all supersteps.
    pub fn total_buffered_bytes(&self) -> usize {
        self.supersteps.iter().map(|s| s.buffered_bytes).sum()
    }

    /// Largest per-superstep buffered byte count — the peak in-flight
    /// footprint of the message plane for this run.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.supersteps
            .iter()
            .map(|s| s.buffered_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total messages delivered across all supersteps. Always equals
    /// [`RunMetrics::total_messages`]; kept separate so the invariant
    /// is testable rather than assumed.
    pub fn total_messages_delivered(&self) -> usize {
        self.supersteps.iter().map(|s| s.messages_delivered).sum()
    }

    /// Phase-time totals across all supersteps.
    pub fn phase_totals(&self) -> PhaseTimes {
        let mut total = PhaseTimes::default();
        for s in &self.supersteps {
            total += s.phases;
        }
        total
    }

    /// Total checkpoint snapshot I/O time across all supersteps.
    pub fn total_checkpoint_time(&self) -> Duration {
        self.supersteps.iter().map(|s| s.checkpoint).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let m = RunMetrics {
            supersteps: vec![
                SuperstepMetrics {
                    superstep: 0,
                    active_vertices: 10,
                    messages_sent: 5,
                    messages_delivered: 5,
                    message_bytes: 40,
                    buffered_messages: 8,
                    buffered_bytes: 64,
                    elapsed: Duration::from_millis(1),
                    phases: PhaseTimes {
                        compute: Duration::from_micros(600),
                        combine: Duration::from_micros(100),
                        scatter: Duration::from_micros(200),
                        barrier: Duration::from_micros(100),
                    },
                    checkpoint: Duration::from_micros(50),
                },
                SuperstepMetrics {
                    superstep: 1,
                    active_vertices: 4,
                    messages_sent: 2,
                    messages_delivered: 2,
                    message_bytes: 16,
                    buffered_messages: 2,
                    buffered_bytes: 16,
                    elapsed: Duration::from_millis(1),
                    phases: PhaseTimes {
                        compute: Duration::from_micros(400),
                        combine: Duration::from_micros(0),
                        scatter: Duration::from_micros(500),
                        barrier: Duration::from_micros(100),
                    },
                    checkpoint: Duration::ZERO,
                },
            ],
            elapsed: Duration::from_millis(2),
        };
        assert_eq!(m.num_supersteps(), 2);
        assert_eq!(m.total_messages(), 7);
        assert_eq!(m.total_message_bytes(), 56);
        assert_eq!(m.total_activations(), 14);
        assert_eq!(m.total_buffered_messages(), 10);
        assert_eq!(m.total_buffered_bytes(), 80);
        assert_eq!(m.peak_buffered_bytes(), 64);
        assert_eq!(m.total_messages_delivered(), m.total_messages());
        let phases = m.phase_totals();
        assert_eq!(phases.compute, Duration::from_micros(1000));
        assert_eq!(phases.combine, Duration::from_micros(100));
        assert_eq!(phases.scatter, Duration::from_micros(700));
        assert_eq!(phases.barrier, Duration::from_micros(200));
        assert_eq!(phases.total(), Duration::from_micros(2000));
        assert_eq!(m.total_checkpoint_time(), Duration::from_micros(50));
    }

    #[test]
    fn peak_of_empty_run_is_zero() {
        assert_eq!(RunMetrics::default().peak_buffered_bytes(), 0);
    }
}
