//! Checkpoint snapshots for the BSP engine.
//!
//! At a superstep barrier the engine's entire resumable state is five
//! pieces: the next superstep index, the vertex values, the pending
//! inboxes (messages already delivered for the next superstep), the
//! rotated aggregator state, and the metrics recorded so far. Because
//! the engine is deterministic (see `engine.rs`), a run resumed from a
//! barrier snapshot produces **bit-identical** values, aggregates and
//! superstep counts to an uninterrupted run — the determinism tests
//! rely on this.
//!
//! # On-disk format (version 2)
//!
//! Version 2 extends the [`SuperstepMetrics`] encoding with the buffered
//! message/byte counters introduced by the flat message plane
//! (`buffered_messages`, `buffered_bytes`). Version-1 files are rejected
//! with a typed error; there is no silent migration.
//!
//! ```text
//! +---------+---------+-------------+-----------+----------------+
//! | "ARSN"  | version | payload len |  payload  | CRC32(payload) |
//! | 4 bytes | u32 LE  |   u64 LE    |  n bytes  |     u32 LE     |
//! +---------+---------+-------------+-----------+----------------+
//! ```
//!
//! The payload is the [`Snapshot`] encoding of an [`EngineCheckpoint`].
//! Truncation, a bad magic/version, a length mismatch or a CRC mismatch
//! all surface as [`EngineError::Corrupt`] — never a panic. Files are
//! written to a temporary sibling and atomically renamed so a crash
//! mid-write can never leave a half-written file under the final name.

use crate::aggregate::{AggOp, AggValue, Aggregates};
use crate::message::Envelope;
use crate::metrics::{PhaseTimes, RunMetrics, SuperstepMetrics};
use ariadne_graph::VertexId;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic bytes opening every snapshot file ("ARiadne SNapshot").
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ARSN";

/// Current snapshot format version. Bump on any layout change; readers
/// reject other versions with a typed error rather than misparsing.
/// v3: `SuperstepMetrics` gained `messages_delivered`, per-phase wall
/// times and a `checkpoint` duration.
/// v4: no layout change in the snapshot file itself, but the
/// capture-resume contract it anchors now spans the provenance store's
/// record format too — a store resumed alongside a v4 snapshot may hold
/// mixed v1/v2 (columnar) segment records, and replay after resume must
/// stay bit-identical across both. Readers predating the v2 record
/// magic would accept an old-versioned snapshot yet choke on the spool,
/// so the version gates the pair.
pub const SNAPSHOT_VERSION: u32 = 4;

/// When and where the engine writes barrier snapshots.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Snapshot every `n` supersteps (clamped to at least 1). A snapshot
    /// of the initial state (superstep 0) is always written.
    pub every_n_supersteps: u32,
    /// Directory for snapshot files; created on first use.
    pub dir: PathBuf,
    /// Fsync each snapshot file (and its directory entry) before the
    /// atomic rename publishes it. Off by default: the rename alone
    /// already guarantees a reader never sees a torn snapshot, fsync
    /// additionally guarantees the snapshot survives power loss.
    pub fsync: bool,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `every_n_supersteps` barriers.
    pub fn new(dir: impl Into<PathBuf>, every_n_supersteps: u32) -> Self {
        CheckpointConfig {
            every_n_supersteps: every_n_supersteps.max(1),
            dir: dir.into(),
            fsync: false,
        }
    }

    /// Enable (or disable) fsync-before-rename for snapshot writes.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// The interval, never zero even if the field was set to zero.
    pub fn interval(&self) -> u32 {
        self.every_n_supersteps.max(1)
    }
}

/// Typed failures from checkpointed execution and recovery.
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem failure; `path` names the file or directory involved.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A snapshot file failed validation (magic, version, length, CRC,
    /// or payload decode).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
    /// No snapshot file exists under the configured directory.
    NoCheckpoint {
        /// The directory that was scanned.
        dir: PathBuf,
    },
    /// The engine was asked to checkpoint or resume without a
    /// [`CheckpointConfig`].
    NotConfigured,
    /// A snapshot was taken over a different graph than the one passed
    /// to resume.
    GraphMismatch {
        /// Vertices recorded in the snapshot.
        snapshot_vertices: usize,
        /// Vertices in the graph handed to resume.
        graph_vertices: usize,
    },
    /// A snapshot is internally inconsistent: its inbox table does not
    /// cover the same vertices as its value table / the graph. A
    /// CRC-valid file can still carry this (the checksum covers bytes,
    /// not cross-field invariants), so resume validates it explicitly
    /// instead of panicking when the partition table walks off the end.
    InboxMismatch {
        /// Per-vertex inboxes recorded in the snapshot.
        snapshot_inboxes: usize,
        /// Vertices the graph (and value table) expect.
        graph_vertices: usize,
    },
    /// A [`crate::fault::FaultPlan`] killed the run at this superstep
    /// (simulated crash; resume from the latest snapshot).
    InjectedCrash {
        /// The superstep at which the worker died.
        superstep: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io { path, source } => {
                write!(f, "checkpoint io error at {}: {source}", path.display())
            }
            EngineError::Corrupt { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            EngineError::NoCheckpoint { dir } => {
                write!(f, "no checkpoint found under {}", dir.display())
            }
            EngineError::NotConfigured => {
                write!(f, "engine has no checkpoint configuration")
            }
            EngineError::GraphMismatch {
                snapshot_vertices,
                graph_vertices,
            } => write!(
                f,
                "snapshot covers {snapshot_vertices} vertices but graph has {graph_vertices}"
            ),
            EngineError::InboxMismatch {
                snapshot_inboxes,
                graph_vertices,
            } => write!(
                f,
                "snapshot inbox covers {snapshot_inboxes} vertices but graph has \
                 {graph_vertices}: inconsistent snapshot"
            ),
            EngineError::InjectedCrash { superstep } => {
                write!(f, "injected crash at superstep {superstep}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, table-driven)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `data` (the same polynomial gzip and PNG use).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------

/// Decode failure inside a snapshot payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// Input ended before the value did.
    Truncated,
    /// An enum tag byte had no meaning.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// A length prefix was absurd (guards against misparses allocating
    /// gigabytes from garbage bytes).
    BadLength(u64),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot payload truncated"),
            SnapError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            SnapError::BadUtf8 => write!(f, "non-UTF-8 string field"),
            SnapError::BadLength(n) => write!(f, "implausible length prefix {n}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Binary snapshot codec for engine state.
///
/// Implementations must be deterministic (same value → same bytes) and
/// exact (`read_snap(write_snap(v)) == v`, bit-for-bit for floats):
/// resume correctness and the CRC both depend on it. Map-like types
/// must serialize in sorted key order.
pub trait Snapshot: Sized {
    /// Append this value's encoding to `out`.
    fn write_snap(&self, out: &mut Vec<u8>);
    /// Decode a value from the front of `input`, advancing it.
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError>;
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], SnapError> {
    if input.len() < n {
        return Err(SnapError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

/// Upper bound on any single length prefix; snapshots of this workspace
/// are far smaller, and garbage bytes decoded as a length should fail
/// fast instead of attempting a huge allocation.
const MAX_LEN: u64 = 1 << 40;

fn read_len(input: &mut &[u8]) -> Result<usize, SnapError> {
    let n = u64::read_snap(input)?;
    if n > MAX_LEN {
        return Err(SnapError::BadLength(n));
    }
    Ok(n as usize)
}

impl Snapshot for u8 {
    fn write_snap(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(take(input, 1)?[0])
    }
}

impl Snapshot for u32 {
    fn write_snap(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(u32::from_le_bytes(take(input, 4)?.try_into().unwrap()))
    }
}

impl Snapshot for u64 {
    fn write_snap(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(u64::from_le_bytes(take(input, 8)?.try_into().unwrap()))
    }
}

impl Snapshot for i64 {
    fn write_snap(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(i64::from_le_bytes(take(input, 8)?.try_into().unwrap()))
    }
}

impl Snapshot for usize {
    fn write_snap(&self, out: &mut Vec<u8>) {
        (*self as u64).write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        read_len(input)
    }
}

impl Snapshot for f64 {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.to_bits().write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(f64::from_bits(u64::read_snap(input)?))
    }
}

impl Snapshot for bool {
    fn write_snap(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        match u8::read_snap(input)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag(t)),
        }
    }
}

impl Snapshot for () {
    fn write_snap(&self, _out: &mut Vec<u8>) {}
    fn read_snap(_input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(())
    }
}

impl Snapshot for String {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.len().write_snap(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        let n = read_len(input)?;
        let bytes = take(input, n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadUtf8)
    }
}

impl Snapshot for Duration {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.as_secs().write_snap(out);
        self.subsec_nanos().write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        let secs = u64::read_snap(input)?;
        let nanos = u32::read_snap(input)?;
        Ok(Duration::new(secs, nanos.min(999_999_999)))
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.len().write_snap(out);
        for item in self {
            item.write_snap(out);
        }
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        let n = read_len(input)?;
        let mut items = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            items.push(T::read_snap(input)?);
        }
        Ok(items)
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn write_snap(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write_snap(out);
            }
        }
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        match u8::read_snap(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::read_snap(input)?)),
            t => Err(SnapError::BadTag(t)),
        }
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.0.write_snap(out);
        self.1.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok((A::read_snap(input)?, B::read_snap(input)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.0.write_snap(out);
        self.1.write_snap(out);
        self.2.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok((A::read_snap(input)?, B::read_snap(input)?, C::read_snap(input)?))
    }
}

impl Snapshot for VertexId {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.0.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(VertexId(u64::read_snap(input)?))
    }
}

impl<M: Snapshot> Snapshot for Envelope<M> {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.src.write_snap(out);
        self.msg.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(Envelope {
            src: VertexId::read_snap(input)?,
            msg: M::read_snap(input)?,
        })
    }
}

impl Snapshot for AggOp {
    fn write_snap(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AggOp::Sum => 0,
            AggOp::Min => 1,
            AggOp::Max => 2,
            AggOp::And => 3,
            AggOp::Or => 4,
        });
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        match u8::read_snap(input)? {
            0 => Ok(AggOp::Sum),
            1 => Ok(AggOp::Min),
            2 => Ok(AggOp::Max),
            3 => Ok(AggOp::And),
            4 => Ok(AggOp::Or),
            t => Err(SnapError::BadTag(t)),
        }
    }
}

impl Snapshot for AggValue {
    fn write_snap(&self, out: &mut Vec<u8>) {
        match self {
            AggValue::F64(v) => {
                out.push(0);
                v.write_snap(out);
            }
            AggValue::I64(v) => {
                out.push(1);
                v.write_snap(out);
            }
            AggValue::Bool(v) => {
                out.push(2);
                v.write_snap(out);
            }
        }
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        match u8::read_snap(input)? {
            0 => Ok(AggValue::F64(f64::read_snap(input)?)),
            1 => Ok(AggValue::I64(i64::read_snap(input)?)),
            2 => Ok(AggValue::Bool(bool::read_snap(input)?)),
            t => Err(SnapError::BadTag(t)),
        }
    }
}

impl Snapshot for Aggregates {
    fn write_snap(&self, out: &mut Vec<u8>) {
        // to_parts returns sorted vectors — deterministic bytes.
        let (ops, current, previous) = self.to_parts();
        ops.write_snap(out);
        current.write_snap(out);
        previous.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        let ops = Vec::<(String, AggOp)>::read_snap(input)?;
        let current = Vec::<(String, AggValue)>::read_snap(input)?;
        let previous = Vec::<(String, AggValue)>::read_snap(input)?;
        Ok(Aggregates::from_parts(ops, current, previous))
    }
}

impl Snapshot for PhaseTimes {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.compute.write_snap(out);
        self.combine.write_snap(out);
        self.scatter.write_snap(out);
        self.barrier.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(PhaseTimes {
            compute: Duration::read_snap(input)?,
            combine: Duration::read_snap(input)?,
            scatter: Duration::read_snap(input)?,
            barrier: Duration::read_snap(input)?,
        })
    }
}

impl Snapshot for SuperstepMetrics {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.superstep.write_snap(out);
        self.active_vertices.write_snap(out);
        self.messages_sent.write_snap(out);
        self.messages_delivered.write_snap(out);
        self.message_bytes.write_snap(out);
        self.buffered_messages.write_snap(out);
        self.buffered_bytes.write_snap(out);
        self.elapsed.write_snap(out);
        self.phases.write_snap(out);
        self.checkpoint.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(SuperstepMetrics {
            superstep: u32::read_snap(input)?,
            active_vertices: usize::read_snap(input)?,
            messages_sent: usize::read_snap(input)?,
            messages_delivered: usize::read_snap(input)?,
            message_bytes: usize::read_snap(input)?,
            buffered_messages: usize::read_snap(input)?,
            buffered_bytes: usize::read_snap(input)?,
            elapsed: Duration::read_snap(input)?,
            phases: PhaseTimes::read_snap(input)?,
            checkpoint: Duration::read_snap(input)?,
        })
    }
}

impl Snapshot for RunMetrics {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.supersteps.write_snap(out);
        self.elapsed.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(RunMetrics {
            supersteps: Vec::read_snap(input)?,
            elapsed: Duration::read_snap(input)?,
        })
    }
}

// ---------------------------------------------------------------------
// Engine checkpoint
// ---------------------------------------------------------------------

/// Everything needed to resume a BSP run from a superstep barrier.
#[derive(Clone, Debug)]
pub struct EngineCheckpoint<V, M> {
    /// The next superstep to execute.
    pub superstep: u32,
    /// Vertex values as of the barrier.
    pub values: Vec<V>,
    /// Messages already delivered for superstep `superstep`.
    pub inbox: Vec<Vec<Envelope<M>>>,
    /// Aggregator state after barrier rotation.
    pub aggregates: Aggregates,
    /// Metrics recorded up to the barrier.
    pub metrics: RunMetrics,
}

impl<V: Snapshot, M: Snapshot> Snapshot for EngineCheckpoint<V, M> {
    fn write_snap(&self, out: &mut Vec<u8>) {
        self.superstep.write_snap(out);
        self.values.write_snap(out);
        self.inbox.write_snap(out);
        self.aggregates.write_snap(out);
        self.metrics.write_snap(out);
    }
    fn read_snap(input: &mut &[u8]) -> Result<Self, SnapError> {
        Ok(EngineCheckpoint {
            superstep: u32::read_snap(input)?,
            values: Vec::read_snap(input)?,
            inbox: Vec::read_snap(input)?,
            aggregates: Aggregates::read_snap(input)?,
            metrics: RunMetrics::read_snap(input)?,
        })
    }
}

// ---------------------------------------------------------------------
// Versioned, checksummed file IO
// ---------------------------------------------------------------------

fn io_err(path: &Path, source: std::io::Error) -> EngineError {
    EngineError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> EngineError {
    EngineError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

/// Frame `payload` (magic + version + length + CRC32) and write it
/// atomically: the bytes land in a `.tmp` sibling first and are renamed
/// into place, so `path` either holds a complete frame or nothing.
pub fn write_versioned(path: &Path, payload: &[u8]) -> Result<(), EngineError> {
    write_versioned_durable(path, payload, false)
}

/// [`write_versioned`] with an explicit durability choice: when `fsync`
/// is true the temp file is synced to disk *before* the rename and the
/// parent directory entry is synced *after* it, so the published
/// snapshot survives power loss, not just process crash.
pub fn write_versioned_durable(path: &Path, payload: &[u8], fsync: bool) -> Result<(), EngineError> {
    let mut framed = Vec::with_capacity(payload.len() + 20);
    framed.extend_from_slice(&SNAPSHOT_MAGIC);
    framed.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(payload);
    framed.extend_from_slice(&crc32(payload).to_le_bytes());

    let tmp = path.with_extension("tmp");
    if fsync {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        std::io::Write::write_all(&mut f, &framed).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    } else {
        std::fs::write(&tmp, &framed).map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if fsync {
        if let Some(dir) = path.parent() {
            fsync_dir(dir).map_err(|e| io_err(dir, e))?;
        }
    }
    Ok(())
}

/// Sync a directory's entry table so a just-renamed or just-created
/// file name survives power loss. A no-op error on platforms where
/// directories cannot be opened is surfaced to the caller.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Read a framed file back, validating magic, version, length and CRC.
/// Every validation failure is a typed [`EngineError::Corrupt`].
pub fn read_versioned(path: &Path) -> Result<Vec<u8>, EngineError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < 16 {
        return Err(corrupt(path, format!("file too short ({} bytes)", bytes.len())));
    }
    if bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(corrupt(path, "bad magic bytes"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(
            path,
            format!("unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"),
        ));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let expected_total = 16usize.saturating_add(len).saturating_add(4);
    if bytes.len() != expected_total {
        return Err(corrupt(
            path,
            format!(
                "length mismatch: header claims {len} payload bytes, file holds {}",
                bytes.len().saturating_sub(20)
            ),
        ));
    }
    let payload = &bytes[16..16 + len];
    let stored_crc = u32::from_le_bytes(bytes[16 + len..].try_into().unwrap());
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(corrupt(
            path,
            format!("CRC mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"),
        ));
    }
    Ok(payload.to_vec())
}

/// The snapshot file name for a barrier at `superstep`.
pub fn checkpoint_path(dir: &Path, superstep: u32) -> PathBuf {
    dir.join(format!("ckpt-{superstep:010}.snap"))
}

/// All snapshot files under `dir`, sorted by superstep ascending. A
/// missing directory is an empty list, not an error.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u32, PathBuf)>, EngineError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(dir, e)),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(step) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            found.push((step, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Serialize and write an [`EngineCheckpoint`] for its barrier superstep.
pub fn write_checkpoint<V: Snapshot, M: Snapshot>(
    dir: &Path,
    ckpt: &EngineCheckpoint<V, M>,
) -> Result<PathBuf, EngineError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let mut payload = Vec::new();
    ckpt.write_snap(&mut payload);
    let path = checkpoint_path(dir, ckpt.superstep);
    write_versioned(&path, &payload)?;
    Ok(path)
}

/// Read and validate one snapshot file.
pub fn read_checkpoint<V: Snapshot, M: Snapshot>(
    path: &Path,
) -> Result<EngineCheckpoint<V, M>, EngineError> {
    let payload = read_versioned(path)?;
    let mut input = payload.as_slice();
    let ckpt =
        EngineCheckpoint::read_snap(&mut input).map_err(|e| corrupt(path, e.to_string()))?;
    if !input.is_empty() {
        return Err(corrupt(
            path,
            format!("{} trailing bytes after payload", input.len()),
        ));
    }
    Ok(ckpt)
}

/// Load the newest *valid* checkpoint under `dir`.
///
/// Corrupt files (detected by CRC/framing) are skipped in favour of the
/// next-older snapshot — a torn or tampered newest checkpoint must not
/// brick recovery. Returns [`EngineError::NoCheckpoint`] when the
/// directory holds no snapshot files at all, or the newest corruption
/// error when every file present is corrupt.
pub fn load_latest_checkpoint<V: Snapshot, M: Snapshot>(
    dir: &Path,
) -> Result<EngineCheckpoint<V, M>, EngineError> {
    let files = list_checkpoints(dir)?;
    if files.is_empty() {
        return Err(EngineError::NoCheckpoint {
            dir: dir.to_path_buf(),
        });
    }
    let mut last_err = None;
    for (_, path) in files.iter().rev() {
        match read_checkpoint(path) {
            Ok(ckpt) => return Ok(ckpt),
            Err(e @ (EngineError::Corrupt { .. } | EngineError::Io { .. })) => {
                last_err = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.expect("non-empty file list with no result must have an error"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn roundtrip<T: Snapshot + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.write_snap(&mut buf);
        let mut input = buf.as_slice();
        let back = T::read_snap(&mut input).expect("decode");
        assert_eq!(back, v);
        assert!(input.is_empty(), "leftover bytes after decode");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(42u8);
        roundtrip(7u32);
        roundtrip(u64::MAX);
        roundtrip(-5i64);
        roundtrip(3.25f64);
        roundtrip(f64::NAN.to_bits()); // NaN bit pattern survives via u64
        roundtrip(true);
        roundtrip(String::from("päyload"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(9u64));
        roundtrip((String::from("k"), 4u64));
        roundtrip(Duration::new(3, 141_592_653));
        roundtrip(VertexId(17));
        roundtrip(Envelope::new(VertexId(1), 2.5f64));
    }

    #[test]
    fn nan_bits_are_preserved() {
        let v = f64::from_bits(0x7FF8_0000_0000_0001);
        let mut buf = Vec::new();
        v.write_snap(&mut buf);
        let mut input = buf.as_slice();
        let back = f64::read_snap(&mut input).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn truncated_input_is_typed_error() {
        let mut buf = Vec::new();
        12345u64.write_snap(&mut buf);
        let mut short = &buf[..3];
        assert_eq!(u64::read_snap(&mut short), Err(SnapError::Truncated));
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        let mut buf = Vec::new();
        (u64::MAX).write_snap(&mut buf);
        let mut input = buf.as_slice();
        assert!(matches!(
            Vec::<u8>::read_snap(&mut input),
            Err(SnapError::BadLength(_))
        ));
    }

    #[test]
    fn aggregates_roundtrip_deterministically() {
        let mut a = Aggregates::new([
            ("z".to_string(), AggOp::Sum),
            ("a".to_string(), AggOp::Min),
        ]);
        a.contribute("z", AggValue::F64(2.0));
        a.rotate();
        a.contribute("a", AggValue::F64(1.0));

        let mut b1 = Vec::new();
        a.write_snap(&mut b1);
        let mut b2 = Vec::new();
        a.write_snap(&mut b2);
        assert_eq!(b1, b2, "encoding must be deterministic");

        let mut input = b1.as_slice();
        let back = Aggregates::read_snap(&mut input).unwrap();
        assert_eq!(back.current("a"), Some(AggValue::F64(1.0)));
        assert_eq!(back.previous("z"), Some(AggValue::F64(2.0)));
    }

    #[test]
    fn versioned_file_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("ariadne-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        write_versioned(&path, b"hello snapshot").unwrap();
        assert_eq!(read_versioned(&path).unwrap(), b"hello snapshot");

        // Flip one payload byte: CRC must catch it, typed, no panic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[18] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_versioned(&path) {
            Err(EngineError::Corrupt { detail, .. }) => {
                assert!(detail.contains("CRC"), "unexpected detail: {detail}")
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }

        // Truncate: length check catches it.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            read_versioned(&path),
            Err(EngineError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_listing_sorts_and_ignores_noise() {
        let dir = std::env::temp_dir().join(format!("ariadne-list-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for s in [7u32, 0, 3] {
            std::fs::write(checkpoint_path(&dir, s), b"x").unwrap();
        }
        std::fs::write(dir.join("notes.txt"), b"y").unwrap();
        let found = list_checkpoints(&dir).unwrap();
        let steps: Vec<u32> = found.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![0, 3, 7]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_lists_empty_and_load_reports_no_checkpoint() {
        let dir = std::env::temp_dir().join("ariadne-definitely-missing-dir-xyz");
        assert!(list_checkpoints(&dir).unwrap().is_empty());
        assert!(matches!(
            load_latest_checkpoint::<f64, f64>(&dir),
            Err(EngineError::NoCheckpoint { .. })
        ));
    }
}
