//! Message envelopes and combiners.

use ariadne_graph::VertexId;

/// A message together with its sender.
///
/// Giraph messages do not carry their source, but Ariadne's provenance
/// model does (`receive-message(x, y, m, i)` names the sender `y`), so the
/// engine tracks it. When a [`Combiner`] merges messages from different
/// sources, the combined envelope's source becomes [`Envelope::COMBINED`].
#[derive(Clone, PartialEq, Debug)]
pub struct Envelope<M> {
    /// The sending vertex, or [`Envelope::COMBINED`] after combining.
    pub src: VertexId,
    /// The message payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Sentinel source for messages merged by a combiner.
    pub const COMBINED: VertexId = VertexId(u64::MAX);

    /// Construct an envelope.
    pub fn new(src: VertexId, msg: M) -> Self {
        Envelope { src, msg }
    }

    /// Whether this envelope lost its per-source identity to a combiner.
    pub fn is_combined(&self) -> bool {
        self.src == Self::COMBINED
    }
}

/// Commutative, associative message combiner (Giraph's `MessageCombiner`).
///
/// Combining reduces message traffic for analytics that only need an
/// aggregate of their inbox (min for SSSP/WCC, sum for PageRank). Note
/// that combining erases per-source message provenance, so provenance
/// capture runs disable combiners (see `ariadne-core`).
pub trait Combiner<M>: Send + Sync {
    /// Merge `incoming` into the accumulator `acc`.
    fn combine(&self, acc: &mut M, incoming: &M);

    /// Whether the combined result is bit-identical regardless of how the
    /// message multiset is grouped and ordered.
    ///
    /// Selection combiners (min/max) and wrapping-integer sums are exact;
    /// floating-point accumulation is **not** (addition is not
    /// associative at the bit level). The engine only performs
    /// *sender-side* combining — which partitions the message stream into
    /// per-worker partials whose grouping depends on the chunk layout —
    /// for exact combiners. Non-exact combiners are still honoured, but
    /// at delivery time in global sender order, which keeps N-thread runs
    /// bit-identical to 1-thread runs and combined runs bit-identical to
    /// uncombined ones.
    ///
    /// The default is `false`: a custom combiner must opt in to the
    /// stronger claim.
    fn is_exact(&self) -> bool {
        false
    }
}

/// Keeps the minimum message (for [`PartialOrd`] messages).
#[derive(Default, Copy, Clone, Debug)]
pub struct MinCombiner;

impl<M: PartialOrd + Clone + Send + Sync> Combiner<M> for MinCombiner {
    fn combine(&self, acc: &mut M, incoming: &M) {
        if incoming < acc {
            *acc = incoming.clone();
        }
    }

    /// Selection of the minimum is grouping-insensitive. (Caveat: values
    /// that compare equal but differ at the bit level — `-0.0` vs `0.0` —
    /// could select different representatives; no analytic in this
    /// workspace produces such ties.)
    fn is_exact(&self) -> bool {
        true
    }
}

/// Keeps the maximum message.
#[derive(Default, Copy, Clone, Debug)]
pub struct MaxCombiner;

impl<M: PartialOrd + Clone + Send + Sync> Combiner<M> for MaxCombiner {
    fn combine(&self, acc: &mut M, incoming: &M) {
        if incoming > acc {
            *acc = incoming.clone();
        }
    }

    /// Selection of the maximum is grouping-insensitive (same caveat as
    /// [`MinCombiner::is_exact`]).
    fn is_exact(&self) -> bool {
        true
    }
}

/// Sums f64 messages (PageRank).
#[derive(Default, Copy, Clone, Debug)]
pub struct SumCombiner;

impl Combiner<f64> for SumCombiner {
    fn combine(&self, acc: &mut f64, incoming: &f64) {
        *acc += *incoming;
    }

    /// f64 addition is not associative at the bit level, so the engine
    /// must not regroup the fold — combining stays delivery-side, in
    /// global sender order.
    fn is_exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_combiner() {
        let c = MinCombiner;
        let mut acc = 5.0f64;
        Combiner::combine(&c, &mut acc, &3.0);
        Combiner::combine(&c, &mut acc, &7.0);
        assert_eq!(acc, 3.0);
    }

    #[test]
    fn max_combiner() {
        let c = MaxCombiner;
        let mut acc = 5u64;
        Combiner::combine(&c, &mut acc, &9);
        Combiner::combine(&c, &mut acc, &2);
        assert_eq!(acc, 9);
    }

    #[test]
    fn sum_combiner() {
        let c = SumCombiner;
        let mut acc = 1.0;
        c.combine(&mut acc, &2.0);
        c.combine(&mut acc, &3.5);
        assert_eq!(acc, 6.5);
    }

    #[test]
    fn combined_sentinel() {
        let e = Envelope::new(Envelope::<f64>::COMBINED, 1.0);
        assert!(e.is_combined());
        let e2 = Envelope::new(VertexId(3), 1.0);
        assert!(!e2.is_combined());
    }
}
