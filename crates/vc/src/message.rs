//! Message envelopes and combiners.

use ariadne_graph::VertexId;

/// A message together with its sender.
///
/// Giraph messages do not carry their source, but Ariadne's provenance
/// model does (`receive-message(x, y, m, i)` names the sender `y`), so the
/// engine tracks it. When a [`Combiner`] merges messages from different
/// sources, the combined envelope's source becomes [`Envelope::COMBINED`].
#[derive(Clone, PartialEq, Debug)]
pub struct Envelope<M> {
    /// The sending vertex, or [`Envelope::COMBINED`] after combining.
    pub src: VertexId,
    /// The message payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Sentinel source for messages merged by a combiner.
    pub const COMBINED: VertexId = VertexId(u64::MAX);

    /// Construct an envelope.
    pub fn new(src: VertexId, msg: M) -> Self {
        Envelope { src, msg }
    }

    /// Whether this envelope lost its per-source identity to a combiner.
    pub fn is_combined(&self) -> bool {
        self.src == Self::COMBINED
    }
}

/// Commutative, associative message combiner (Giraph's `MessageCombiner`).
///
/// Combining reduces message traffic for analytics that only need an
/// aggregate of their inbox (min for SSSP/WCC, sum for PageRank). Note
/// that combining erases per-source message provenance, so provenance
/// capture runs disable combiners (see `ariadne-core`).
pub trait Combiner<M>: Send + Sync {
    /// Merge `incoming` into the accumulator `acc`.
    fn combine(&self, acc: &mut M, incoming: &M);
}

/// Keeps the minimum message (for [`PartialOrd`] messages).
#[derive(Default, Copy, Clone, Debug)]
pub struct MinCombiner;

impl<M: PartialOrd + Clone + Send + Sync> Combiner<M> for MinCombiner {
    fn combine(&self, acc: &mut M, incoming: &M) {
        if incoming < acc {
            *acc = incoming.clone();
        }
    }
}

/// Keeps the maximum message.
#[derive(Default, Copy, Clone, Debug)]
pub struct MaxCombiner;

impl<M: PartialOrd + Clone + Send + Sync> Combiner<M> for MaxCombiner {
    fn combine(&self, acc: &mut M, incoming: &M) {
        if incoming > acc {
            *acc = incoming.clone();
        }
    }
}

/// Sums f64 messages (PageRank).
#[derive(Default, Copy, Clone, Debug)]
pub struct SumCombiner;

impl Combiner<f64> for SumCombiner {
    fn combine(&self, acc: &mut f64, incoming: &f64) {
        *acc += *incoming;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_combiner() {
        let c = MinCombiner;
        let mut acc = 5.0f64;
        Combiner::combine(&c, &mut acc, &3.0);
        Combiner::combine(&c, &mut acc, &7.0);
        assert_eq!(acc, 3.0);
    }

    #[test]
    fn max_combiner() {
        let c = MaxCombiner;
        let mut acc = 5u64;
        Combiner::combine(&c, &mut acc, &9);
        Combiner::combine(&c, &mut acc, &2);
        assert_eq!(acc, 9);
    }

    #[test]
    fn sum_combiner() {
        let c = SumCombiner;
        let mut acc = 1.0;
        c.combine(&mut acc, &2.0);
        c.combine(&mut acc, &3.5);
        assert_eq!(acc, 6.5);
    }

    #[test]
    fn combined_sentinel() {
        let e = Envelope::new(Envelope::<f64>::COMBINED, 1.0);
        assert!(e.is_combined());
        let e2 = Envelope::new(VertexId(3), 1.0);
        assert!(!e2.is_combined());
    }
}
