//! The vertex-program abstraction (Algorithm 1 in the paper's appendix).

use crate::aggregate::{AggOp, Aggregates};
use crate::context::Context;
use crate::message::{Combiner, Envelope};
use ariadne_graph::{Csr, VertexId};

/// How a program's fixpoint behaves under graph mutations — what the
/// incremental re-execution path ([`crate::incremental`]) is allowed to
/// reuse from the previous epoch's values.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Incrementality {
    /// No reuse: any mutation re-runs the analytic from scratch. The
    /// safe default, and the right answer for non-monotone fixpoints
    /// (PageRank, ALS) whose values all shift under any edge change.
    Restart,
    /// The fixpoint is the unique least (or greatest) solution of a
    /// monotone operator, so previous-epoch values outside the mutation's
    /// invalidation closure are still exact and can seed the next run
    /// (SSSP distances, WCC min-labels). `deletion_safe` says whether
    /// that still holds when edges are *removed*: true when invalidated
    /// values can be recomputed from a reset frontier (SSSP — reset the
    /// forward closure of each deleted edge's head), false when a
    /// deletion can raise values globally within a region the frontier
    /// cannot bound (WCC — a component split re-labels half the
    /// component, so deletion batches restart).
    Monotone {
        /// Whether seeding remains exact under edge/vertex removals.
        deletion_safe: bool,
    },
}

/// A vertex-centric program: the single function executed by every vertex
/// at every superstep, plus its configuration (initial values, combiner,
/// aggregators, termination).
pub trait VertexProgram: Send + Sync {
    /// Per-vertex value type. Only `Send` is required: a vertex value is
    /// owned by exactly one worker within a superstep, so interior
    /// mutability without `Sync` (e.g. `RefCell` state in Ariadne's query
    /// vertex programs) is fine.
    type V: Clone + Send;
    /// Message type. `Sync` is required because delivery workers read
    /// every producer's buffers concurrently.
    type M: Clone + Send + Sync;

    /// Initial value of vertex `v` before superstep 0.
    fn init(&self, v: VertexId, graph: &Csr) -> Self::V;

    /// The vertex program body: read `messages`, update `value`, send
    /// messages via `ctx` (visible next superstep).
    fn compute(
        &self,
        ctx: &mut dyn Context<Self::M>,
        value: &mut Self::V,
        messages: &[Envelope<Self::M>],
    );

    /// Optional message combiner. Combining collapses per-source message
    /// identity (see [`Envelope::COMBINED`]); Ariadne disables it when
    /// message provenance is being captured.
    fn combiner(&self) -> Option<Box<dyn Combiner<Self::M>>> {
        None
    }

    /// Global aggregators this program uses.
    fn aggregators(&self) -> Vec<(String, AggOp)> {
        Vec::new()
    }

    /// If true, every vertex computes every superstep regardless of its
    /// inbox (Giraph PageRank behaviour); otherwise a vertex computes only
    /// when it has messages (plus everyone at superstep 0).
    fn always_active(&self) -> bool {
        false
    }

    /// Hard cap on supersteps (the engine also accepts a run-level cap).
    fn max_supersteps(&self) -> u32 {
        u32::MAX
    }

    /// Checked at the barrier after each superstep with the aggregator
    /// values reduced during it; returning true ends the run.
    fn should_halt(&self, _superstep: u32, _aggregates: &Aggregates) -> bool {
        false
    }

    /// Approximate serialized size of a message in bytes, for the
    /// engine's traffic metrics. Override for variable-size messages.
    fn message_bytes(&self, _msg: &Self::M) -> usize {
        std::mem::size_of::<Self::M>()
    }

    /// How this program's fixpoint behaves under graph mutations. The
    /// default, [`Incrementality::Restart`], disables value reuse;
    /// programs returning [`Incrementality::Monotone`] must also
    /// implement [`VertexProgram::reseed`].
    fn incrementality(&self) -> Incrementality {
        Incrementality::Restart
    }

    /// Re-emit the messages that re-establish this vertex's contribution
    /// to the fixpoint, given its (seeded) `value` — called instead of
    /// [`VertexProgram::compute`] at superstep 0 of an incremental run,
    /// and only for vertices in the activation frontier. The vertex may
    /// repair its own value here (e.g. SSSP's source restores distance 0
    /// after a taint reset). Programs declaring
    /// [`Incrementality::Restart`] never have this called.
    fn reseed(&self, _ctx: &mut dyn Context<Self::M>, _value: &mut Self::V) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl VertexProgram for Noop {
        type V = ();
        type M = ();
        fn init(&self, _: VertexId, _: &Csr) {}
        fn compute(&self, _: &mut dyn Context<()>, _: &mut (), _: &[Envelope<()>]) {}
    }

    #[test]
    fn defaults() {
        let p = Noop;
        assert!(p.combiner().is_none());
        assert!(p.aggregators().is_empty());
        assert!(!p.always_active());
        assert_eq!(p.max_supersteps(), u32::MAX);
        assert!(!p.should_halt(0, &Aggregates::default()));
        assert_eq!(p.message_bytes(&()), 0);
    }
}
