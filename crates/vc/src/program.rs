//! The vertex-program abstraction (Algorithm 1 in the paper's appendix).

use crate::aggregate::{AggOp, Aggregates};
use crate::context::Context;
use crate::message::{Combiner, Envelope};
use ariadne_graph::{Csr, VertexId};

/// A vertex-centric program: the single function executed by every vertex
/// at every superstep, plus its configuration (initial values, combiner,
/// aggregators, termination).
pub trait VertexProgram: Send + Sync {
    /// Per-vertex value type. Only `Send` is required: a vertex value is
    /// owned by exactly one worker within a superstep, so interior
    /// mutability without `Sync` (e.g. `RefCell` state in Ariadne's query
    /// vertex programs) is fine.
    type V: Clone + Send;
    /// Message type. `Sync` is required because delivery workers read
    /// every producer's buffers concurrently.
    type M: Clone + Send + Sync;

    /// Initial value of vertex `v` before superstep 0.
    fn init(&self, v: VertexId, graph: &Csr) -> Self::V;

    /// The vertex program body: read `messages`, update `value`, send
    /// messages via `ctx` (visible next superstep).
    fn compute(
        &self,
        ctx: &mut dyn Context<Self::M>,
        value: &mut Self::V,
        messages: &[Envelope<Self::M>],
    );

    /// Optional message combiner. Combining collapses per-source message
    /// identity (see [`Envelope::COMBINED`]); Ariadne disables it when
    /// message provenance is being captured.
    fn combiner(&self) -> Option<Box<dyn Combiner<Self::M>>> {
        None
    }

    /// Global aggregators this program uses.
    fn aggregators(&self) -> Vec<(String, AggOp)> {
        Vec::new()
    }

    /// If true, every vertex computes every superstep regardless of its
    /// inbox (Giraph PageRank behaviour); otherwise a vertex computes only
    /// when it has messages (plus everyone at superstep 0).
    fn always_active(&self) -> bool {
        false
    }

    /// Hard cap on supersteps (the engine also accepts a run-level cap).
    fn max_supersteps(&self) -> u32 {
        u32::MAX
    }

    /// Checked at the barrier after each superstep with the aggregator
    /// values reduced during it; returning true ends the run.
    fn should_halt(&self, _superstep: u32, _aggregates: &Aggregates) -> bool {
        false
    }

    /// Approximate serialized size of a message in bytes, for the
    /// engine's traffic metrics. Override for variable-size messages.
    fn message_bytes(&self, _msg: &Self::M) -> usize {
        std::mem::size_of::<Self::M>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl VertexProgram for Noop {
        type V = ();
        type M = ();
        fn init(&self, _: VertexId, _: &Csr) {}
        fn compute(&self, _: &mut dyn Context<()>, _: &mut (), _: &[Envelope<()>]) {}
    }

    #[test]
    fn defaults() {
        let p = Noop;
        assert!(p.combiner().is_none());
        assert!(p.aggregators().is_empty());
        assert!(!p.always_active());
        assert_eq!(p.max_supersteps(), u32::MAX);
        assert!(!p.should_halt(0, &Aggregates::default()));
        assert_eq!(p.message_bytes(&()), 0);
    }
}
