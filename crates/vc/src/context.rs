//! The per-vertex compute context.
//!
//! [`Context`] is a trait (rather than a concrete engine struct) so that
//! Ariadne's online evaluation can hand the *analytic* a recording shim
//! that observes and forwards its sends, while the engine itself stays
//! unmodified — the architectural point of the paper (§2.2, Figures 1–2).

use crate::aggregate::AggValue;
use ariadne_graph::{Csr, EdgeRef, VertexId};

/// Everything a vertex program may do during `compute`.
pub trait Context<M> {
    /// The current superstep (0-based).
    fn superstep(&self) -> u32;

    /// The id of the vertex currently computing.
    fn vertex(&self) -> VertexId;

    /// The (immutable) input graph.
    fn graph(&self) -> &Csr;

    /// Send `msg` to vertex `to`; it will be delivered at the next
    /// superstep. `to` need not be a neighbour (Giraph allows send-by-id,
    /// which is exactly the failure mode the paper's Query 4 monitors).
    fn send(&mut self, to: VertexId, msg: M);

    /// Contribute `value` to the named global aggregator.
    fn aggregate(&mut self, name: &str, value: AggValue);

    /// Read the named aggregator's reduction from the previous superstep.
    fn prev_aggregate(&self, name: &str) -> Option<AggValue>;

    /// Number of vertices in the graph (convenience).
    fn num_vertices(&self) -> usize {
        self.graph().num_vertices()
    }

    /// Outgoing edges of the computing vertex.
    fn out_edges(&self) -> Vec<EdgeRef> {
        self.graph().out_edges(self.vertex()).collect()
    }

    /// Out-degree of the computing vertex.
    fn out_degree(&self) -> usize {
        self.graph().out_degree(self.vertex())
    }

    /// Send the same message along every outgoing edge.
    fn send_to_out_neighbors(&mut self, msg: M)
    where
        M: Clone,
    {
        let targets: Vec<VertexId> =
            self.graph().out_neighbors(self.vertex()).to_vec();
        for t in targets {
            self.send(t, msg.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_graph::generators::regular::star;

    /// A minimal mock context for exercising the provided methods.
    struct Mock {
        graph: Csr,
        sent: Vec<(VertexId, u32)>,
        vertex: VertexId,
    }

    impl Context<u32> for Mock {
        fn superstep(&self) -> u32 {
            7
        }
        fn vertex(&self) -> VertexId {
            self.vertex
        }
        fn graph(&self) -> &Csr {
            &self.graph
        }
        fn send(&mut self, to: VertexId, msg: u32) {
            self.sent.push((to, msg));
        }
        fn aggregate(&mut self, _: &str, _: AggValue) {}
        fn prev_aggregate(&self, _: &str) -> Option<AggValue> {
            None
        }
    }

    #[test]
    fn send_to_out_neighbors_fans_out() {
        let mut m = Mock {
            graph: star(4),
            sent: Vec::new(),
            vertex: VertexId(0),
        };
        m.send_to_out_neighbors(42);
        assert_eq!(
            m.sent,
            vec![(VertexId(1), 42), (VertexId(2), 42), (VertexId(3), 42)]
        );
    }

    #[test]
    fn provided_accessors() {
        let m = Mock {
            graph: star(4),
            sent: Vec::new(),
            vertex: VertexId(0),
        };
        assert_eq!(m.num_vertices(), 4);
        assert_eq!(m.out_degree(), 3);
        assert_eq!(m.out_edges().len(), 3);
        assert_eq!(m.superstep(), 7);
    }
}
