//! The BSP superstep driver.
//!
//! Execution is deterministic even in parallel mode: vertices are split
//! into contiguous chunks, each worker emits messages in vertex order, and
//! inbox merging scans workers in a fixed order — so message delivery
//! order never depends on thread scheduling. Tests rely on this.
//!
//! Two message-plane implementations share that contract
//! ([`MessagePlane`]):
//!
//! * **Flat** (the default): per-(worker, destination-chunk) outbox
//!   buffers recycled across supersteps, a flat offset-table inbox per
//!   chunk filled by a two-pass counting scatter (messages move, they are
//!   never cloned), degree-weighted chunk boundaries cut from the CSR
//!   out-degree prefix sums, and *sender-side* combining for combiners
//!   that declare themselves [`Combiner::is_exact`].
//! * **Naive**: the original per-vertex `Vec<Vec<_>>` plane, kept
//!   byte-for-byte in behaviour as an A/B baseline for the perf harness.
//!
//! Combining policy (see [`Combiner::is_exact`] for the full argument):
//! sender-side combining partitions the per-destination fold by chunk
//! layout, which is only bit-stable for grouping-insensitive (exact)
//! combiners such as min/max selection. Non-exact combiners — floating
//! point sums — are still honoured, but at delivery time in global sender
//! order, which keeps N-thread runs bit-identical to 1-thread runs and
//! combined runs bit-identical to uncombined capture runs.
//!
//! Aggregator reductions in the flat plane are folded per fixed-size
//! *sender block* (a function of the graph size only) and merged in
//! global block order at the barrier, so floating-point aggregates are
//! also bit-identical at every thread count; chunk boundaries are aligned
//! to the block size to make blocks nest inside chunks.

use crate::aggregate::{AggValue, Aggregates};
use crate::checkpoint::{
    checkpoint_path, load_latest_checkpoint, CheckpointConfig, EngineCheckpoint, EngineError,
    Snapshot,
};
use crate::context::Context;
use crate::fault::FaultPlan;
use crate::message::{Combiner, Envelope};
use crate::metrics::{PhaseTimes, RunMetrics, SuperstepMetrics};
use crate::program::VertexProgram;
use ariadne_graph::{ChunkTable, Csr, VertexId};
use ariadne_obs::trace::{self, Level};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cached handles into the global `ariadne-obs` registry for engine
/// metrics. Each accessor registers on first use and then costs one
/// `OnceLock` load; recording is a relaxed sharded `fetch_add`.
///
/// Counters of *logical work* (supersteps, messages, activations) are
/// flagged deterministic — bit-identical across thread counts. Phase
/// timings and sender-combine hits depend on wall clock and chunk
/// layout respectively and are flagged non-deterministic.
mod obs_handles {
    use ariadne_obs::metrics::Counter;
    use std::sync::OnceLock;

    macro_rules! engine_counter {
        ($fn_name:ident, $name:literal, $help:literal, $det:expr) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().counter($name, $help, $det))
            }
        };
    }

    engine_counter!(
        supersteps,
        "engine_supersteps_total",
        "supersteps executed across all runs",
        true
    );
    engine_counter!(
        active_vertices,
        "engine_active_vertices_total",
        "vertex activations (compute calls)",
        true
    );
    engine_counter!(
        messages_sent,
        "engine_messages_sent_total",
        "messages sent (post-combining)",
        true
    );
    engine_counter!(
        messages_delivered,
        "engine_messages_delivered_total",
        "messages delivered into inboxes",
        true
    );
    engine_counter!(
        message_bytes,
        "engine_message_bytes_total",
        "approximate message payload bytes sent",
        true
    );
    engine_counter!(
        buffered_messages,
        "engine_buffered_messages_total",
        "messages materialized in outbox buffers (chunk-layout dependent)",
        false
    );
    engine_counter!(
        sender_combine_hits,
        "engine_sender_combine_hits_total",
        "sends folded into an existing outbox slot at the sender (chunk-layout dependent)",
        false
    );
    engine_counter!(
        phase_compute_ns,
        "engine_phase_compute_ns_total",
        "wall nanoseconds in the compute phase",
        false
    );
    engine_counter!(
        phase_combine_ns,
        "engine_phase_combine_ns_total",
        "wall nanoseconds in delivery-side combining",
        false
    );
    engine_counter!(
        phase_scatter_ns,
        "engine_phase_scatter_ns_total",
        "wall nanoseconds in message transpose and inbox scatter",
        false
    );
    engine_counter!(
        phase_barrier_ns,
        "engine_phase_barrier_ns_total",
        "wall nanoseconds in barrier bookkeeping",
        false
    );
    engine_counter!(
        checkpoint_writes,
        "engine_checkpoint_writes_total",
        "checkpoint snapshots written at barriers",
        true
    );
    engine_counter!(
        checkpoint_write_ns,
        "engine_checkpoint_write_ns_total",
        "wall nanoseconds writing checkpoint snapshots",
        false
    );
    engine_counter!(
        faults_injected,
        "engine_faults_injected_total",
        "scripted faults fired (kills, corruptions)",
        true
    );
    engine_counter!(
        resumes,
        "engine_resumes_total",
        "runs resumed from a checkpoint snapshot",
        true
    );
}

/// Which message-plane implementation a run uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum MessagePlane {
    /// Flat recycled buffers, degree-weighted chunking and sender-side
    /// combining for exact combiners (the default).
    #[default]
    Flat,
    /// The historical per-vertex `Vec` plane: fresh nested allocations
    /// every superstep and a `clone` per delivered message. Kept as the
    /// A/B baseline the bench harness measures the flat plane against.
    Naive,
}

/// Engine-level run configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// Hard cap on supersteps regardless of the program's own cap.
    pub max_supersteps: u32,
    /// Whether to honour the program's message combiner. Ariadne turns
    /// this off when per-source message provenance must be preserved.
    pub use_combiner: bool,
    /// Which message-plane implementation to run (default
    /// [`MessagePlane::Flat`]). Both planes produce identical values,
    /// aggregates and superstep counts.
    pub plane: MessagePlane,
    /// Barrier snapshotting; honoured by [`Engine::run_checkpointed`]
    /// and [`Engine::resume`] ([`Engine::run`] never touches disk).
    pub checkpoint: Option<CheckpointConfig>,
    /// Scripted fault injection; honoured by the fallible entry points
    /// only. `None` costs one branch per superstep.
    pub fault: Option<Arc<FaultPlan>>,
    /// Optional pre-built chunk table for the flat plane. Callers that
    /// run the same (or an incrementally mutated) graph repeatedly — the
    /// mutable session re-running after a mutation batch — pass the
    /// previous epoch's table here, rebalanced only when a batch skewed
    /// it (see `ChunkTable::rebalance`). The hint is used only when its
    /// vertex count matches the graph; chunk layout never affects
    /// results, so a stale-but-covering table costs balance, not
    /// correctness.
    pub chunk_hint: Option<Arc<ChunkTable>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            max_supersteps: 10_000,
            use_combiner: true,
            plane: MessagePlane::Flat,
            checkpoint: None,
            fault: None,
            chunk_hint: None,
        }
    }
}

impl EngineConfig {
    /// Sequential single-threaded configuration (fully deterministic and
    /// the default for tests).
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel configuration with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        EngineConfig {
            threads: threads.max(1),
            ..Self::default()
        }
    }
}

/// The outcome of a run.
#[derive(Clone, Debug)]
pub struct RunResult<V> {
    /// Final vertex values, indexed by vertex id.
    pub values: Vec<V>,
    /// Per-superstep and total metrics.
    pub metrics: RunMetrics,
    /// Final aggregator state (previous = last superstep's reductions).
    pub aggregates: Aggregates,
}

impl<V> RunResult<V> {
    /// Number of supersteps the analytic executed.
    pub fn supersteps(&self) -> u32 {
        self.metrics.num_supersteps()
    }
}

/// One outbox buffer: destination-tagged envelopes bound for one chunk.
type OutboxBuf<M> = Vec<(VertexId, Envelope<M>)>;

/// One worker's per-destination-chunk outbox buffers.
type OutboxSet<M> = Vec<OutboxBuf<M>>;

/// Sender-side combining index: destination id → (chunk, index) of the
/// buffered envelope holding that destination's accumulator.
///
/// This sits on the per-message hot path, so it is a dense epoch-stamped
/// array rather than a hash map: a probe is one bounds-checked load and
/// one compare, and resetting between supersteps is `O(1)` (bump the
/// epoch; the backing arrays are never cleared). The tables are recycled
/// through the engine's pool alongside the outbox shells, so their
/// `O(|V|)`-per-worker footprint is allocated once per run.
#[derive(Default)]
struct DedupTable {
    /// Epoch stamp per destination; an entry is live iff its stamp
    /// equals the current epoch.
    stamp: Vec<u32>,
    /// `(chunk, index)` of the live accumulator, valid only when stamped.
    loc: Vec<(u32, usize)>,
    /// Current epoch. 0 is reserved as "never stamped".
    epoch: u32,
}

impl DedupTable {
    /// Start a fresh superstep over `n` destinations: size the arrays and
    /// invalidate every previous entry by bumping the epoch.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.loc.resize(n, (0, 0));
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrapped: stale stamps could collide, so clear
                // them once every 2^32 supersteps.
                self.stamp.fill(0);
                1
            }
        };
    }

    /// The buffered accumulator for destination `v`, if this worker has
    /// already sent to `v` this superstep.
    #[inline]
    fn get(&self, v: usize) -> Option<(usize, usize)> {
        if self.stamp[v] == self.epoch {
            let (c, i) = self.loc[v];
            Some((c as usize, i))
        } else {
            None
        }
    }

    /// Record that destination `v`'s accumulator lives at
    /// `outboxes[chunk][idx]`.
    #[inline]
    fn insert(&mut self, v: usize, chunk: usize, idx: usize) {
        self.stamp[v] = self.epoch;
        self.loc[v] = (chunk as u32, idx);
    }
}

/// The BSP engine. Stateless apart from its configuration; `run` may be
/// called any number of times.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Run `program` over `graph` to completion.
    ///
    /// This is the infallible hot path: it never touches disk and never
    /// consults the fault plan, regardless of configuration. Use
    /// [`Engine::run_checkpointed`] for fault-tolerant execution.
    pub fn run<P: VertexProgram>(&self, program: &P, graph: &Csr) -> RunResult<P::V> {
        let state = fresh_state(program, graph);
        match self.drive(program, graph, state, &mut NoSink, None) {
            Ok(result) => result,
            Err(e) => unreachable!("no sink and no faults: drive cannot fail ({e})"),
        }
    }

    /// Run `program` with barrier snapshotting per the engine's
    /// [`CheckpointConfig`], honouring any scripted [`FaultPlan`].
    ///
    /// A snapshot of the initial state (superstep 0) is written before
    /// the first superstep, then one every `every_n_supersteps`
    /// barriers, so [`Engine::resume`] always has a recovery point no
    /// matter where a crash lands. Without a checkpoint configuration
    /// this degrades to a fallible [`Engine::run`] that still honours
    /// kill faults.
    pub fn run_checkpointed<P>(
        &self,
        program: &P,
        graph: &Csr,
    ) -> Result<RunResult<P::V>, EngineError>
    where
        P: VertexProgram,
        P::V: Snapshot,
        P::M: Snapshot,
    {
        let state = fresh_state(program, graph);
        self.drive_checkpointed(program, graph, state, true)
    }

    /// Resume from the newest valid snapshot under the configured
    /// checkpoint directory and run to completion (continuing to write
    /// snapshots).
    ///
    /// Because the engine is deterministic, the returned [`RunResult`]
    /// is bit-identical (values, aggregates, superstep count and
    /// per-superstep counters) to what the uninterrupted run would have
    /// produced. Corrupt snapshot files are skipped in favour of older
    /// valid ones.
    pub fn resume<P>(&self, program: &P, graph: &Csr) -> Result<RunResult<P::V>, EngineError>
    where
        P: VertexProgram,
        P::V: Snapshot,
        P::M: Snapshot,
    {
        let cfg = self
            .config
            .checkpoint
            .as_ref()
            .ok_or(EngineError::NotConfigured)?;
        let ckpt = load_latest_checkpoint::<P::V, P::M>(&cfg.dir)?;
        self.resume_from(program, graph, ckpt)
    }

    /// Resume from an explicit, already-validated checkpoint.
    pub fn resume_from<P>(
        &self,
        program: &P,
        graph: &Csr,
        checkpoint: EngineCheckpoint<P::V, P::M>,
    ) -> Result<RunResult<P::V>, EngineError>
    where
        P: VertexProgram,
        P::V: Snapshot,
        P::M: Snapshot,
    {
        if checkpoint.values.len() != graph.num_vertices() {
            return Err(EngineError::GraphMismatch {
                snapshot_vertices: checkpoint.values.len(),
                graph_vertices: graph.num_vertices(),
            });
        }
        // The value table can match the graph while the inbox table does
        // not (a hand-built or bit-rotted checkpoint: the CRC covers
        // bytes, not cross-field invariants). Left unchecked, the flat
        // plane's partition-table walk runs off the short inbox and
        // panics mid-superstep — validate it here, typed.
        if checkpoint.inbox.len() != graph.num_vertices() {
            return Err(EngineError::InboxMismatch {
                snapshot_inboxes: checkpoint.inbox.len(),
                graph_vertices: graph.num_vertices(),
            });
        }
        obs_handles::resumes().inc();
        trace::event(
            Level::Info,
            "engine::checkpoint",
            "resumed",
            &[
                ("superstep", checkpoint.superstep.into()),
                ("vertices", checkpoint.values.len().into()),
            ],
        );
        let state = LoopState {
            superstep: checkpoint.superstep,
            values: checkpoint.values,
            inbox: InboxRepr::PerVertex(checkpoint.inbox),
            aggregates: checkpoint.aggregates,
            metrics: checkpoint.metrics,
        };
        self.drive_checkpointed(program, graph, state, false)
    }

    /// Shared fallible driver: installs the snapshot sink (when
    /// configured) and optionally writes the starting-state snapshot.
    fn drive_checkpointed<P>(
        &self,
        program: &P,
        graph: &Csr,
        state: LoopState<P>,
        write_initial: bool,
    ) -> Result<RunResult<P::V>, EngineError>
    where
        P: VertexProgram,
        P::V: Snapshot,
        P::M: Snapshot,
    {
        let fault = self.config.fault.as_deref();
        match self.config.checkpoint.as_ref() {
            Some(cfg) => {
                if write_initial {
                    write_state_snapshot(cfg, fault, &state)?;
                }
                let mut sink = DirSink { cfg, fault };
                self.drive(program, graph, state, &mut sink, fault)
            }
            None => self.drive(program, graph, state, &mut NoSink, fault),
        }
    }

    /// Dispatch to the configured message plane. Both planes implement
    /// the same deterministic BSP loop; see the module docs for how they
    /// differ mechanically.
    fn drive<P: VertexProgram>(
        &self,
        program: &P,
        graph: &Csr,
        st: LoopState<P>,
        sink: &mut dyn BarrierSink<P>,
        fault: Option<&FaultPlan>,
    ) -> Result<RunResult<P::V>, EngineError> {
        if graph.num_vertices() == 0 {
            return Ok(RunResult {
                values: st.values,
                metrics: st.metrics,
                aggregates: st.aggregates,
            });
        }
        match self.config.plane {
            MessagePlane::Flat => self.drive_flat(program, graph, st, sink, fault),
            MessagePlane::Naive => self.drive_naive(program, graph, st, sink, fault),
        }
    }

    /// The flat message plane.
    ///
    /// Per superstep: phase 1 runs each chunk's vertices against a
    /// read-only flat inbox, buffering sends into recycled per-(worker,
    /// destination-chunk) buffers (combined at the sender for exact
    /// combiners); phase 2 counts arrivals per destination, then moves
    /// every envelope into a flat `ChunkInbox` with a counting scatter.
    /// The pair of inbox sets is double-buffered, so after the first few
    /// supersteps the steady state allocates nothing.
    fn drive_flat<P: VertexProgram>(
        &self,
        program: &P,
        graph: &Csr,
        mut st: LoopState<P>,
        sink: &mut dyn BarrierSink<P>,
        fault: Option<&FaultPlan>,
    ) -> Result<RunResult<P::V>, EngineError> {
        let start = Instant::now();
        let base_elapsed = st.metrics.elapsed;
        let n = graph.num_vertices();

        let combiner = if self.config.use_combiner {
            program.combiner()
        } else {
            None
        };
        // Sender-side combining regroups the per-destination fold by
        // chunk layout; only exact combiners are bit-stable under that.
        let sender_combining = combiner.as_deref().is_some_and(|c| c.is_exact());
        let threads = self.config.threads.max(1).min(n);
        // The aggregate block size depends on the graph only, never the
        // thread count; chunk boundaries snap to it so blocks nest in
        // chunks and the barrier merge happens in global block order.
        let block = sender_block_size(n);
        // A hint is usable only if it covers this graph's id space and
        // keeps every interior boundary block-aligned — blocks must nest
        // in chunks for the barrier merge's global block order (and hence
        // float combining) to stay bit-identical.
        let hint_ok = |t: &ChunkTable| {
            t.num_vertices() == n
                && t.num_chunks() <= n.max(1)
                && t.starts()[1..t.starts().len().saturating_sub(1)]
                    .iter()
                    .all(|s| s % block == 0)
        };
        let table = match &self.config.chunk_hint {
            Some(hint) if hint_ok(hint) => (**hint).clone(),
            _ => ChunkTable::degree_weighted(graph, threads, block),
        };
        let num_chunks = table.num_chunks();
        debug_assert_eq!(table.num_vertices(), n);
        let max_supersteps = self.config.max_supersteps.min(program.max_supersteps());
        let always_active = program.always_active();

        // This plane keeps the inbox flat; fresh and resumed states
        // arrive per-vertex and are converted once here. The flat data
        // is the concatenation of per-vertex lists in vertex order, so
        // the conversion is layout-only: resume stays bit-identical.
        let repr = std::mem::replace(&mut st.inbox, InboxRepr::PerVertex(Vec::new()));
        st.inbox = InboxRepr::Flat(repr.into_flat(&table));

        // Recycled buffers: the spare inbox set double-buffers against
        // `st.inbox`; outbox shells and dedup maps round-trip through
        // pools; `cursors` is per-destination-chunk scatter scratch.
        let mut spare: Vec<ChunkInbox<P::M>> = (0..num_chunks)
            .map(|c| ChunkInbox::empty(table.bounds(c)))
            .collect();
        let mut box_pool: Vec<Vec<(VertexId, Envelope<P::M>)>> = Vec::new();
        let mut dedup_pool: Vec<DedupTable> = Vec::new();
        let mut cursors: Vec<Vec<usize>> = (0..num_chunks).map(|_| Vec::new()).collect();

        loop {
            let step_start = Instant::now();
            let superstep = st.superstep;

            // Scripted crash: the "worker" dies before computing this
            // superstep, exactly as if the process was killed between
            // barriers. One-shot, so a resume sails past this point.
            if let Some(f) = fault {
                if f.take_kill(superstep) {
                    obs_handles::faults_injected().inc();
                    trace::event(
                        Level::Warn,
                        "engine::fault",
                        "injected_crash",
                        &[("superstep", superstep.into())],
                    );
                    return Err(EngineError::InjectedCrash { superstep });
                }
            }

            // Phase 1: compute. Workers own contiguous degree-weighted
            // chunks of values and read the flat inbox immutably.
            let t_compute = Instant::now();
            let mut worker_out: Vec<FlatWorkerOutput<P::M>> = Vec::with_capacity(num_chunks);
            let mut active_total = 0usize;
            {
                let inbox_chunks: &[ChunkInbox<P::M>] = match &st.inbox {
                    InboxRepr::Flat(v) => v,
                    InboxRepr::PerVertex(_) => unreachable!("flat plane keeps a flat inbox"),
                };
                let value_chunks = split_by_table(&mut st.values, &table);
                let agg_ref = &st.aggregates;
                let table_ref = &table;
                let sender = if sender_combining {
                    combiner.as_deref()
                } else {
                    None
                };
                let prepped: Vec<(OutboxSet<P::M>, DedupTable)> = (0..num_chunks)
                    .map(|_| {
                        (
                            take_bufs(&mut box_pool, num_chunks),
                            dedup_pool.pop().unwrap_or_default(),
                        )
                    })
                    .collect();
                let results: Vec<FlatWorkerOutput<P::M>> = if num_chunks == 1 {
                    value_chunks
                        .into_iter()
                        .zip(inbox_chunks)
                        .zip(prepped)
                        .enumerate()
                        .map(|(c, ((vals, ibx), (boxes, dedup)))| {
                            run_chunk_flat::<P>(
                                program,
                                graph,
                                superstep,
                                always_active,
                                table_ref.bounds(c),
                                vals,
                                ibx,
                                agg_ref,
                                table_ref,
                                sender,
                                block,
                                boxes,
                                dedup,
                            )
                        })
                        .collect()
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = value_chunks
                            .into_iter()
                            .zip(inbox_chunks)
                            .zip(prepped)
                            .enumerate()
                            .map(|(c, ((vals, ibx), (boxes, dedup)))| {
                                scope.spawn(move || {
                                    run_chunk_flat::<P>(
                                        program,
                                        graph,
                                        superstep,
                                        always_active,
                                        table_ref.bounds(c),
                                        vals,
                                        ibx,
                                        agg_ref,
                                        table_ref,
                                        sender,
                                        block,
                                        boxes,
                                        dedup,
                                    )
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                for out in results {
                    active_total += out.active;
                    worker_out.push(out);
                }
            }
            let mut phases = PhaseTimes {
                compute: t_compute.elapsed(),
                ..PhaseTimes::default()
            };

            // Barrier: merge per-block aggregate partials in global block
            // order (workers own consecutive block runs, so scanning
            // workers then blocks *is* block order), and recycle the
            // dedup tables (epoch-stamped, so no clearing is needed).
            let t_barrier = Instant::now();
            let mut combine_hits = 0u64;
            for wo in &mut worker_out {
                for ab in &wo.agg_blocks {
                    st.aggregates.merge_current(ab);
                }
                dedup_pool.push(std::mem::take(&mut wo.dedup));
                combine_hits += wo.combine_hits;
            }
            phases.barrier += t_barrier.elapsed();

            // Phase 2: deliver. Transpose outboxes to per-destination
            // producer lists ([worker][dest] → [dest][worker]) by move,
            // scatter into the spare inbox set, then recycle the drained
            // shells. Producers are scanned in worker order and each
            // buffer is in emission order, so the flat inbox holds each
            // vertex's messages in global sender order.
            let counts = {
                let t_transpose = Instant::now();
                let mut transposed: Vec<OutboxSet<P::M>> = (0..num_chunks)
                    .map(|d| {
                        worker_out
                            .iter_mut()
                            .map(|wo| std::mem::take(&mut wo.outboxes[d]))
                            .collect()
                    })
                    .collect();
                phases.scatter += t_transpose.elapsed();
                let deliver = combiner.as_deref();
                let t_deliver = Instant::now();
                let counts: Vec<DeliverCounts> = if num_chunks == 1 {
                    spare
                        .iter_mut()
                        .zip(transposed.iter_mut())
                        .zip(cursors.iter_mut())
                        .map(|((sp, bufs), cur)| {
                            deliver_chunk_flat::<P>(program, deliver, sp, bufs, cur)
                        })
                        .collect()
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = spare
                            .iter_mut()
                            .zip(transposed.iter_mut())
                            .zip(cursors.iter_mut())
                            .map(|((sp, bufs), cur)| {
                                scope.spawn(move || {
                                    deliver_chunk_flat::<P>(program, deliver, sp, bufs, cur)
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                // Delivery wall time is combiner folding when the
                // program has a combiner, pure scatter otherwise.
                if deliver.is_some() {
                    phases.combine += t_deliver.elapsed();
                } else {
                    phases.scatter += t_deliver.elapsed();
                }
                let t_recycle = Instant::now();
                for bufs in &mut transposed {
                    for b in bufs.drain(..) {
                        debug_assert!(b.is_empty(), "delivery must drain every producer buffer");
                        box_pool.push(b);
                    }
                }
                phases.scatter += t_recycle.elapsed();
                counts
                    .into_iter()
                    .fold(DeliverCounts::default(), DeliverCounts::merge)
            };

            // Swap the freshly-delivered inbox set in; the one compute
            // just read becomes next superstep's spare (its contents are
            // cleared, capacity kept, at the next delivery).
            if let InboxRepr::Flat(cur) = &mut st.inbox {
                std::mem::swap(cur, &mut spare);
            }

            st.metrics.supersteps.push(SuperstepMetrics {
                superstep,
                active_vertices: active_total,
                messages_sent: counts.sent,
                messages_delivered: counts.delivered,
                message_bytes: counts.bytes,
                buffered_messages: counts.buffered,
                buffered_bytes: counts.buffered_bytes,
                elapsed: step_start.elapsed(),
                phases,
                checkpoint: Duration::ZERO,
            });
            record_superstep_obs(&st.metrics.supersteps[st.metrics.supersteps.len() - 1]);
            obs_handles::sender_combine_hits().add(combine_hits);

            // Termination checks at the barrier.
            let halted = program.should_halt(superstep, &st.aggregates);
            st.aggregates.rotate();
            let no_traffic = counts.sent == 0 && !always_active;
            st.superstep = superstep + 1;
            if halted || no_traffic || st.superstep >= max_supersteps {
                break;
            }

            // Barrier snapshot hook for runs that continue. The sink
            // decides whether this barrier is on its interval; the
            // recorded elapsed time covers everything up to here so a
            // resumed run reports a sensible total. Snapshot I/O is
            // timed separately and credited to the superstep that just
            // finished (previously it hid inside the next superstep's
            // wall clock).
            st.metrics.elapsed = base_elapsed + start.elapsed();
            let t_ckpt = Instant::now();
            if sink.on_barrier(&st)? {
                record_checkpoint_time(&mut st.metrics, superstep, t_ckpt.elapsed());
            }
        }

        st.metrics.elapsed = base_elapsed + start.elapsed();
        trace::event(
            Level::Info,
            "engine",
            "run_complete",
            &[
                ("plane", "flat".into()),
                ("supersteps", st.metrics.num_supersteps().into()),
                ("messages", st.metrics.total_messages().into()),
                ("elapsed_ns", st.metrics.elapsed.into()),
            ],
        );
        Ok(RunResult {
            values: st.values,
            metrics: st.metrics,
            aggregates: st.aggregates,
        })
    }

    /// The naive message plane: the engine's original superstep loop,
    /// preserved as a measurable baseline (fresh nested `Vec` allocations
    /// each superstep, one clone per delivered message, uniform vertex
    /// chunking, delivery-side combining only).
    fn drive_naive<P: VertexProgram>(
        &self,
        program: &P,
        graph: &Csr,
        mut st: LoopState<P>,
        sink: &mut dyn BarrierSink<P>,
        fault: Option<&FaultPlan>,
    ) -> Result<RunResult<P::V>, EngineError> {
        let start = Instant::now();
        let base_elapsed = st.metrics.elapsed;
        let n = graph.num_vertices();

        // This plane keeps the inbox per-vertex (a flat-repr state can
        // only reach here if a caller round-trips state between planes,
        // but the normalization is cheap insurance).
        let pv = std::mem::replace(&mut st.inbox, InboxRepr::PerVertex(Vec::new()))
            .into_per_vertex();
        st.inbox = InboxRepr::PerVertex(pv);

        let combiner = if self.config.use_combiner {
            program.combiner()
        } else {
            None
        };
        let threads = self.config.threads.max(1).min(n);
        let chunk_size = n.div_ceil(threads);
        // chunks_mut may yield fewer chunks than `threads` when n is not
        // an exact multiple; outbox routing must agree with the actual
        // chunk count or trailing buffers would never be delivered.
        let num_chunks = n.div_ceil(chunk_size);
        let max_supersteps = self.config.max_supersteps.min(program.max_supersteps());
        let always_active = program.always_active();

        loop {
            let step_start = Instant::now();
            let superstep = st.superstep;

            if let Some(f) = fault {
                if f.take_kill(superstep) {
                    obs_handles::faults_injected().inc();
                    trace::event(
                        Level::Warn,
                        "engine::fault",
                        "injected_crash",
                        &[("superstep", superstep.into())],
                    );
                    return Err(EngineError::InjectedCrash { superstep });
                }
            }

            // Phase 1: compute. Workers own contiguous chunks of values
            // and inboxes; each produces per-destination-chunk outboxes.
            let t_compute = Instant::now();
            let mut worker_out: Vec<OutboxSet<P::M>> = Vec::with_capacity(threads);
            let mut worker_aggs: Vec<Aggregates> = Vec::with_capacity(threads);
            let mut active_total = 0usize;

            {
                let inbox_vec = match &mut st.inbox {
                    InboxRepr::PerVertex(v) => v,
                    InboxRepr::Flat(_) => unreachable!("naive plane keeps a per-vertex inbox"),
                };
                let value_chunks: Vec<&mut [P::V]> = st.values.chunks_mut(chunk_size).collect();
                let inbox_chunks: Vec<&mut [Vec<Envelope<P::M>>]> =
                    inbox_vec.chunks_mut(chunk_size).collect();
                let agg_ref = &st.aggregates;
                let results: Vec<WorkerOutput<P::M>> = if threads == 1 {
                    value_chunks
                        .into_iter()
                        .zip(inbox_chunks)
                        .enumerate()
                        .map(|(w, (vals, boxes))| {
                            run_chunk::<P>(
                                program,
                                graph,
                                superstep,
                                always_active,
                                w * chunk_size,
                                vals,
                                boxes,
                                agg_ref,
                                num_chunks,
                                chunk_size,
                            )
                        })
                        .collect()
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = value_chunks
                            .into_iter()
                            .zip(inbox_chunks)
                            .enumerate()
                            .map(|(w, (vals, boxes))| {
                                scope.spawn(move || {
                                    run_chunk::<P>(
                                        program,
                                        graph,
                                        superstep,
                                        always_active,
                                        w * chunk_size,
                                        vals,
                                        boxes,
                                        agg_ref,
                                        num_chunks,
                                        chunk_size,
                                    )
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                for out in results {
                    active_total += out.active;
                    worker_out.push(out.outboxes);
                    worker_aggs.push(out.aggregates);
                }
            }

            let mut phases = PhaseTimes {
                compute: t_compute.elapsed(),
                ..PhaseTimes::default()
            };

            // Barrier: merge aggregates.
            let t_barrier = Instant::now();
            for wa in &worker_aggs {
                st.aggregates.merge_current(wa);
            }
            phases.barrier += t_barrier.elapsed();

            // Phase 2: deliver messages into next-superstep inboxes.
            // Parallel over destination chunks — worker t merges every
            // producer's buffer for chunk t. Deterministic: producers are
            // scanned in a fixed order and each buffer is already in
            // vertex order, so delivery order never depends on
            // scheduling.
            let deliver_chunk = |t: usize, inbox_chunk: &mut [Vec<Envelope<P::M>>]| {
                let base = t * chunk_size;
                // Delivered is counted from the destination side (inbox
                // occupancy delta) so `sent == delivered` is a real
                // cross-check of the routing, not a copied number.
                let pre_len: usize = inbox_chunk.iter().map(|s| s.len()).sum();
                let mut sent = 0usize;
                let mut bytes = 0usize;
                let mut buffered = 0usize;
                let mut buffered_bytes = 0usize;
                for w_out in &worker_out {
                    for (to, env) in &w_out[t] {
                        let slot = &mut inbox_chunk[to.index() - base];
                        let incoming = program.message_bytes(&env.msg);
                        buffered += 1;
                        buffered_bytes += incoming;
                        match (&combiner, slot.last_mut()) {
                            (Some(c), Some(acc)) => {
                                // Combining replaced the slot; the metric
                                // counts post-combining stored messages at
                                // their *final* size, so re-measure the
                                // accumulator after the merge (a combiner
                                // may grow or shrink it).
                                let before = program.message_bytes(&acc.msg);
                                c.combine(&mut acc.msg, &env.msg);
                                acc.src = Envelope::<P::M>::COMBINED;
                                let after = program.message_bytes(&acc.msg);
                                bytes = bytes - before + after;
                            }
                            _ => {
                                slot.push(env.clone());
                                sent += 1;
                                bytes += incoming;
                            }
                        }
                    }
                }
                let post_len: usize = inbox_chunk.iter().map(|s| s.len()).sum();
                DeliverCounts {
                    sent,
                    bytes,
                    buffered,
                    buffered_bytes,
                    delivered: post_len - pre_len,
                }
            };
            let t_deliver = Instant::now();
            let counts = {
                let inbox_vec = match &mut st.inbox {
                    InboxRepr::PerVertex(v) => v,
                    InboxRepr::Flat(_) => unreachable!("naive plane keeps a per-vertex inbox"),
                };
                let inbox_chunks: Vec<&mut [Vec<Envelope<P::M>>]> =
                    inbox_vec.chunks_mut(chunk_size).collect();
                let counts: Vec<DeliverCounts> = if threads == 1 {
                    inbox_chunks
                        .into_iter()
                        .enumerate()
                        .map(|(t, chunk)| deliver_chunk(t, chunk))
                        .collect()
                } else {
                    let deliver_chunk = &deliver_chunk;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = inbox_chunks
                            .into_iter()
                            .enumerate()
                            .map(|(t, chunk)| scope.spawn(move || deliver_chunk(t, chunk)))
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                counts
                    .into_iter()
                    .fold(DeliverCounts::default(), DeliverCounts::merge)
            };
            // The naive plane combines at delivery only; its delivery
            // wall time is combiner folding when a combiner is active.
            if combiner.is_some() {
                phases.combine += t_deliver.elapsed();
            } else {
                phases.scatter += t_deliver.elapsed();
            }

            st.metrics.supersteps.push(SuperstepMetrics {
                superstep,
                active_vertices: active_total,
                messages_sent: counts.sent,
                messages_delivered: counts.delivered,
                message_bytes: counts.bytes,
                buffered_messages: counts.buffered,
                buffered_bytes: counts.buffered_bytes,
                elapsed: step_start.elapsed(),
                phases,
                checkpoint: Duration::ZERO,
            });
            record_superstep_obs(&st.metrics.supersteps[st.metrics.supersteps.len() - 1]);

            // Termination checks at the barrier.
            let halted = program.should_halt(superstep, &st.aggregates);
            st.aggregates.rotate();
            let no_traffic = counts.sent == 0 && !always_active;
            st.superstep = superstep + 1;
            if halted || no_traffic || st.superstep >= max_supersteps {
                break;
            }

            st.metrics.elapsed = base_elapsed + start.elapsed();
            let t_ckpt = Instant::now();
            if sink.on_barrier(&st)? {
                record_checkpoint_time(&mut st.metrics, superstep, t_ckpt.elapsed());
            }
        }

        st.metrics.elapsed = base_elapsed + start.elapsed();
        trace::event(
            Level::Info,
            "engine",
            "run_complete",
            &[
                ("plane", "naive".into()),
                ("supersteps", st.metrics.num_supersteps().into()),
                ("messages", st.metrics.total_messages().into()),
                ("elapsed_ns", st.metrics.elapsed.into()),
            ],
        );
        Ok(RunResult {
            values: st.values,
            metrics: st.metrics,
            aggregates: st.aggregates,
        })
    }
}

/// Messages delivered for one destination chunk, stored flat.
///
/// `data` holds every envelope for vertices `base..base + len` in
/// ascending local-vertex order; `starts` (length `len + 1`) indexes it,
/// so vertex `base + i`'s inbox is `data[starts[i]..starts[i + 1]]`.
/// Within one vertex's slice, envelopes are in global sender order.
struct ChunkInbox<M> {
    /// First global vertex index of the chunk.
    base: usize,
    /// Per-local-vertex offsets into `data` (exclusive prefix sums).
    starts: Vec<usize>,
    /// All envelopes for the chunk, grouped by destination.
    data: Vec<Envelope<M>>,
}

impl<M> ChunkInbox<M> {
    /// An empty inbox for the vertex range `[start, end)`.
    fn empty((start, end): (usize, usize)) -> Self {
        ChunkInbox {
            base: start,
            starts: vec![0; end - start + 1],
            data: Vec::new(),
        }
    }

    /// Number of vertices this chunk covers.
    fn vertex_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Messages for local vertex `local` (index within the chunk).
    #[inline]
    fn msgs(&self, local: usize) -> &[Envelope<M>] {
        &self.data[self.starts[local]..self.starts[local + 1]]
    }
}

/// The engine's inbox, in whichever layout the active plane uses.
///
/// Checkpoints always serialize the per-vertex layout (the two encode
/// byte-identically via [`write_inbox_snap`]), so snapshot files are
/// plane-agnostic and the flat plane resumes bit-identically.
enum InboxRepr<M> {
    /// One `Vec` per vertex (naive plane, fresh/resumed state).
    PerVertex(Vec<Vec<Envelope<M>>>),
    /// One flat buffer per chunk (flat plane).
    Flat(Vec<ChunkInbox<M>>),
}

impl<M> InboxRepr<M> {
    /// Convert to the per-vertex layout, preserving per-vertex message
    /// order exactly.
    fn into_per_vertex(self) -> Vec<Vec<Envelope<M>>> {
        match self {
            InboxRepr::PerVertex(v) => v,
            InboxRepr::Flat(chunks) => {
                let mut out = Vec::new();
                for chunk in chunks {
                    let ChunkInbox { starts, data, .. } = chunk;
                    let mut iter = data.into_iter();
                    for w in starts.windows(2) {
                        out.push(iter.by_ref().take(w[1] - w[0]).collect());
                    }
                }
                out
            }
        }
    }

    /// Convert to the flat layout for `table`'s chunking, preserving
    /// per-vertex message order exactly.
    ///
    /// Resume validates inbox length against the graph before any state
    /// reaches here ([`EngineError::InboxMismatch`]), so a short inbox
    /// is an internal-invariant breach, not a reachable input state; it
    /// still degrades to empty inboxes rather than panicking a worker.
    fn into_flat(self, table: &ChunkTable) -> Vec<ChunkInbox<M>> {
        let per_vertex = self.into_per_vertex();
        debug_assert_eq!(per_vertex.len(), table.num_vertices());
        let mut iter = per_vertex.into_iter();
        let mut chunks = Vec::with_capacity(table.num_chunks());
        for c in 0..table.num_chunks() {
            let bounds = table.bounds(c);
            let mut inbox = ChunkInbox::empty(bounds);
            for i in 0..(bounds.1 - bounds.0) {
                let msgs = iter.next().unwrap_or_default();
                inbox.data.extend(msgs);
                inbox.starts[i + 1] = inbox.data.len();
            }
            chunks.push(inbox);
        }
        chunks
    }
}

/// Mutable engine state that is live across a barrier — exactly what a
/// checkpoint captures.
struct LoopState<P: VertexProgram> {
    /// The next superstep to execute.
    superstep: u32,
    /// Vertex values.
    values: Vec<P::V>,
    /// Messages delivered for superstep `superstep`.
    inbox: InboxRepr<P::M>,
    /// Aggregator state (rotated: `previous` holds the last barrier's
    /// reductions).
    aggregates: Aggregates,
    /// Metrics recorded so far; `elapsed` is the accumulated wall time.
    metrics: RunMetrics,
}

/// Initial state for a fresh run of `program` over `graph`.
fn fresh_state<P: VertexProgram>(program: &P, graph: &Csr) -> LoopState<P> {
    let n = graph.num_vertices();
    LoopState {
        superstep: 0,
        values: (0..n)
            .map(|i| program.init(VertexId(i as u64), graph))
            .collect(),
        inbox: InboxRepr::PerVertex((0..n).map(|_| Vec::new()).collect()),
        aggregates: Aggregates::new(program.aggregators()),
        metrics: RunMetrics::default(),
    }
}

/// The aggregate/sender block size for a graph with `n` vertices: a pure
/// function of the graph (never the thread count), so per-block aggregate
/// folds are identical at every parallelism level. ~128 blocks keeps the
/// barrier merge negligible while bounding partial-flush overhead.
/// The chunk-boundary alignment quantum the flat plane requires for a
/// graph of `n` vertices: chunk tables passed via
/// [`EngineConfig::chunk_hint`] must align interior boundaries to this
/// (pass it as the `align` argument of `ChunkTable::degree_weighted` /
/// `ChunkTable::rebalance`), or the hint is ignored.
pub fn chunk_align(n: usize) -> usize {
    sender_block_size(n)
}

fn sender_block_size(n: usize) -> usize {
    (n / 128).max(16)
}

/// Split `values` into per-chunk mutable slices matching `table`.
fn split_by_table<'a, T>(values: &'a mut [T], table: &ChunkTable) -> Vec<&'a mut [T]> {
    let mut rest = values;
    let mut out = Vec::with_capacity(table.num_chunks());
    for c in 0..table.num_chunks() {
        let (s, e) = table.bounds(c);
        let (head, tail) = rest.split_at_mut(e - s);
        out.push(head);
        rest = tail;
    }
    debug_assert!(rest.is_empty());
    out
}

/// Take `k` buffers from `pool` (reusing retained capacity), topping up
/// with fresh empty ones.
fn take_bufs<T>(pool: &mut Vec<Vec<T>>, k: usize) -> Vec<Vec<T>> {
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        out.push(pool.pop().unwrap_or_default());
    }
    out
}

/// Feed one finished superstep's counters into the global obs registry
/// and emit the per-superstep debug trace event. Called once per
/// superstep (never per message), so the cost is a dozen relaxed
/// sharded adds plus one filter check.
fn record_superstep_obs(m: &SuperstepMetrics) {
    obs_handles::supersteps().inc();
    obs_handles::active_vertices().add(m.active_vertices as u64);
    obs_handles::messages_sent().add(m.messages_sent as u64);
    obs_handles::messages_delivered().add(m.messages_delivered as u64);
    obs_handles::message_bytes().add(m.message_bytes as u64);
    obs_handles::buffered_messages().add(m.buffered_messages as u64);
    obs_handles::phase_compute_ns().add(m.phases.compute.as_nanos() as u64);
    obs_handles::phase_combine_ns().add(m.phases.combine.as_nanos() as u64);
    obs_handles::phase_scatter_ns().add(m.phases.scatter.as_nanos() as u64);
    obs_handles::phase_barrier_ns().add(m.phases.barrier.as_nanos() as u64);
    trace::event(
        Level::Debug,
        "engine",
        "superstep",
        &[
            ("superstep", m.superstep.into()),
            ("active_vertices", m.active_vertices.into()),
            ("messages_sent", m.messages_sent.into()),
            ("messages_delivered", m.messages_delivered.into()),
            ("message_bytes", m.message_bytes.into()),
            ("buffered_messages", m.buffered_messages.into()),
            ("compute_ns", m.phases.compute.into()),
            ("combine_ns", m.phases.combine.into()),
            ("scatter_ns", m.phases.scatter.into()),
            ("barrier_ns", m.phases.barrier.into()),
            ("elapsed_ns", m.elapsed.into()),
        ],
    );
}

/// Attribute checkpoint snapshot I/O time to the superstep that just
/// completed (the barrier it was written at) instead of letting it
/// dissolve into the next superstep's wall clock.
fn record_checkpoint_time(metrics: &mut RunMetrics, superstep: u32, took: Duration) {
    if let Some(last) = metrics.supersteps.last_mut() {
        last.checkpoint += took;
    }
    obs_handles::checkpoint_writes().inc();
    obs_handles::checkpoint_write_ns().add(took.as_nanos() as u64);
    trace::event(
        Level::Info,
        "engine::checkpoint",
        "snapshot_written",
        &[("superstep", superstep.into()), ("dur_ns", took.into())],
    );
}

/// What happens at a barrier the run continues past. Returns `true`
/// when a checkpoint snapshot was actually written, so the driver can
/// attribute the I/O time to the right superstep's metrics.
trait BarrierSink<P: VertexProgram> {
    fn on_barrier(&mut self, state: &LoopState<P>) -> Result<bool, EngineError>;
}

/// No-op sink for plain `run`.
struct NoSink;

impl<P: VertexProgram> BarrierSink<P> for NoSink {
    fn on_barrier(&mut self, _state: &LoopState<P>) -> Result<bool, EngineError> {
        Ok(false)
    }
}

/// Snapshot-writing sink honouring the checkpoint interval and any
/// scripted checkpoint corruption.
struct DirSink<'a> {
    cfg: &'a CheckpointConfig,
    fault: Option<&'a FaultPlan>,
}

impl<P> BarrierSink<P> for DirSink<'_>
where
    P: VertexProgram,
    P::V: Snapshot,
    P::M: Snapshot,
{
    fn on_barrier(&mut self, state: &LoopState<P>) -> Result<bool, EngineError> {
        if state.superstep.is_multiple_of(self.cfg.interval()) {
            write_state_snapshot(self.cfg, self.fault, state)?;
            return Ok(true);
        }
        Ok(false)
    }
}

/// Encode the inbox exactly as `Vec<Vec<Envelope<M>>>::write_snap` would,
/// from either layout: outer vertex count, then per vertex a length
/// prefix and its envelopes. Keeps snapshot files plane-agnostic.
fn write_inbox_snap<M: Snapshot>(inbox: &InboxRepr<M>, out: &mut Vec<u8>) {
    match inbox {
        InboxRepr::PerVertex(v) => v.write_snap(out),
        InboxRepr::Flat(chunks) => {
            let n: usize = chunks.iter().map(|c| c.vertex_count()).sum();
            n.write_snap(out);
            for chunk in chunks {
                for i in 0..chunk.vertex_count() {
                    let msgs = chunk.msgs(i);
                    msgs.len().write_snap(out);
                    for e in msgs {
                        e.write_snap(out);
                    }
                }
            }
        }
    }
}

/// Serialize `state` into a checkpoint file (field-by-field, matching
/// [`EngineCheckpoint`]'s layout, without cloning the state), then apply
/// any scripted corruption to the file that just landed.
fn write_state_snapshot<P>(
    cfg: &CheckpointConfig,
    fault: Option<&FaultPlan>,
    state: &LoopState<P>,
) -> Result<(), EngineError>
where
    P: VertexProgram,
    P::V: Snapshot,
    P::M: Snapshot,
{
    let mut payload = Vec::new();
    state.superstep.write_snap(&mut payload);
    state.values.write_snap(&mut payload);
    write_inbox_snap(&state.inbox, &mut payload);
    state.aggregates.write_snap(&mut payload);
    state.metrics.write_snap(&mut payload);

    std::fs::create_dir_all(&cfg.dir).map_err(|e| EngineError::Io {
        path: cfg.dir.clone(),
        source: e,
    })?;
    let path = checkpoint_path(&cfg.dir, state.superstep);
    crate::checkpoint::write_versioned_durable(&path, &payload, cfg.fsync)?;

    if let Some(f) = fault {
        if f.take_corruption(state.superstep) {
            obs_handles::faults_injected().inc();
            trace::event(
                Level::Warn,
                "engine::fault",
                "snapshot_corrupted",
                &[("superstep", state.superstep.into())],
            );
            corrupt_snapshot_file(&path)?;
        }
        if f.take_truncation(state.superstep) {
            obs_handles::faults_injected().inc();
            trace::event(
                Level::Warn,
                "engine::fault",
                "snapshot_truncated",
                &[("superstep", state.superstep.into())],
            );
            truncate_snapshot_file(&path)?;
        }
    }
    Ok(())
}

/// Flip a payload byte so the file's CRC no longer matches (the
/// `FaultPlan::corrupt_checkpoint` effect).
fn corrupt_snapshot_file(path: &std::path::Path) -> Result<(), EngineError> {
    let io = |e| EngineError::Io {
        path: path.to_path_buf(),
        source: e,
    };
    let mut bytes = std::fs::read(path).map_err(io)?;
    // Offset 16 is the first payload byte (after magic+version+len).
    if let Some(b) = bytes.get_mut(16) {
        *b ^= 0xA5;
    }
    std::fs::write(path, &bytes).map_err(io)
}

/// Cut the file in half, simulating a torn write that died mid-stream
/// (the `FaultPlan::truncate_checkpoint` effect).
fn truncate_snapshot_file(path: &std::path::Path) -> Result<(), EngineError> {
    let io = |e| EngineError::Io {
        path: path.to_path_buf(),
        source: e,
    };
    let bytes = std::fs::read(path).map_err(io)?;
    std::fs::write(path, &bytes[..bytes.len() / 2]).map_err(io)
}

struct WorkerOutput<M> {
    /// Outboxes indexed by destination chunk.
    outboxes: OutboxSet<M>,
    aggregates: Aggregates,
    active: usize,
}

/// Execute one superstep for a contiguous chunk of vertices (naive plane).
#[allow(clippy::too_many_arguments)]
fn run_chunk<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    superstep: u32,
    always_active: bool,
    base: usize,
    values: &mut [P::V],
    inboxes: &mut [Vec<Envelope<P::M>>],
    global_aggs: &Aggregates,
    num_chunks: usize,
    chunk_size: usize,
) -> WorkerOutput<P::M> {
    let mut ctx = EngineContext {
        superstep,
        vertex: VertexId(0),
        graph,
        outboxes: (0..num_chunks).map(|_| Vec::new()).collect(),
        local_aggs: global_aggs.fresh_local(),
        global_aggs,
        chunk_size,
        num_vertices: graph.num_vertices(),
    };
    let mut active = 0usize;
    for (offset, value) in values.iter_mut().enumerate() {
        let v = VertexId((base + offset) as u64);
        let msgs = std::mem::take(&mut inboxes[offset]);
        if superstep == 0 || always_active || !msgs.is_empty() {
            active += 1;
            ctx.vertex = v;
            program.compute(&mut ctx, value, &msgs);
        }
    }
    WorkerOutput {
        outboxes: ctx.outboxes,
        aggregates: ctx.local_aggs,
        active,
    }
}

/// One flat-plane worker's superstep output.
struct FlatWorkerOutput<M> {
    /// Outboxes indexed by destination chunk (post sender-combining).
    outboxes: OutboxSet<M>,
    /// Aggregate partials, one per sender block the chunk covers, in
    /// block order.
    agg_blocks: Vec<Aggregates>,
    /// The sender-combining index, returned for pool recycling.
    dedup: DedupTable,
    active: usize,
    /// Sends folded into an existing outbox slot at the sender. A
    /// chunk-layout-dependent (hence non-deterministic) efficiency
    /// signal for the sender-combining fast paths.
    combine_hits: u64,
}

/// Execute one superstep for a contiguous chunk of vertices (flat plane).
///
/// The inbox is read immutably (the flat plane double-buffers inbox sets
/// instead of `mem::take`-ing per-vertex vectors) and aggregate
/// contributions are flushed per sender block so the barrier can merge
/// them in a thread-count-independent order.
#[allow(clippy::too_many_arguments)]
fn run_chunk_flat<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    superstep: u32,
    always_active: bool,
    bounds: (usize, usize),
    values: &mut [P::V],
    inbox: &ChunkInbox<P::M>,
    global_aggs: &Aggregates,
    table: &ChunkTable,
    sender_combiner: Option<&dyn Combiner<P::M>>,
    block: usize,
    outboxes: OutboxSet<P::M>,
    mut dedup: DedupTable,
) -> FlatWorkerOutput<P::M> {
    let (start, end) = bounds;
    debug_assert_eq!(values.len(), end - start);
    debug_assert_eq!(inbox.vertex_count(), end - start);
    dedup.begin(graph.num_vertices());
    let mut ctx = FlatContext {
        superstep,
        vertex: VertexId(0),
        graph,
        table,
        outboxes,
        sender_combiner,
        dedup,
        last: None,
        combine_hits: 0,
        local_aggs: global_aggs.fresh_local(),
        global_aggs,
        num_vertices: graph.num_vertices(),
    };
    let mut agg_blocks = Vec::new();
    let mut active = 0usize;
    for (offset, value) in values.iter_mut().enumerate() {
        let gv = start + offset;
        let msgs = inbox.msgs(offset);
        if superstep == 0 || always_active || !msgs.is_empty() {
            active += 1;
            ctx.vertex = VertexId(gv as u64);
            program.compute(&mut ctx, value, msgs);
        }
        // Flush aggregate partials at block boundaries (chunk bounds are
        // block-aligned except the final `n`, so globally the flush
        // points are the same at every thread count).
        if (gv + 1) % block == 0 || gv + 1 == end {
            agg_blocks.push(std::mem::replace(
                &mut ctx.local_aggs,
                global_aggs.fresh_local(),
            ));
        }
    }
    FlatWorkerOutput {
        outboxes: ctx.outboxes,
        agg_blocks,
        dedup: ctx.dedup,
        active,
        combine_hits: ctx.combine_hits,
    }
}

/// Message-plane counters for one destination chunk's delivery.
///
/// `delivered` is counted from the destination side (the inbox length
/// after scatter) while `sent` is accumulated from the routing side, so
/// the per-superstep conservation law `sent == delivered` is an actual
/// cross-check of the scatter rather than one number copied twice.
#[derive(Clone, Copy, Default)]
struct DeliverCounts {
    sent: usize,
    bytes: usize,
    buffered: usize,
    buffered_bytes: usize,
    delivered: usize,
}

impl DeliverCounts {
    fn merge(mut self, other: DeliverCounts) -> DeliverCounts {
        self.sent += other.sent;
        self.bytes += other.bytes;
        self.buffered += other.buffered;
        self.buffered_bytes += other.buffered_bytes;
        self.delivered += other.delivered;
        self
    }
}

/// Scatter every producer's buffered envelopes for one destination chunk
/// into its flat inbox, by move. Returns the chunk's [`DeliverCounts`].
///
/// Pass 1 counts arrivals per destination and runs all user code
/// (`message_bytes`) while `inbox.data` is in a safe empty state; pass 2
/// is pure moves into reserved capacity, so a panic can never expose
/// uninitialized data (a panicking user combiner leaks the spare
/// capacity's envelopes, which is safe).
fn deliver_chunk_flat<P: VertexProgram>(
    program: &P,
    combiner: Option<&dyn Combiner<P::M>>,
    inbox: &mut ChunkInbox<P::M>,
    producers: &mut [OutboxBuf<P::M>],
    cursors: &mut Vec<usize>,
) -> DeliverCounts {
    let base = inbox.base;
    let len = inbox.vertex_count();
    cursors.clear();
    cursors.resize(len, 0);

    // Pass 1: arrival counts + buffered accounting. What sits in the
    // producer buffers is exactly what the message plane materialized
    // (post sender-combining), which is what the buffered_* metrics
    // measure. This also drops the previous tenants of `inbox.data`
    // (the set read two supersteps ago), in parallel across chunks.
    inbox.data.clear();
    let mut buffered = 0usize;
    let mut buffered_bytes = 0usize;
    for buf in producers.iter() {
        for (to, env) in buf.iter() {
            debug_assert!(
                to.index() >= base && to.index() - base < len,
                "envelope for {to} mis-routed to chunk [{base}, {})",
                base + len
            );
            cursors[to.index() - base] += 1;
            buffered += 1;
            buffered_bytes += program.message_bytes(&env.msg);
        }
    }

    match combiner {
        None => {
            // Counting scatter: starts = exclusive prefix sums, cursors
            // double as per-destination write positions.
            let mut total = 0usize;
            inbox.starts[0] = 0;
            for (i, c) in cursors.iter_mut().enumerate() {
                let arrivals = *c;
                *c = total;
                total += arrivals;
                inbox.starts[i + 1] = total;
            }
            inbox.data.reserve(total);
            {
                let slots = inbox.data.spare_capacity_mut();
                // Pass 2: pure moves — no user code can panic here.
                for buf in producers.iter_mut() {
                    for (to, env) in buf.drain(..) {
                        let local = to.index() - base;
                        let pos = cursors[local];
                        cursors[local] += 1;
                        slots[pos].write(env);
                    }
                }
            }
            // SAFETY: destination i's cursor swept exactly
            // `starts[i]..starts[i + 1]`; those ranges partition
            // `0..total` and each of the `total` arrivals wrote one
            // distinct slot, so all elements below `total` are
            // initialized exactly once.
            unsafe { inbox.data.set_len(total) };
            // Without combining, stored == buffered.
            DeliverCounts {
                sent: total,
                bytes: buffered_bytes,
                buffered,
                buffered_bytes,
                delivered: inbox.data.len(),
            }
        }
        Some(c) => {
            // Delivery-side combining: one slot per destination with at
            // least one arrival, folded in global sender order (exactly
            // the fold an uncombined inbox would hand the vertex).
            let mut total = 0usize;
            inbox.starts[0] = 0;
            for (i, cur) in cursors.iter_mut().enumerate() {
                total += (*cur > 0) as usize;
                // Reuse the cursor as a "slot initialized" flag.
                *cur = 0;
                inbox.starts[i + 1] = total;
            }
            inbox.data.reserve(total);
            {
                let slots = inbox.data.spare_capacity_mut();
                for buf in producers.iter_mut() {
                    for (to, env) in buf.drain(..) {
                        let local = to.index() - base;
                        let pos = inbox.starts[local];
                        if cursors[local] == 0 {
                            slots[pos].write(env);
                            cursors[local] = 1;
                        } else {
                            // SAFETY: this destination's first arrival
                            // initialized slot `pos` and set the flag.
                            let acc = unsafe { slots[pos].assume_init_mut() };
                            c.combine(&mut acc.msg, &env.msg);
                            acc.src = Envelope::<P::M>::COMBINED;
                        }
                    }
                }
            }
            // SAFETY: `total` counts exactly the destinations with
            // arrivals; each owns the distinct slot `starts[local]` and
            // was initialized by its first arrival.
            unsafe { inbox.data.set_len(total) };
            // Post-combine accounting: the metric counts stored messages
            // at their final (combined) size.
            let bytes: usize = inbox
                .data
                .iter()
                .map(|e| program.message_bytes(&e.msg))
                .sum();
            DeliverCounts {
                sent: total,
                bytes,
                buffered,
                buffered_bytes,
                delivered: inbox.data.len(),
            }
        }
    }
}

/// The engine's own [`Context`] implementation (naive plane).
struct EngineContext<'a, M> {
    superstep: u32,
    vertex: VertexId,
    graph: &'a Csr,
    /// Per-destination-chunk message buffers.
    outboxes: OutboxSet<M>,
    local_aggs: Aggregates,
    global_aggs: &'a Aggregates,
    chunk_size: usize,
    num_vertices: usize,
}

impl<M> Context<M> for EngineContext<'_, M> {
    fn superstep(&self) -> u32 {
        self.superstep
    }

    fn vertex(&self) -> VertexId {
        self.vertex
    }

    fn graph(&self) -> &Csr {
        self.graph
    }

    fn send(&mut self, to: VertexId, msg: M) {
        assert!(
            to.index() < self.num_vertices,
            "message sent to nonexistent vertex {to} (graph has {} vertices)",
            self.num_vertices
        );
        // In-range destinations always land in a real chunk:
        // `to.index() < n <= num_chunks * chunk_size`, so the quotient is
        // below `num_chunks`. (The old `.min(len - 1)` clamp here could
        // only ever have masked a routing bug silently.)
        let chunk = to.index() / self.chunk_size;
        debug_assert!(
            chunk < self.outboxes.len(),
            "destination {to} routed past the last chunk ({} chunks)",
            self.outboxes.len()
        );
        self.outboxes[chunk].push((to, Envelope::new(self.vertex, msg)));
    }

    fn aggregate(&mut self, name: &str, value: AggValue) {
        self.local_aggs.contribute(name, value);
    }

    fn prev_aggregate(&self, name: &str) -> Option<AggValue> {
        self.global_aggs.previous(name)
    }
}

/// The flat plane's [`Context`] implementation.
///
/// Routing uses the chunk table's boundary search (each destination maps
/// into exactly one chunk, debug-asserted there). When an exact sender
/// combiner is installed, sends to a destination this worker already
/// buffered for are folded in place instead of appended: a last-send
/// fast path handles repeated sends to the same destination without a
/// table probe, and the dense dedup table catches the rest.
struct FlatContext<'a, M> {
    superstep: u32,
    vertex: VertexId,
    graph: &'a Csr,
    table: &'a ChunkTable,
    /// Per-destination-chunk message buffers (recycled).
    outboxes: OutboxSet<M>,
    /// Exact combiner to fold at the sender, if any.
    sender_combiner: Option<&'a dyn Combiner<M>>,
    /// destination id → (chunk, index) of its buffered accumulator.
    dedup: DedupTable,
    /// Last destination written: (id, chunk, index).
    last: Option<(u64, usize, usize)>,
    /// Sends folded at the sender instead of appended.
    combine_hits: u64,
    local_aggs: Aggregates,
    global_aggs: &'a Aggregates,
    num_vertices: usize,
}

impl<M> Context<M> for FlatContext<'_, M> {
    fn superstep(&self) -> u32 {
        self.superstep
    }

    fn vertex(&self) -> VertexId {
        self.vertex
    }

    fn graph(&self) -> &Csr {
        self.graph
    }

    fn send(&mut self, to: VertexId, msg: M) {
        assert!(
            to.index() < self.num_vertices,
            "message sent to nonexistent vertex {to} (graph has {} vertices)",
            self.num_vertices
        );
        if let Some(c) = self.sender_combiner {
            if let Some((last_id, lc, li)) = self.last {
                if last_id == to.0 {
                    let acc = &mut self.outboxes[lc][li].1;
                    c.combine(&mut acc.msg, &msg);
                    acc.src = Envelope::<M>::COMBINED;
                    self.combine_hits += 1;
                    return;
                }
            }
            if let Some((dc, di)) = self.dedup.get(to.index()) {
                let acc = &mut self.outboxes[dc][di].1;
                c.combine(&mut acc.msg, &msg);
                acc.src = Envelope::<M>::COMBINED;
                self.last = Some((to.0, dc, di));
                self.combine_hits += 1;
                return;
            }
            let chunk = self.table.chunk_of(to.index());
            let idx = self.outboxes[chunk].len();
            self.outboxes[chunk].push((to, Envelope::new(self.vertex, msg)));
            self.dedup.insert(to.index(), chunk, idx);
            self.last = Some((to.0, chunk, idx));
        } else {
            let chunk = self.table.chunk_of(to.index());
            self.outboxes[chunk].push((to, Envelope::new(self.vertex, msg)));
        }
    }

    fn aggregate(&mut self, name: &str, value: AggValue) {
        self.local_aggs.contribute(name, value);
    }

    fn prev_aggregate(&self, name: &str) -> Option<AggValue> {
        self.global_aggs.previous(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggOp;
    use crate::message::Combiner;
    use ariadne_graph::generators::regular::{cycle, path, star};
    use ariadne_graph::GraphBuilder;

    /// Flood the minimum id through the graph (WCC on the out-direction).
    struct MinFlood;
    impl VertexProgram for MinFlood {
        type V = u64;
        type M = u64;
        fn init(&self, v: VertexId, _: &Csr) -> u64 {
            v.0
        }
        fn compute(&self, ctx: &mut dyn Context<u64>, value: &mut u64, msgs: &[Envelope<u64>]) {
            let best = msgs.iter().map(|e| e.msg).min().unwrap_or(*value);
            if ctx.superstep() == 0 {
                ctx.send_to_out_neighbors(*value);
            } else if best < *value {
                *value = best;
                ctx.send_to_out_neighbors(best);
            }
        }
    }

    #[test]
    fn min_flood_on_cycle() {
        let g = cycle(6);
        let r = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        assert!(r.values.iter().all(|&v| v == 0));
        // Needs ~n supersteps to propagate all the way around.
        assert!(r.supersteps() >= 5, "supersteps = {}", r.supersteps());
    }

    #[test]
    fn terminates_when_no_messages() {
        let g = path(3);
        let r = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        // Path 0->1->2: converged quickly; run ends on message silence.
        assert_eq!(r.values, vec![0, 0, 0]);
        assert!(r.supersteps() <= 4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = ariadne_graph::generators::rmat(ariadne_graph::generators::RmatConfig {
            scale: 9,
            edge_factor: 4,
            ..Default::default()
        });
        let seq = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        let par = Engine::new(EngineConfig::parallel(4)).run(&MinFlood, &g);
        assert_eq!(seq.values, par.values);
        assert_eq!(seq.supersteps(), par.supersteps());
    }

    #[test]
    fn naive_plane_matches_flat() {
        let g = ariadne_graph::generators::rmat(ariadne_graph::generators::RmatConfig {
            scale: 8,
            edge_factor: 4,
            ..Default::default()
        });
        for threads in [1usize, 4] {
            let flat = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            })
            .run(&MinFlood, &g);
            let naive = Engine::new(EngineConfig {
                threads,
                plane: MessagePlane::Naive,
                ..EngineConfig::default()
            })
            .run(&MinFlood, &g);
            assert_eq!(flat.values, naive.values);
            assert_eq!(flat.supersteps(), naive.supersteps());
            // MinFlood has no combiner, so even the buffered accounting
            // must agree between the planes.
            for (a, b) in flat.metrics.supersteps.iter().zip(&naive.metrics.supersteps) {
                assert_eq!(
                    (
                        a.active_vertices,
                        a.messages_sent,
                        a.message_bytes,
                        a.buffered_messages,
                        a.buffered_bytes
                    ),
                    (
                        b.active_vertices,
                        b.messages_sent,
                        b.message_bytes,
                        b.buffered_messages,
                        b.buffered_bytes
                    ),
                    "superstep {} diverged ({threads} threads)",
                    a.superstep
                );
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_metrics() {
        let g = ariadne_graph::generators::rmat(ariadne_graph::generators::RmatConfig {
            scale: 8,
            edge_factor: 4,
            ..Default::default()
        });
        let base = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        for threads in [2usize, 3, 7] {
            let r = Engine::new(EngineConfig::parallel(threads)).run(&MinFlood, &g);
            assert_eq!(r.values, base.values, "{threads} threads");
            assert_eq!(r.supersteps(), base.supersteps(), "{threads} threads");
            for (a, b) in r.metrics.supersteps.iter().zip(&base.metrics.supersteps) {
                assert_eq!(
                    (a.active_vertices, a.messages_sent, a.message_bytes),
                    (b.active_vertices, b.messages_sent, b.message_bytes),
                    "superstep {} diverged at {threads} threads",
                    a.superstep
                );
            }
        }
    }

    /// Counts supersteps via always_active + max cap.
    struct StepCounter;
    impl VertexProgram for StepCounter {
        type V = u32;
        type M = ();
        fn init(&self, _: VertexId, _: &Csr) -> u32 {
            0
        }
        fn compute(&self, _: &mut dyn Context<()>, value: &mut u32, _: &[Envelope<()>]) {
            *value += 1;
        }
        fn always_active(&self) -> bool {
            true
        }
        fn max_supersteps(&self) -> u32 {
            5
        }
    }

    #[test]
    fn always_active_runs_to_cap() {
        let g = path(2);
        let r = Engine::new(EngineConfig::sequential()).run(&StepCounter, &g);
        assert_eq!(r.supersteps(), 5);
        assert_eq!(r.values, vec![5, 5]);
    }

    #[test]
    fn engine_config_cap_overrides_program() {
        let g = path(2);
        let mut cfg = EngineConfig::sequential();
        cfg.max_supersteps = 3;
        let r = Engine::new(cfg).run(&StepCounter, &g);
        assert_eq!(r.supersteps(), 3);
    }

    /// Uses an aggregator to stop once the sum of values stabilizes.
    struct AggHalt;
    impl VertexProgram for AggHalt {
        type V = f64;
        type M = ();
        fn init(&self, _: VertexId, _: &Csr) -> f64 {
            1.0
        }
        fn compute(&self, ctx: &mut dyn Context<()>, value: &mut f64, _: &[Envelope<()>]) {
            *value *= 0.5;
            ctx.aggregate("total", AggValue::F64(*value));
        }
        fn always_active(&self) -> bool {
            true
        }
        fn aggregators(&self) -> Vec<(String, AggOp)> {
            vec![("total".into(), AggOp::Sum)]
        }
        fn should_halt(&self, _s: u32, aggs: &Aggregates) -> bool {
            aggs.current("total").map(|v| v.as_f64()).unwrap_or(1.0) < 0.1
        }
    }

    #[test]
    fn aggregator_halt() {
        let g = path(2);
        let r = Engine::new(EngineConfig::sequential()).run(&AggHalt, &g);
        // total = 2 * 0.5^s < 0.1 => s = 5.
        assert_eq!(r.supersteps(), 5);
        assert!(r.aggregates.previous("total").unwrap().as_f64() < 0.1);
    }

    #[test]
    fn float_aggregates_bit_identical_across_threads() {
        // f64 sums are grouping-sensitive; the flat plane's per-block
        // partial merge must make them thread-invariant anyway.
        let g = ariadne_graph::generators::rmat(ariadne_graph::generators::RmatConfig {
            scale: 8,
            edge_factor: 4,
            ..Default::default()
        });
        let base = Engine::new(EngineConfig::sequential()).run(&AggHalt, &g);
        for threads in [2usize, 3, 7] {
            let r = Engine::new(EngineConfig::parallel(threads)).run(&AggHalt, &g);
            assert_eq!(r.aggregates, base.aggregates, "{threads} threads");
            assert_eq!(r.supersteps(), base.supersteps(), "{threads} threads");
            assert_eq!(
                r.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                base.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    /// Echoes received messages back; sends its own id at step 0.
    struct SourceTracker;
    impl VertexProgram for SourceTracker {
        type V = Vec<u64>;
        type M = u64;
        fn init(&self, _: VertexId, _: &Csr) -> Vec<u64> {
            Vec::new()
        }
        fn compute(
            &self,
            ctx: &mut dyn Context<u64>,
            value: &mut Vec<u64>,
            msgs: &[Envelope<u64>],
        ) {
            for e in msgs {
                value.push(e.src.0);
            }
            if ctx.superstep() == 0 {
                ctx.send_to_out_neighbors(ctx.vertex().0);
            }
        }
    }

    #[test]
    fn envelopes_carry_sources() {
        let g = star(4);
        let r = Engine::new(EngineConfig::sequential()).run(&SourceTracker, &g);
        for leaf in 1..4 {
            assert_eq!(r.values[leaf], vec![0]);
        }
    }

    /// Sends to a vertex by id that is not a neighbour (Query 4 scenario).
    struct ByIdSender;
    impl VertexProgram for ByIdSender {
        type V = u64;
        type M = u64;
        fn init(&self, _: VertexId, _: &Csr) -> u64 {
            0
        }
        fn compute(&self, ctx: &mut dyn Context<u64>, value: &mut u64, msgs: &[Envelope<u64>]) {
            *value += msgs.len() as u64;
            if ctx.superstep() == 0 && ctx.vertex() == VertexId(0) {
                ctx.send(VertexId(2), 99); // 0 -> 2 is not an edge below
            }
        }
    }

    #[test]
    fn send_by_id_to_non_neighbor_delivers() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.ensure_vertex(VertexId(2));
        let g = b.build();
        let r = Engine::new(EngineConfig::sequential()).run(&ByIdSender, &g);
        assert_eq!(r.values[2], 1);
    }

    #[test]
    #[should_panic(expected = "nonexistent vertex")]
    fn send_out_of_range_panics() {
        struct Bad;
        impl VertexProgram for Bad {
            type V = ();
            type M = ();
            fn init(&self, _: VertexId, _: &Csr) {}
            fn compute(&self, ctx: &mut dyn Context<()>, _: &mut (), _: &[Envelope<()>]) {
                ctx.send(VertexId(999), ());
            }
        }
        let g = path(2);
        let _ = Engine::new(EngineConfig::sequential()).run(&Bad, &g);
    }

    #[test]
    #[should_panic(expected = "nonexistent vertex")]
    fn send_out_of_range_panics_naive() {
        struct Bad;
        impl VertexProgram for Bad {
            type V = ();
            type M = ();
            fn init(&self, _: VertexId, _: &Csr) {}
            fn compute(&self, ctx: &mut dyn Context<()>, _: &mut (), _: &[Envelope<()>]) {
                ctx.send(VertexId(999), ());
            }
        }
        let g = path(2);
        let _ = Engine::new(EngineConfig {
            plane: MessagePlane::Naive,
            ..EngineConfig::sequential()
        })
        .run(&Bad, &g);
    }

    /// Min-combined flood: same fixpoint, fewer stored messages.
    struct CombinedFlood;
    impl VertexProgram for CombinedFlood {
        type V = u64;
        type M = u64;
        fn init(&self, v: VertexId, _: &Csr) -> u64 {
            v.0
        }
        fn compute(&self, ctx: &mut dyn Context<u64>, value: &mut u64, msgs: &[Envelope<u64>]) {
            let best = msgs.iter().map(|e| e.msg).min().unwrap_or(*value);
            if ctx.superstep() == 0 {
                ctx.send_to_out_neighbors(*value);
            } else if best < *value {
                *value = best;
                ctx.send_to_out_neighbors(best);
            }
        }
        fn combiner(&self) -> Option<Box<dyn Combiner<u64>>> {
            Some(Box::new(crate::message::MinCombiner))
        }
    }

    #[test]
    fn combiner_reduces_traffic_same_result() {
        // Two vertices both pointing at vertex 2.
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(2), 1.0);
        b.add_edge(VertexId(1), VertexId(2), 1.0);
        let g = b.build();

        let with = Engine::new(EngineConfig::default()).run(&CombinedFlood, &g);
        let cfg = EngineConfig {
            use_combiner: false,
            ..EngineConfig::default()
        };
        let without = Engine::new(cfg).run(&CombinedFlood, &g);
        assert_eq!(with.values, without.values);
        assert!(with.metrics.total_messages() < without.metrics.total_messages());
    }

    #[test]
    fn sender_side_combining_reduces_buffering() {
        // Two same-chunk senders, one destination. The flat plane's
        // exact Min combiner merges at the sender (1 buffered envelope);
        // the naive plane buffers both and merges only at delivery.
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(2), 1.0);
        b.add_edge(VertexId(1), VertexId(2), 1.0);
        let g = b.build();

        let flat = Engine::new(EngineConfig::default()).run(&CombinedFlood, &g);
        let naive = Engine::new(EngineConfig {
            plane: MessagePlane::Naive,
            ..EngineConfig::default()
        })
        .run(&CombinedFlood, &g);
        assert_eq!(flat.values, naive.values);
        assert_eq!(flat.metrics.total_messages(), naive.metrics.total_messages());
        assert!(
            flat.metrics.total_buffered_messages() < naive.metrics.total_buffered_messages(),
            "flat buffered {} should undercut naive {}",
            flat.metrics.total_buffered_messages(),
            naive.metrics.total_buffered_messages()
        );
    }

    #[test]
    fn exact_combiner_is_thread_invariant() {
        let g = ariadne_graph::generators::rmat(ariadne_graph::generators::RmatConfig {
            scale: 8,
            edge_factor: 4,
            ..Default::default()
        });
        let base = Engine::new(EngineConfig::sequential()).run(&CombinedFlood, &g);
        for threads in [2usize, 5] {
            let r = Engine::new(EngineConfig::parallel(threads)).run(&CombinedFlood, &g);
            assert_eq!(r.values, base.values, "{threads} threads");
            assert_eq!(r.supersteps(), base.supersteps(), "{threads} threads");
            // Post-combining stored-message counts are thread-invariant
            // (one per reached destination); buffered_* are not, because
            // sender-side partials depend on the chunk layout.
            for (a, b) in r.metrics.supersteps.iter().zip(&base.metrics.supersteps) {
                assert_eq!(
                    (a.active_vertices, a.messages_sent, a.message_bytes),
                    (b.active_vertices, b.messages_sent, b.message_bytes),
                    "superstep {} diverged at {threads} threads",
                    a.superstep
                );
            }
        }
    }

    /// Concatenating combiner whose accumulator *grows*, to pin down the
    /// byte accounting: metrics must reflect post-combine sizes.
    struct ConcatCombiner;
    impl Combiner<Vec<u64>> for ConcatCombiner {
        fn combine(&self, acc: &mut Vec<u64>, incoming: &Vec<u64>) {
            acc.extend_from_slice(incoming);
        }
    }

    struct ConcatProgram;
    impl VertexProgram for ConcatProgram {
        type V = usize;
        type M = Vec<u64>;
        fn init(&self, _: VertexId, _: &Csr) -> usize {
            0
        }
        fn compute(
            &self,
            ctx: &mut dyn Context<Vec<u64>>,
            value: &mut usize,
            msgs: &[Envelope<Vec<u64>>],
        ) {
            *value += msgs.iter().map(|e| e.msg.len()).sum::<usize>();
            if ctx.superstep() == 0 {
                ctx.send_to_out_neighbors(vec![ctx.vertex().0]);
            }
        }
        fn combiner(&self) -> Option<Box<dyn Combiner<Vec<u64>>>> {
            Some(Box::new(ConcatCombiner))
        }
        fn message_bytes(&self, msg: &Vec<u64>) -> usize {
            8 * msg.len()
        }
    }

    #[test]
    fn combiner_bytes_count_post_combine() {
        // 0 and 1 each send an 8-byte message to 2; the combined
        // accumulator holds both ids (16 bytes). The old accounting
        // subtracted the incoming size from the running total and
        // reported 8.
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(2), 1.0);
        b.add_edge(VertexId(1), VertexId(2), 1.0);
        let g = b.build();

        for plane in [MessagePlane::Flat, MessagePlane::Naive] {
            let r = Engine::new(EngineConfig {
                plane,
                ..EngineConfig::default()
            })
            .run(&ConcatProgram, &g);
            let s0 = &r.metrics.supersteps[0];
            assert_eq!(s0.messages_sent, 1, "{plane:?}: one stored message");
            assert_eq!(s0.message_bytes, 16, "{plane:?}: post-combine size");
            assert_eq!(s0.buffered_messages, 2, "{plane:?}: both envelopes buffered");
            assert_eq!(s0.buffered_bytes, 16, "{plane:?}");
            assert_eq!(r.values[2], 2, "{plane:?}: both ids arrived");
        }
    }

    #[test]
    fn empty_graph_returns_immediately() {
        let g = Csr::empty(0);
        let r = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        assert!(r.values.is_empty());
        assert_eq!(r.supersteps(), 0);
    }

    /// Each superstep, vertices read the previous superstep's reduction.
    struct AggReader;
    impl VertexProgram for AggReader {
        type V = Vec<Option<f64>>;
        type M = ();
        fn init(&self, _: VertexId, _: &Csr) -> Self::V {
            Vec::new()
        }
        fn compute(&self, ctx: &mut dyn Context<()>, value: &mut Self::V, _: &[Envelope<()>]) {
            value.push(ctx.prev_aggregate("count").map(|v| v.as_f64()));
            ctx.aggregate("count", AggValue::F64(1.0));
        }
        fn aggregators(&self) -> Vec<(String, AggOp)> {
            vec![("count".into(), AggOp::Sum)]
        }
        fn always_active(&self) -> bool {
            true
        }
        fn max_supersteps(&self) -> u32 {
            3
        }
    }

    #[test]
    fn prev_aggregate_visible_next_superstep() {
        let g = path(3);
        let r = Engine::new(EngineConfig::sequential()).run(&AggReader, &g);
        // Superstep 0 sees nothing; supersteps 1 and 2 see all three
        // contributions from the previous round.
        for v in &r.values {
            assert_eq!(v.as_slice(), &[None, Some(3.0), Some(3.0)]);
        }
    }

    #[test]
    fn crash_and_resume_is_bit_identical() {
        let g = cycle(8);
        let dir = std::env::temp_dir().join(format!("ariadne-engine-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let baseline = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);

        let plan = FaultPlan::new();
        plan.kill_at_superstep(3);
        let engine = Engine::new(EngineConfig {
            checkpoint: Some(CheckpointConfig::new(&dir, 2)),
            fault: Some(Arc::clone(&plan)),
            ..EngineConfig::sequential()
        });
        match engine.run_checkpointed(&MinFlood, &g) {
            Err(EngineError::InjectedCrash { superstep: 3 }) => {}
            other => panic!("expected injected crash at superstep 3, got {other:?}"),
        }

        let resumed = engine.resume(&MinFlood, &g).expect("resume");
        assert_eq!(resumed.values, baseline.values);
        assert_eq!(resumed.supersteps(), baseline.supersteps());
        assert_eq!(resumed.aggregates, baseline.aggregates);
        for (a, b) in resumed
            .metrics
            .supersteps
            .iter()
            .zip(&baseline.metrics.supersteps)
        {
            assert_eq!(
                (a.superstep, a.active_vertices, a.messages_sent, a.message_bytes),
                (b.superstep, b.active_vertices, b.messages_sent, b.message_bytes),
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_config_is_typed_error() {
        let g = path(2);
        let engine = Engine::new(EngineConfig::sequential());
        assert!(matches!(
            engine.resume(&MinFlood, &g),
            Err(EngineError::NotConfigured)
        ));
    }

    /// Regression: a snapshot whose value table matches the graph but
    /// whose inbox table is short (CRC-valid bytes, inconsistent
    /// cross-field state — hand-built or bit-rotted) used to panic with
    /// "inbox shorter than partition table" inside the flat plane's
    /// partition walk. Resume must reject it with a typed error on both
    /// planes instead.
    #[test]
    fn resume_from_inconsistent_inbox_is_typed_error() {
        let g = cycle(8);
        for plane in [MessagePlane::Flat, MessagePlane::Naive] {
            let ckpt: EngineCheckpoint<u64, u64> = EngineCheckpoint {
                superstep: 1,
                values: vec![0u64; g.num_vertices()],
                inbox: vec![Vec::new(); g.num_vertices() - 3],
                aggregates: Aggregates::new(Vec::new()),
                metrics: RunMetrics::default(),
            };
            let engine = Engine::new(EngineConfig {
                plane,
                ..EngineConfig::default()
            });
            match engine.resume_from(&MinFlood, &g, ckpt) {
                Err(EngineError::InboxMismatch {
                    snapshot_inboxes,
                    graph_vertices,
                }) => {
                    assert_eq!((snapshot_inboxes, graph_vertices), (5, 8), "{plane:?}");
                }
                other => panic!("{plane:?}: expected InboxMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn metrics_track_activity() {
        let g = path(4);
        let r = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        assert_eq!(r.metrics.supersteps[0].active_vertices, 4);
        assert!(r.metrics.supersteps[0].messages_sent > 0);
        assert!(r.metrics.total_message_bytes() > 0);
        assert!(r.metrics.total_buffered_messages() >= r.metrics.total_messages());
        assert!(r.metrics.peak_buffered_bytes() > 0);
    }
}
