//! The BSP superstep driver.
//!
//! Execution is deterministic even in parallel mode: vertices are split
//! into contiguous chunks, each worker emits messages in vertex order, and
//! inbox merging scans workers in a fixed order — so message delivery
//! order never depends on thread scheduling. Tests rely on this.

use crate::aggregate::{AggValue, Aggregates};
use crate::checkpoint::{
    checkpoint_path, load_latest_checkpoint, CheckpointConfig, EngineCheckpoint, EngineError,
    Snapshot,
};
use crate::context::Context;
use crate::fault::FaultPlan;
use crate::message::Envelope;
use crate::metrics::{RunMetrics, SuperstepMetrics};
use crate::program::VertexProgram;
use ariadne_graph::{Csr, VertexId};
use std::sync::Arc;
use std::time::Instant;

/// Engine-level run configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// Hard cap on supersteps regardless of the program's own cap.
    pub max_supersteps: u32,
    /// Whether to honour the program's message combiner. Ariadne turns
    /// this off when per-source message provenance must be preserved.
    pub use_combiner: bool,
    /// Barrier snapshotting; honoured by [`Engine::run_checkpointed`]
    /// and [`Engine::resume`] ([`Engine::run`] never touches disk).
    pub checkpoint: Option<CheckpointConfig>,
    /// Scripted fault injection; honoured by the fallible entry points
    /// only. `None` costs one branch per superstep.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            max_supersteps: 10_000,
            use_combiner: true,
            checkpoint: None,
            fault: None,
        }
    }
}

impl EngineConfig {
    /// Sequential single-threaded configuration (fully deterministic and
    /// the default for tests).
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel configuration with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        EngineConfig {
            threads: threads.max(1),
            ..Self::default()
        }
    }
}

/// The outcome of a run.
#[derive(Clone, Debug)]
pub struct RunResult<V> {
    /// Final vertex values, indexed by vertex id.
    pub values: Vec<V>,
    /// Per-superstep and total metrics.
    pub metrics: RunMetrics,
    /// Final aggregator state (previous = last superstep's reductions).
    pub aggregates: Aggregates,
}

impl<V> RunResult<V> {
    /// Number of supersteps the analytic executed.
    pub fn supersteps(&self) -> u32 {
        self.metrics.num_supersteps()
    }
}

/// The BSP engine. Stateless apart from its configuration; `run` may be
/// called any number of times.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Run `program` over `graph` to completion.
    ///
    /// This is the infallible hot path: it never touches disk and never
    /// consults the fault plan, regardless of configuration. Use
    /// [`Engine::run_checkpointed`] for fault-tolerant execution.
    pub fn run<P: VertexProgram>(&self, program: &P, graph: &Csr) -> RunResult<P::V> {
        let state = fresh_state(program, graph);
        match self.drive(program, graph, state, &mut NoSink, None) {
            Ok(result) => result,
            Err(e) => unreachable!("no sink and no faults: drive cannot fail ({e})"),
        }
    }

    /// Run `program` with barrier snapshotting per the engine's
    /// [`CheckpointConfig`], honouring any scripted [`FaultPlan`].
    ///
    /// A snapshot of the initial state (superstep 0) is written before
    /// the first superstep, then one every `every_n_supersteps`
    /// barriers, so [`Engine::resume`] always has a recovery point no
    /// matter where a crash lands. Without a checkpoint configuration
    /// this degrades to a fallible [`Engine::run`] that still honours
    /// kill faults.
    pub fn run_checkpointed<P>(
        &self,
        program: &P,
        graph: &Csr,
    ) -> Result<RunResult<P::V>, EngineError>
    where
        P: VertexProgram,
        P::V: Snapshot,
        P::M: Snapshot,
    {
        let state = fresh_state(program, graph);
        self.drive_checkpointed(program, graph, state, true)
    }

    /// Resume from the newest valid snapshot under the configured
    /// checkpoint directory and run to completion (continuing to write
    /// snapshots).
    ///
    /// Because the engine is deterministic, the returned [`RunResult`]
    /// is bit-identical (values, aggregates, superstep count and
    /// per-superstep counters) to what the uninterrupted run would have
    /// produced. Corrupt snapshot files are skipped in favour of older
    /// valid ones.
    pub fn resume<P>(&self, program: &P, graph: &Csr) -> Result<RunResult<P::V>, EngineError>
    where
        P: VertexProgram,
        P::V: Snapshot,
        P::M: Snapshot,
    {
        let cfg = self
            .config
            .checkpoint
            .as_ref()
            .ok_or(EngineError::NotConfigured)?;
        let ckpt = load_latest_checkpoint::<P::V, P::M>(&cfg.dir)?;
        self.resume_from(program, graph, ckpt)
    }

    /// Resume from an explicit, already-validated checkpoint.
    pub fn resume_from<P>(
        &self,
        program: &P,
        graph: &Csr,
        checkpoint: EngineCheckpoint<P::V, P::M>,
    ) -> Result<RunResult<P::V>, EngineError>
    where
        P: VertexProgram,
        P::V: Snapshot,
        P::M: Snapshot,
    {
        if checkpoint.values.len() != graph.num_vertices() {
            return Err(EngineError::GraphMismatch {
                snapshot_vertices: checkpoint.values.len(),
                graph_vertices: graph.num_vertices(),
            });
        }
        let state = LoopState {
            superstep: checkpoint.superstep,
            values: checkpoint.values,
            inbox: checkpoint.inbox,
            aggregates: checkpoint.aggregates,
            metrics: checkpoint.metrics,
        };
        self.drive_checkpointed(program, graph, state, false)
    }

    /// Shared fallible driver: installs the snapshot sink (when
    /// configured) and optionally writes the starting-state snapshot.
    fn drive_checkpointed<P>(
        &self,
        program: &P,
        graph: &Csr,
        state: LoopState<P>,
        write_initial: bool,
    ) -> Result<RunResult<P::V>, EngineError>
    where
        P: VertexProgram,
        P::V: Snapshot,
        P::M: Snapshot,
    {
        let fault = self.config.fault.as_deref();
        match self.config.checkpoint.as_ref() {
            Some(cfg) => {
                if write_initial {
                    write_state_snapshot(cfg, fault, &state)?;
                }
                let mut sink = DirSink { cfg, fault };
                self.drive(program, graph, state, &mut sink, fault)
            }
            None => self.drive(program, graph, state, &mut NoSink, fault),
        }
    }

    /// The BSP superstep loop, generic over what happens at barriers.
    ///
    /// `sink.on_barrier` runs at every barrier the run *continues*
    /// past (a finished run returns instead of snapshotting); `fault`
    /// can kill the run at the top of a superstep.
    fn drive<P: VertexProgram>(
        &self,
        program: &P,
        graph: &Csr,
        mut st: LoopState<P>,
        sink: &mut dyn BarrierSink<P>,
        fault: Option<&FaultPlan>,
    ) -> Result<RunResult<P::V>, EngineError> {
        let start = Instant::now();
        let base_elapsed = st.metrics.elapsed;
        let n = graph.num_vertices();

        if n == 0 {
            st.metrics.elapsed = base_elapsed + start.elapsed();
            return Ok(RunResult {
                values: st.values,
                metrics: st.metrics,
                aggregates: st.aggregates,
            });
        }

        let combiner = if self.config.use_combiner {
            program.combiner()
        } else {
            None
        };
        let threads = self.config.threads.max(1).min(n);
        let chunk_size = n.div_ceil(threads);
        // chunks_mut may yield fewer chunks than `threads` when n is not
        // an exact multiple; outbox routing must agree with the actual
        // chunk count or trailing buffers would never be delivered.
        let num_chunks = n.div_ceil(chunk_size);
        let max_supersteps = self.config.max_supersteps.min(program.max_supersteps());
        let always_active = program.always_active();

        loop {
            let step_start = Instant::now();
            let superstep = st.superstep;

            // Scripted crash: the "worker" dies before computing this
            // superstep, exactly as if the process was killed between
            // barriers. One-shot, so a resume sails past this point.
            if let Some(f) = fault {
                if f.take_kill(superstep) {
                    return Err(EngineError::InjectedCrash { superstep });
                }
            }

            // Phase 1: compute. Workers own contiguous chunks of values
            // and inboxes; each produces per-destination-chunk outboxes.
            #[allow(clippy::type_complexity)]
            let mut worker_out: Vec<Vec<Vec<(VertexId, Envelope<P::M>)>>> =
                Vec::with_capacity(threads);
            let mut worker_aggs: Vec<Aggregates> = Vec::with_capacity(threads);
            let mut active_total = 0usize;

            {
                let value_chunks: Vec<&mut [P::V]> = st.values.chunks_mut(chunk_size).collect();
                let inbox_chunks: Vec<&mut [Vec<Envelope<P::M>>]> =
                    st.inbox.chunks_mut(chunk_size).collect();
                let agg_ref = &st.aggregates;
                let results: Vec<WorkerOutput<P::M>> = if threads == 1 {
                    value_chunks
                        .into_iter()
                        .zip(inbox_chunks)
                        .enumerate()
                        .map(|(w, (vals, boxes))| {
                            run_chunk::<P>(
                                program,
                                graph,
                                superstep,
                                always_active,
                                w * chunk_size,
                                vals,
                                boxes,
                                agg_ref,
                                num_chunks,
                                chunk_size,
                            )
                        })
                        .collect()
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = value_chunks
                            .into_iter()
                            .zip(inbox_chunks)
                            .enumerate()
                            .map(|(w, (vals, boxes))| {
                                scope.spawn(move || {
                                    run_chunk::<P>(
                                        program,
                                        graph,
                                        superstep,
                                        always_active,
                                        w * chunk_size,
                                        vals,
                                        boxes,
                                        agg_ref,
                                        num_chunks,
                                        chunk_size,
                                    )
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                for out in results {
                    active_total += out.active;
                    worker_out.push(out.outboxes);
                    worker_aggs.push(out.aggregates);
                }
            }

            // Barrier: merge aggregates.
            for wa in &worker_aggs {
                st.aggregates.merge_current(wa);
            }

            // Phase 2: deliver messages into next-superstep inboxes.
            // Parallel over destination chunks — worker t merges every
            // producer's buffer for chunk t. Deterministic: producers are
            // scanned in a fixed order and each buffer is already in
            // vertex order, so delivery order never depends on
            // scheduling.
            let deliver_chunk = |t: usize, inbox_chunk: &mut [Vec<Envelope<P::M>>]| {
                let base = t * chunk_size;
                let mut sent = 0usize;
                let mut bytes = 0usize;
                for w_out in &worker_out {
                    for (to, env) in &w_out[t] {
                        let slot = &mut inbox_chunk[to.index() - base];
                        sent += 1;
                        bytes += program.message_bytes(&env.msg);
                        match (&combiner, slot.last_mut()) {
                            (Some(c), Some(acc)) => {
                                c.combine(&mut acc.msg, &env.msg);
                                acc.src = Envelope::<P::M>::COMBINED;
                                // Combining replaced the slot; the metric
                                // counts post-combining stored messages.
                                sent -= 1;
                                bytes -= program.message_bytes(&env.msg);
                            }
                            _ => slot.push(env.clone()),
                        }
                    }
                }
                (sent, bytes)
            };
            let (messages_sent, message_bytes) = {
                let inbox_chunks: Vec<&mut [Vec<Envelope<P::M>>]> =
                    st.inbox.chunks_mut(chunk_size).collect();
                let counts: Vec<(usize, usize)> = if threads == 1 {
                    inbox_chunks
                        .into_iter()
                        .enumerate()
                        .map(|(t, chunk)| deliver_chunk(t, chunk))
                        .collect()
                } else {
                    let deliver_chunk = &deliver_chunk;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = inbox_chunks
                            .into_iter()
                            .enumerate()
                            .map(|(t, chunk)| scope.spawn(move || deliver_chunk(t, chunk)))
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                counts
                    .into_iter()
                    .fold((0, 0), |(s, b), (cs, cb)| (s + cs, b + cb))
            };

            st.metrics.supersteps.push(SuperstepMetrics {
                superstep,
                active_vertices: active_total,
                messages_sent,
                message_bytes,
                elapsed: step_start.elapsed(),
            });

            // Termination checks at the barrier.
            let halted = program.should_halt(superstep, &st.aggregates);
            st.aggregates.rotate();
            let no_traffic = messages_sent == 0 && !always_active;
            st.superstep = superstep + 1;
            if halted || no_traffic || st.superstep >= max_supersteps {
                break;
            }

            // Barrier snapshot hook for runs that continue. The sink
            // decides whether this barrier is on its interval; the
            // recorded elapsed time covers everything up to here so a
            // resumed run reports a sensible total.
            st.metrics.elapsed = base_elapsed + start.elapsed();
            sink.on_barrier(&st)?;
        }

        st.metrics.elapsed = base_elapsed + start.elapsed();
        Ok(RunResult {
            values: st.values,
            metrics: st.metrics,
            aggregates: st.aggregates,
        })
    }
}

/// Mutable engine state that is live across a barrier — exactly what a
/// checkpoint captures.
struct LoopState<P: VertexProgram> {
    /// The next superstep to execute.
    superstep: u32,
    /// Vertex values.
    values: Vec<P::V>,
    /// Messages delivered for superstep `superstep`, per vertex.
    inbox: Vec<Vec<Envelope<P::M>>>,
    /// Aggregator state (rotated: `previous` holds the last barrier's
    /// reductions).
    aggregates: Aggregates,
    /// Metrics recorded so far; `elapsed` is the accumulated wall time.
    metrics: RunMetrics,
}

/// Initial state for a fresh run of `program` over `graph`.
fn fresh_state<P: VertexProgram>(program: &P, graph: &Csr) -> LoopState<P> {
    let n = graph.num_vertices();
    LoopState {
        superstep: 0,
        values: (0..n)
            .map(|i| program.init(VertexId(i as u64), graph))
            .collect(),
        inbox: (0..n).map(|_| Vec::new()).collect(),
        aggregates: Aggregates::new(program.aggregators()),
        metrics: RunMetrics::default(),
    }
}

/// What happens at a barrier the run continues past.
trait BarrierSink<P: VertexProgram> {
    fn on_barrier(&mut self, state: &LoopState<P>) -> Result<(), EngineError>;
}

/// No-op sink for plain `run`.
struct NoSink;

impl<P: VertexProgram> BarrierSink<P> for NoSink {
    fn on_barrier(&mut self, _state: &LoopState<P>) -> Result<(), EngineError> {
        Ok(())
    }
}

/// Snapshot-writing sink honouring the checkpoint interval and any
/// scripted checkpoint corruption.
struct DirSink<'a> {
    cfg: &'a CheckpointConfig,
    fault: Option<&'a FaultPlan>,
}

impl<P> BarrierSink<P> for DirSink<'_>
where
    P: VertexProgram,
    P::V: Snapshot,
    P::M: Snapshot,
{
    fn on_barrier(&mut self, state: &LoopState<P>) -> Result<(), EngineError> {
        if state.superstep.is_multiple_of(self.cfg.interval()) {
            write_state_snapshot(self.cfg, self.fault, state)?;
        }
        Ok(())
    }
}

/// Serialize `state` into a checkpoint file (field-by-field, matching
/// [`EngineCheckpoint`]'s layout, without cloning the state), then apply
/// any scripted corruption to the file that just landed.
fn write_state_snapshot<P>(
    cfg: &CheckpointConfig,
    fault: Option<&FaultPlan>,
    state: &LoopState<P>,
) -> Result<(), EngineError>
where
    P: VertexProgram,
    P::V: Snapshot,
    P::M: Snapshot,
{
    let mut payload = Vec::new();
    state.superstep.write_snap(&mut payload);
    state.values.write_snap(&mut payload);
    state.inbox.write_snap(&mut payload);
    state.aggregates.write_snap(&mut payload);
    state.metrics.write_snap(&mut payload);

    std::fs::create_dir_all(&cfg.dir).map_err(|e| EngineError::Io {
        path: cfg.dir.clone(),
        source: e,
    })?;
    let path = checkpoint_path(&cfg.dir, state.superstep);
    crate::checkpoint::write_versioned(&path, &payload)?;

    if let Some(f) = fault {
        if f.take_corruption(state.superstep) {
            corrupt_snapshot_file(&path)?;
        }
    }
    Ok(())
}

/// Flip a payload byte so the file's CRC no longer matches (the
/// `FaultPlan::corrupt_checkpoint` effect).
fn corrupt_snapshot_file(path: &std::path::Path) -> Result<(), EngineError> {
    let io = |e| EngineError::Io {
        path: path.to_path_buf(),
        source: e,
    };
    let mut bytes = std::fs::read(path).map_err(io)?;
    // Offset 16 is the first payload byte (after magic+version+len).
    if let Some(b) = bytes.get_mut(16) {
        *b ^= 0xA5;
    }
    std::fs::write(path, &bytes).map_err(io)
}

struct WorkerOutput<M> {
    /// Outboxes indexed by destination chunk.
    outboxes: Vec<Vec<(VertexId, Envelope<M>)>>,
    aggregates: Aggregates,
    active: usize,
}

/// Execute one superstep for a contiguous chunk of vertices.
#[allow(clippy::too_many_arguments)]
fn run_chunk<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    superstep: u32,
    always_active: bool,
    base: usize,
    values: &mut [P::V],
    inboxes: &mut [Vec<Envelope<P::M>>],
    global_aggs: &Aggregates,
    num_chunks: usize,
    chunk_size: usize,
) -> WorkerOutput<P::M> {
    let mut ctx = EngineContext {
        superstep,
        vertex: VertexId(0),
        graph,
        outboxes: (0..num_chunks).map(|_| Vec::new()).collect(),
        local_aggs: global_aggs.fresh_local(),
        global_aggs,
        chunk_size,
        num_vertices: graph.num_vertices(),
    };
    let mut active = 0usize;
    for (offset, value) in values.iter_mut().enumerate() {
        let v = VertexId((base + offset) as u64);
        let msgs = std::mem::take(&mut inboxes[offset]);
        if superstep == 0 || always_active || !msgs.is_empty() {
            active += 1;
            ctx.vertex = v;
            program.compute(&mut ctx, value, &msgs);
        }
    }
    WorkerOutput {
        outboxes: ctx.outboxes,
        aggregates: ctx.local_aggs,
        active,
    }
}

/// The engine's own [`Context`] implementation.
struct EngineContext<'a, M> {
    superstep: u32,
    vertex: VertexId,
    graph: &'a Csr,
    /// Per-destination-chunk message buffers.
    outboxes: Vec<Vec<(VertexId, Envelope<M>)>>,
    local_aggs: Aggregates,
    global_aggs: &'a Aggregates,
    chunk_size: usize,
    num_vertices: usize,
}

impl<M> Context<M> for EngineContext<'_, M> {
    fn superstep(&self) -> u32 {
        self.superstep
    }

    fn vertex(&self) -> VertexId {
        self.vertex
    }

    fn graph(&self) -> &Csr {
        self.graph
    }

    fn send(&mut self, to: VertexId, msg: M) {
        assert!(
            to.index() < self.num_vertices,
            "message sent to nonexistent vertex {to} (graph has {} vertices)",
            self.num_vertices
        );
        let chunk = (to.index() / self.chunk_size).min(self.outboxes.len() - 1);
        self.outboxes[chunk].push((to, Envelope::new(self.vertex, msg)));
    }

    fn aggregate(&mut self, name: &str, value: AggValue) {
        self.local_aggs.contribute(name, value);
    }

    fn prev_aggregate(&self, name: &str) -> Option<AggValue> {
        self.global_aggs.previous(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggOp;
    use crate::message::Combiner;
    use ariadne_graph::generators::regular::{cycle, path, star};
    use ariadne_graph::GraphBuilder;

    /// Flood the minimum id through the graph (WCC on the out-direction).
    struct MinFlood;
    impl VertexProgram for MinFlood {
        type V = u64;
        type M = u64;
        fn init(&self, v: VertexId, _: &Csr) -> u64 {
            v.0
        }
        fn compute(&self, ctx: &mut dyn Context<u64>, value: &mut u64, msgs: &[Envelope<u64>]) {
            let best = msgs.iter().map(|e| e.msg).min().unwrap_or(*value);
            if ctx.superstep() == 0 {
                ctx.send_to_out_neighbors(*value);
            } else if best < *value {
                *value = best;
                ctx.send_to_out_neighbors(best);
            }
        }
    }

    #[test]
    fn min_flood_on_cycle() {
        let g = cycle(6);
        let r = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        assert!(r.values.iter().all(|&v| v == 0));
        // Needs ~n supersteps to propagate all the way around.
        assert!(r.supersteps() >= 5, "supersteps = {}", r.supersteps());
    }

    #[test]
    fn terminates_when_no_messages() {
        let g = path(3);
        let r = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        // Path 0->1->2: converged quickly; run ends on message silence.
        assert_eq!(r.values, vec![0, 0, 0]);
        assert!(r.supersteps() <= 4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = ariadne_graph::generators::rmat(ariadne_graph::generators::RmatConfig {
            scale: 9,
            edge_factor: 4,
            ..Default::default()
        });
        let seq = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        let par = Engine::new(EngineConfig::parallel(4)).run(&MinFlood, &g);
        assert_eq!(seq.values, par.values);
        assert_eq!(seq.supersteps(), par.supersteps());
    }

    /// Counts supersteps via always_active + max cap.
    struct StepCounter;
    impl VertexProgram for StepCounter {
        type V = u32;
        type M = ();
        fn init(&self, _: VertexId, _: &Csr) -> u32 {
            0
        }
        fn compute(&self, _: &mut dyn Context<()>, value: &mut u32, _: &[Envelope<()>]) {
            *value += 1;
        }
        fn always_active(&self) -> bool {
            true
        }
        fn max_supersteps(&self) -> u32 {
            5
        }
    }

    #[test]
    fn always_active_runs_to_cap() {
        let g = path(2);
        let r = Engine::new(EngineConfig::sequential()).run(&StepCounter, &g);
        assert_eq!(r.supersteps(), 5);
        assert_eq!(r.values, vec![5, 5]);
    }

    #[test]
    fn engine_config_cap_overrides_program() {
        let g = path(2);
        let mut cfg = EngineConfig::sequential();
        cfg.max_supersteps = 3;
        let r = Engine::new(cfg).run(&StepCounter, &g);
        assert_eq!(r.supersteps(), 3);
    }

    /// Uses an aggregator to stop once the sum of values stabilizes.
    struct AggHalt;
    impl VertexProgram for AggHalt {
        type V = f64;
        type M = ();
        fn init(&self, _: VertexId, _: &Csr) -> f64 {
            1.0
        }
        fn compute(&self, ctx: &mut dyn Context<()>, value: &mut f64, _: &[Envelope<()>]) {
            *value *= 0.5;
            ctx.aggregate("total", AggValue::F64(*value));
        }
        fn always_active(&self) -> bool {
            true
        }
        fn aggregators(&self) -> Vec<(String, AggOp)> {
            vec![("total".into(), AggOp::Sum)]
        }
        fn should_halt(&self, _s: u32, aggs: &Aggregates) -> bool {
            aggs.current("total").map(|v| v.as_f64()).unwrap_or(1.0) < 0.1
        }
    }

    #[test]
    fn aggregator_halt() {
        let g = path(2);
        let r = Engine::new(EngineConfig::sequential()).run(&AggHalt, &g);
        // total = 2 * 0.5^s < 0.1 => s = 5.
        assert_eq!(r.supersteps(), 5);
        assert!(r.aggregates.previous("total").unwrap().as_f64() < 0.1);
    }

    /// Echoes received messages back; sends its own id at step 0.
    struct SourceTracker;
    impl VertexProgram for SourceTracker {
        type V = Vec<u64>;
        type M = u64;
        fn init(&self, _: VertexId, _: &Csr) -> Vec<u64> {
            Vec::new()
        }
        fn compute(
            &self,
            ctx: &mut dyn Context<u64>,
            value: &mut Vec<u64>,
            msgs: &[Envelope<u64>],
        ) {
            for e in msgs {
                value.push(e.src.0);
            }
            if ctx.superstep() == 0 {
                ctx.send_to_out_neighbors(ctx.vertex().0);
            }
        }
    }

    #[test]
    fn envelopes_carry_sources() {
        let g = star(4);
        let r = Engine::new(EngineConfig::sequential()).run(&SourceTracker, &g);
        for leaf in 1..4 {
            assert_eq!(r.values[leaf], vec![0]);
        }
    }

    /// Sends to a vertex by id that is not a neighbour (Query 4 scenario).
    struct ByIdSender;
    impl VertexProgram for ByIdSender {
        type V = u64;
        type M = u64;
        fn init(&self, _: VertexId, _: &Csr) -> u64 {
            0
        }
        fn compute(&self, ctx: &mut dyn Context<u64>, value: &mut u64, msgs: &[Envelope<u64>]) {
            *value += msgs.len() as u64;
            if ctx.superstep() == 0 && ctx.vertex() == VertexId(0) {
                ctx.send(VertexId(2), 99); // 0 -> 2 is not an edge below
            }
        }
    }

    #[test]
    fn send_by_id_to_non_neighbor_delivers() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.ensure_vertex(VertexId(2));
        let g = b.build();
        let r = Engine::new(EngineConfig::sequential()).run(&ByIdSender, &g);
        assert_eq!(r.values[2], 1);
    }

    #[test]
    #[should_panic(expected = "nonexistent vertex")]
    fn send_out_of_range_panics() {
        struct Bad;
        impl VertexProgram for Bad {
            type V = ();
            type M = ();
            fn init(&self, _: VertexId, _: &Csr) {}
            fn compute(&self, ctx: &mut dyn Context<()>, _: &mut (), _: &[Envelope<()>]) {
                ctx.send(VertexId(999), ());
            }
        }
        let g = path(2);
        let _ = Engine::new(EngineConfig::sequential()).run(&Bad, &g);
    }

    /// Min-combined flood: same fixpoint, fewer stored messages.
    struct CombinedFlood;
    impl VertexProgram for CombinedFlood {
        type V = u64;
        type M = u64;
        fn init(&self, v: VertexId, _: &Csr) -> u64 {
            v.0
        }
        fn compute(&self, ctx: &mut dyn Context<u64>, value: &mut u64, msgs: &[Envelope<u64>]) {
            let best = msgs.iter().map(|e| e.msg).min().unwrap_or(*value);
            if ctx.superstep() == 0 {
                ctx.send_to_out_neighbors(*value);
            } else if best < *value {
                *value = best;
                ctx.send_to_out_neighbors(best);
            }
        }
        fn combiner(&self) -> Option<Box<dyn Combiner<u64>>> {
            Some(Box::new(crate::message::MinCombiner))
        }
    }

    #[test]
    fn combiner_reduces_traffic_same_result() {
        // Two vertices both pointing at vertex 2.
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(2), 1.0);
        b.add_edge(VertexId(1), VertexId(2), 1.0);
        let g = b.build();

        let with = Engine::new(EngineConfig::default()).run(&CombinedFlood, &g);
        let cfg = EngineConfig {
            use_combiner: false,
            ..EngineConfig::default()
        };
        let without = Engine::new(cfg).run(&CombinedFlood, &g);
        assert_eq!(with.values, without.values);
        assert!(with.metrics.total_messages() < without.metrics.total_messages());
    }

    #[test]
    fn empty_graph_returns_immediately() {
        let g = Csr::empty(0);
        let r = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        assert!(r.values.is_empty());
        assert_eq!(r.supersteps(), 0);
    }

    /// Each superstep, vertices read the previous superstep's reduction.
    struct AggReader;
    impl VertexProgram for AggReader {
        type V = Vec<Option<f64>>;
        type M = ();
        fn init(&self, _: VertexId, _: &Csr) -> Self::V {
            Vec::new()
        }
        fn compute(&self, ctx: &mut dyn Context<()>, value: &mut Self::V, _: &[Envelope<()>]) {
            value.push(ctx.prev_aggregate("count").map(|v| v.as_f64()));
            ctx.aggregate("count", AggValue::F64(1.0));
        }
        fn aggregators(&self) -> Vec<(String, AggOp)> {
            vec![("count".into(), AggOp::Sum)]
        }
        fn always_active(&self) -> bool {
            true
        }
        fn max_supersteps(&self) -> u32 {
            3
        }
    }

    #[test]
    fn prev_aggregate_visible_next_superstep() {
        let g = path(3);
        let r = Engine::new(EngineConfig::sequential()).run(&AggReader, &g);
        // Superstep 0 sees nothing; supersteps 1 and 2 see all three
        // contributions from the previous round.
        for v in &r.values {
            assert_eq!(v.as_slice(), &[None, Some(3.0), Some(3.0)]);
        }
    }

    #[test]
    fn crash_and_resume_is_bit_identical() {
        let g = cycle(8);
        let dir = std::env::temp_dir().join(format!("ariadne-engine-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let baseline = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);

        let plan = FaultPlan::new();
        plan.kill_at_superstep(3);
        let engine = Engine::new(EngineConfig {
            checkpoint: Some(CheckpointConfig::new(&dir, 2)),
            fault: Some(Arc::clone(&plan)),
            ..EngineConfig::sequential()
        });
        match engine.run_checkpointed(&MinFlood, &g) {
            Err(EngineError::InjectedCrash { superstep: 3 }) => {}
            other => panic!("expected injected crash at superstep 3, got {other:?}"),
        }

        let resumed = engine.resume(&MinFlood, &g).expect("resume");
        assert_eq!(resumed.values, baseline.values);
        assert_eq!(resumed.supersteps(), baseline.supersteps());
        assert_eq!(resumed.aggregates, baseline.aggregates);
        for (a, b) in resumed
            .metrics
            .supersteps
            .iter()
            .zip(&baseline.metrics.supersteps)
        {
            assert_eq!(
                (a.superstep, a.active_vertices, a.messages_sent, a.message_bytes),
                (b.superstep, b.active_vertices, b.messages_sent, b.message_bytes),
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_config_is_typed_error() {
        let g = path(2);
        let engine = Engine::new(EngineConfig::sequential());
        assert!(matches!(
            engine.resume(&MinFlood, &g),
            Err(EngineError::NotConfigured)
        ));
    }

    #[test]
    fn metrics_track_activity() {
        let g = path(4);
        let r = Engine::new(EngineConfig::sequential()).run(&MinFlood, &g);
        assert_eq!(r.metrics.supersteps[0].active_vertices, 4);
        assert!(r.metrics.supersteps[0].messages_sent > 0);
        assert!(r.metrics.total_message_bytes() > 0);
    }
}
