//! Opaque pagination cursors.
//!
//! A cursor pins everything that determines the result sequence it
//! points into: the compiled query's fingerprint, the effective layer
//! range, and the row offset. Because layered replay is bit-identical
//! at every thread count and the service flattens results in a fixed
//! order (predicate name ascending, then tuple order), an offset is a
//! stable address — the token handed to a client today resumes at the
//! same row tomorrow, on any worker, warm or cold cache.
//!
//! The wire form is hex over a fixed 36-byte layout:
//!
//! ```text
//! fingerprint (8 BE) | layer_lo (4 BE) | layer_hi (4 BE) | offset (8 BE) | epoch (8 BE) | fnv1a64 >> 32 (4 BE)
//! ```
//!
//! The trailing checksum makes truncation/corruption a typed 400, not a
//! silently wrong page; the embedded fingerprint makes a token minted
//! for one query a typed 400 against another ("foreign cursor"); the
//! embedded store mutation epoch makes a token minted before a graph
//! mutation a typed 410 afterwards ("stale cursor") — offsets address a
//! result sequence that no longer exists, so resuming one must fail
//! loudly, never return rows from the superseded epoch.

use std::fmt;

/// FNV-1a 64-bit, the crate's fingerprint/checksum hash. Stable across
/// processes and platforms (unlike `DefaultHasher`), so cursor tokens
/// and cache keys survive a daemon restart.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded cursor: where in which result sequence to resume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cursor {
    /// Fingerprint of the PQL source this token paginates.
    pub fingerprint: u64,
    /// Inclusive effective layer range the result was computed over.
    pub layer_lo: u32,
    /// See [`Cursor::layer_lo`].
    pub layer_hi: u32,
    /// Row offset into the flattened result sequence.
    pub offset: u64,
    /// The store's mutation epoch when the token was minted. A token
    /// from an earlier epoch is stale: the result sequence it addresses
    /// was superseded by a graph mutation.
    pub epoch: u64,
}

/// Why a cursor token failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CursorError {
    /// Not hex, or not the expected length.
    Malformed,
    /// Valid shape, failed checksum: truncated or corrupted in transit.
    Checksum,
}

impl fmt::Display for CursorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CursorError::Malformed => write!(f, "cursor is not a valid token"),
            CursorError::Checksum => write!(f, "cursor failed its checksum"),
        }
    }
}

impl std::error::Error for CursorError {}

const RAW_LEN: usize = 8 + 4 + 4 + 8 + 8;
const TOKEN_LEN: usize = (RAW_LEN + 4) * 2;

impl Cursor {
    /// Encode to the opaque hex token.
    pub fn encode(&self) -> String {
        let mut raw = Vec::with_capacity(RAW_LEN + 4);
        raw.extend_from_slice(&self.fingerprint.to_be_bytes());
        raw.extend_from_slice(&self.layer_lo.to_be_bytes());
        raw.extend_from_slice(&self.layer_hi.to_be_bytes());
        raw.extend_from_slice(&self.offset.to_be_bytes());
        raw.extend_from_slice(&self.epoch.to_be_bytes());
        let check = (fnv1a64(&raw) >> 32) as u32;
        raw.extend_from_slice(&check.to_be_bytes());
        let mut out = String::with_capacity(TOKEN_LEN);
        for b in raw {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// Decode a token, verifying shape and checksum.
    pub fn decode(token: &str) -> Result<Cursor, CursorError> {
        if token.len() != TOKEN_LEN || !token.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(CursorError::Malformed);
        }
        let mut raw = [0u8; RAW_LEN + 4];
        for (i, chunk) in token.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16).ok_or(CursorError::Malformed)?;
            let lo = (chunk[1] as char).to_digit(16).ok_or(CursorError::Malformed)?;
            raw[i] = (hi * 16 + lo) as u8;
        }
        let check = u32::from_be_bytes(raw[RAW_LEN..].try_into().unwrap());
        if (fnv1a64(&raw[..RAW_LEN]) >> 32) as u32 != check {
            return Err(CursorError::Checksum);
        }
        Ok(Cursor {
            fingerprint: u64::from_be_bytes(raw[0..8].try_into().unwrap()),
            layer_lo: u32::from_be_bytes(raw[8..12].try_into().unwrap()),
            layer_hi: u32::from_be_bytes(raw[12..16].try_into().unwrap()),
            offset: u64::from_be_bytes(raw[16..24].try_into().unwrap()),
            epoch: u64::from_be_bytes(raw[24..32].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact() {
        let c = Cursor {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            layer_lo: 3,
            layer_hi: 17,
            offset: 123_456,
            epoch: 42,
        };
        let token = c.encode();
        assert_eq!(token.len(), TOKEN_LEN);
        assert_eq!(Cursor::decode(&token), Ok(c));
    }

    #[test]
    fn corruption_and_truncation_are_typed() {
        let token = Cursor {
            fingerprint: 1,
            layer_lo: 0,
            layer_hi: 4,
            offset: 9,
            epoch: 0,
        }
        .encode();
        assert_eq!(Cursor::decode(&token[..10]), Err(CursorError::Malformed));
        assert_eq!(Cursor::decode("zz"), Err(CursorError::Malformed));
        let mut bad = token.into_bytes();
        // Flip one hex digit somewhere in the payload.
        bad[4] = if bad[4] == b'0' { b'1' } else { b'0' };
        let bad = String::from_utf8(bad).unwrap();
        assert_eq!(Cursor::decode(&bad), Err(CursorError::Checksum));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values: tokens must survive daemon restarts and
        // architecture changes.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"ariadne"), fnv1a64(b"ariadne"));
        assert_ne!(fnv1a64(b"ariadne"), fnv1a64(b"ariadnf"));
    }
}
