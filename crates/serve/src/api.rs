//! The HTTP face of the query service: a JSON shim over
//! [`QueryService::execute`] mounted on the shared `ariadne-obs` HTTP
//! core, with the observability routes as fallback.
//!
//! ```text
//! GET /query?pql=<urlencoded PQL>[&params=k=v;k2=v2][&cursor=<token>]
//!           [&limit=N][&layers=LO..HI]
//!     X-Ariadne-Tenant: <quota identity, default "anonymous">
//! ```
//!
//! `200` responses carry the page, its replay cost, and `next_cursor`
//! (or `null` on the last page). `429`/`503` rejections carry a
//! `Retry-After` header. Everything else on the listener falls through
//! to [`ariadne_obs::obs_route`] (`/metrics`, `/trace`, `/report`,
//! `/healthz`).

use crate::{QueryPage, QueryRequest, QueryService, ServeError};
use ariadne_obs::{obs_route, Handler, Request, Response};
use ariadne_pql::Value;
use std::sync::Arc;

/// The request handler for [`crate::serve`]: `/query` plus the
/// observability routes.
pub fn handler(service: Arc<QueryService>) -> Handler {
    Arc::new(move |req: &Request| -> Response {
        if req.path != "/query" {
            return obs_route(req);
        }
        if req.method != "GET" {
            return Response::plain(405, "only GET is supported\n");
        }
        handle_query(&service, req)
    })
}

fn handle_query(service: &QueryService, req: &Request) -> Response {
    let pql = req.param("pql");
    let cursor = req.param("cursor");
    let limit = match req.param("limit") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => return error_response(400, "limit must be a positive integer"),
        },
        None => None,
    };
    let layers = match req.param("layers") {
        Some(raw) => match parse_layers(&raw) {
            Some(range) => Some(range),
            None => {
                return error_response(400, "layers must be LO..HI or a single layer N")
            }
        },
        None => None,
    };
    let tenant = req.header("x-ariadne-tenant").unwrap_or("anonymous");
    let raw_params = req.param("params").unwrap_or_default();
    let params: Vec<(&str, &str)> = match parse_params(&raw_params) {
        Some(pairs) => pairs,
        None => return error_response(400, "params must be k=v pairs separated by ';'"),
    };

    let request = QueryRequest {
        pql: pql.as_deref(),
        params: &params,
        cursor: cursor.as_deref(),
        limit,
        layers,
        tenant,
    };
    match service.execute(&request) {
        Ok(page) => Response::json(200, render_page(&page)),
        Err(e) => {
            let resp = error_response(e.status(), &e.to_string());
            match e {
                ServeError::Throttled { retry_after_secs }
                | ServeError::Busy { retry_after_secs } => {
                    resp.with_header("Retry-After", retry_after_secs.to_string())
                }
                _ => resp,
            }
        }
    }
}

/// `k=v` pairs separated by `;` (e.g. `alpha=v5;sigma=9`); an empty
/// string is no bindings.
fn parse_params(raw: &str) -> Option<Vec<(&str, &str)>> {
    raw.split(';')
        .filter(|pair| !pair.trim().is_empty())
        .map(|pair| pair.split_once('=').map(|(k, v)| (k.trim(), v.trim())))
        .collect()
}

/// `LO..HI` (inclusive) or a bare `N` meaning `N..N`.
fn parse_layers(raw: &str) -> Option<(u32, u32)> {
    match raw.split_once("..") {
        Some((lo, hi)) => Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)),
        None => {
            let n: u32 = raw.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

fn error_response(status: u16, message: &str) -> Response {
    let mut body = String::from("{\"error\":");
    json_string(&mut body, message);
    body.push_str("}\n");
    Response::json(status, body)
}

fn render_page(page: &QueryPage) -> String {
    let mut out = String::with_capacity(256 + page.rows().len() * 48);
    out.push_str(&format!(
        "{{\"fingerprint\":\"{:016x}\",\"layers\":[{},{}],\"total_rows\":{},\"offset\":{},\"returned\":{},\"cache\":\"{}\",",
        page.fingerprint,
        page.layer_range.0,
        page.layer_range.1,
        page.total_rows,
        page.offset,
        page.rows().len(),
        if page.cache_hit { "hit" } else { "miss" },
    ));
    out.push_str(&format!(
        "\"replay\":{{\"layers\":{},\"bytes_read\":{},\"segments_read\":{},\"segments_skipped\":{}}},",
        page.replay.layers,
        page.replay.bytes_read,
        page.replay.segments_read,
        page.replay.segments_skipped,
    ));
    out.push_str("\"rows\":[");
    for (i, (pred, tuple)) in page.rows().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        json_string(&mut out, pred);
        for value in tuple {
            out.push(',');
            json_value(&mut out, value);
        }
        out.push(']');
    }
    out.push_str("],\"next_cursor\":");
    match &page.next_cursor {
        Some(token) => json_string(&mut out, token),
        None => out.push_str("null"),
    }
    out.push_str("}\n");
    out
}

/// Append `v` as JSON. Non-finite floats have no JSON spelling and are
/// emitted as strings.
fn json_value(out: &mut String, v: &Value) {
    match v {
        Value::Id(id) => out.push_str(&id.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        Value::Float(f) => json_string(out, &f.to_string()),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => json_string(out, s),
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_value(out, item);
            }
            out.push(']');
        }
        Value::Unit => out.push_str("null"),
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_param_parses_ranges_and_singletons() {
        assert_eq!(parse_layers("2..5"), Some((2, 5)));
        assert_eq!(parse_layers("7"), Some((7, 7)));
        assert_eq!(parse_layers(" 1 .. 3 "), Some((1, 3)));
        assert_eq!(parse_layers("a..b"), None);
        assert_eq!(parse_layers(""), None);
    }

    #[test]
    fn params_parse_pairs() {
        assert_eq!(parse_params(""), Some(vec![]));
        assert_eq!(
            parse_params("alpha=v5; sigma=9"),
            Some(vec![("alpha", "v5"), ("sigma", "9")])
        );
        assert_eq!(parse_params("broken"), None);
    }

    #[test]
    fn json_strings_escape_controls() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_values_cover_every_variant() {
        let mut s = String::new();
        json_value(
            &mut s,
            &Value::List(std::sync::Arc::new(vec![
                Value::Id(3),
                Value::Int(-1),
                Value::Float(1.5),
                Value::Bool(true),
                Value::str("x"),
                Value::Unit,
            ])),
        );
        assert_eq!(s, "[3,-1,1.5,true,\"x\",null]");
        let mut nan = String::new();
        json_value(&mut nan, &Value::Float(f64::NAN));
        assert_eq!(nan, "\"NaN\"");
    }
}
