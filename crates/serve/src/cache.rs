//! The byte-budgeted LRU layer-replay cache.
//!
//! Repeated lineage queries over hot vertices are the serving plane's
//! common case (an investigator re-issuing and paginating the same
//! backward trace); decoding the same store segments for every page
//! would make pagination O(pages × replay). The cache keys a fully
//! materialized, deterministically ordered result sequence on
//! everything that determines it:
//!
//! * the compiled query fingerprint (FNV-1a of the PQL source),
//! * the **effective** layer range (clamped, so `0..=MAX` and the
//!   store's true extent share an entry),
//! * the column-mask signature (prune/project flags change which
//!   stored columns are decoded — and the intermediate stats a client
//!   may inspect — so they are distinct entries),
//! * the read policy (a degraded replay's partial results must never
//!   satisfy a strict request),
//! * the store's **mutation epoch**: a graph mutation appends a new
//!   provenance epoch and supersedes every materialized sequence, so
//!   pre-mutation entries must never answer post-mutation requests.
//!
//! Eviction is LRU by byte budget: entries are charged their
//! materialized size and the least-recently-used entries are dropped
//! until the budget holds. `serve_cache_{hits,misses,evicted_bytes}_total`
//! plus entry/byte gauges make the hit rate scrapeable on `/metrics`.
//!
//! Invalidation: within one mutation epoch the served store is
//! immutable, so entries never go stale. When the service appends a
//! mutation epoch ([`crate::QueryService::append_epoch`]) the epoch in
//! every live key stops matching — stale entries become unreachable by
//! construction — and the service additionally calls
//! [`ReplayCache::clear`] so their bytes are freed immediately instead
//! of waiting for LRU pressure. A service that reopens its store must
//! start a fresh cache — `ReplayCache` is owned by the
//! [`crate::QueryService`] that owns the store, which enforces exactly
//! that.

use ariadne_pql::Tuple;
use std::collections::HashMap;
use std::sync::Arc;

/// Cached handles for the cache's own metrics.
mod obs_handles {
    use ariadne_obs::metrics::{Counter, Gauge};
    use std::sync::OnceLock;

    macro_rules! serve_counter {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().counter($name, $help, false))
            }
        };
    }
    macro_rules! serve_gauge {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Gauge {
                static H: OnceLock<Gauge> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().gauge($name, $help, false))
            }
        };
    }

    serve_counter!(
        hits,
        "serve_cache_hits_total",
        "query requests answered from the replay cache (0 store bytes read)"
    );
    serve_counter!(
        misses,
        "serve_cache_misses_total",
        "query requests that had to replay the store"
    );
    serve_counter!(
        evicted_bytes,
        "serve_cache_evicted_bytes_total",
        "materialized result bytes evicted from the replay cache"
    );
    serve_gauge!(
        bytes,
        "serve_cache_bytes",
        "materialized result bytes currently held by the replay cache"
    );
    serve_gauge!(
        entries,
        "serve_cache_entries",
        "result sequences currently held by the replay cache"
    );
}

/// Everything that determines a materialized result sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a fingerprint of the PQL source text.
    pub fingerprint: u64,
    /// Effective (clamped) inclusive layer range.
    pub layer_range: (u32, u32),
    /// Signature of the replay's column masks + prune flag.
    pub mask_sig: u64,
    /// Read-policy discriminant (0 = strict, 1 = degraded).
    pub read_policy: u8,
    /// The store's mutation epoch the sequence was materialized at.
    pub epoch: u64,
}

/// Replay counters a response reports alongside cached rows, so a
/// client can see what the *original* replay cost (and that a cache hit
/// cost zero).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplaySummary {
    /// Layer rounds replayed.
    pub layers: u32,
    /// Encoded store bytes decoded.
    pub bytes_read: usize,
    /// Store segments decoded.
    pub segments_read: usize,
    /// Store segments the predicate filter skipped.
    pub segments_skipped: usize,
}

/// One materialized, deterministically ordered result sequence.
#[derive(Debug)]
pub struct CachedResult {
    /// `(predicate, tuple)` rows: predicates in ascending name order,
    /// tuples in each relation's sorted order — the order cursors
    /// address into.
    pub rows: Vec<(String, Tuple)>,
    /// Materialized footprint charged against the budget.
    pub bytes: usize,
    /// What the replay that produced this cost.
    pub replay: ReplaySummary,
}

impl CachedResult {
    /// Build from flattened rows, computing the byte charge.
    pub fn new(rows: Vec<(String, Tuple)>, replay: ReplaySummary) -> CachedResult {
        let bytes = rows
            .iter()
            .map(|(pred, t)| {
                pred.len()
                    + std::mem::size_of::<Tuple>()
                    + t.iter().map(ariadne_pql::Value::byte_size).sum::<usize>()
            })
            .sum();
        CachedResult { rows, bytes, replay }
    }
}

struct Entry {
    value: Arc<CachedResult>,
    last_used: u64,
}

/// LRU over [`CacheKey`]s with byte-budgeted eviction.
pub struct ReplayCache {
    budget: usize,
    used: usize,
    tick: u64,
    entries: HashMap<CacheKey, Entry>,
}

impl ReplayCache {
    /// A cache that holds at most `budget` materialized result bytes.
    pub fn new(budget: usize) -> ReplayCache {
        ReplayCache {
            budget,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Look up `key`, bumping its recency. Counts a hit or miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                obs_handles::hits().inc();
                Some(Arc::clone(&e.value))
            }
            None => {
                obs_handles::misses().inc();
                None
            }
        }
    }

    /// Insert `value` under `key`, evicting least-recently-used entries
    /// until the budget holds. A result larger than the whole budget is
    /// not cached at all (it would only evict everything and then churn).
    pub fn insert(&mut self, key: CacheKey, value: Arc<CachedResult>) {
        if value.bytes > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.used -= old.value.bytes;
        }
        while self.used + value.bytes > self.budget {
            let Some((&lru_key, _)) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let evicted = self.entries.remove(&lru_key).expect("lru key present");
            self.used -= evicted.value.bytes;
            obs_handles::evicted_bytes().add(evicted.value.bytes as u64);
        }
        self.used += value.bytes;
        self.entries.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
        obs_handles::bytes().set(self.used as i64);
        obs_handles::entries().set(self.entries.len() as i64);
    }

    /// Drop every entry (mutation-epoch invalidation): stale keys are
    /// already unreachable, this frees their bytes immediately.
    pub fn clear(&mut self) {
        obs_handles::evicted_bytes().add(self.used as u64);
        self.entries.clear();
        self.used = 0;
        obs_handles::bytes().set(0);
        obs_handles::entries().set(0);
    }

    /// Materialized bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Result sequences currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_pql::Value;

    fn result(rows: usize, payload: &str) -> Arc<CachedResult> {
        Arc::new(CachedResult::new(
            (0..rows)
                .map(|i| {
                    (
                        "p".to_string(),
                        vec![Value::Id(i as u64), Value::str(payload)],
                    )
                })
                .collect(),
            ReplaySummary::default(),
        ))
    }

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            layer_range: (0, 3),
            mask_sig: 7,
            read_policy: 0,
            epoch: 0,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = ReplayCache::new(1 << 20);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), result(4, "x"));
        let hit = c.get(&key(1)).expect("hit");
        assert_eq!(hit.rows.len(), 4);
        // Distinct mask/policy/range are distinct entries.
        assert!(c.get(&CacheKey { mask_sig: 8, ..key(1) }).is_none());
        assert!(c.get(&CacheKey { read_policy: 1, ..key(1) }).is_none());
        assert!(c.get(&CacheKey { layer_range: (0, 2), ..key(1) }).is_none());
        assert!(c.get(&CacheKey { epoch: 1, ..key(1) }).is_none());
    }

    #[test]
    fn clear_frees_everything() {
        let mut c = ReplayCache::new(1 << 20);
        c.insert(key(1), result(4, "x"));
        c.insert(key(2), result(4, "y"));
        assert!(c.used_bytes() > 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let one = result(8, "0123456789");
        let per = one.bytes;
        // Room for exactly two entries.
        let mut c = ReplayCache::new(per * 2 + 1);
        c.insert(key(1), result(8, "0123456789"));
        c.insert(key(2), result(8, "0123456789"));
        assert_eq!(c.len(), 2);
        // Touch 1 so 2 is the LRU, then insert 3.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), result(8, "0123456789"));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(1)).is_some(), "recently used survives");
        assert!(c.get(&key(2)).is_none(), "LRU evicted");
        assert!(c.get(&key(3)).is_some());
        assert!(c.used_bytes() <= per * 2 + 1);
    }

    #[test]
    fn oversized_results_are_not_cached() {
        let mut c = ReplayCache::new(8);
        c.insert(key(1), result(64, "a long payload string"));
        assert!(c.is_empty());
    }
}
