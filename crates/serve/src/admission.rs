//! Admission control: bounded concurrency plus per-tenant quotas.
//!
//! Two independent gates, checked in order:
//!
//! 1. **Per-tenant token bucket** (`429 Too Many Requests`): each
//!    distinct `X-Ariadne-Tenant` value gets a bucket of `quota_burst`
//!    tokens refilled at `quota_per_sec`; a query spends one token.
//!    This is fairness — one chatty investigator cannot starve the
//!    others — so it is checked first, before the shared capacity gate.
//! 2. **In-flight semaphore** (`503 Service Unavailable`): at most
//!    `max_in_flight` queries execute concurrently; everything beyond
//!    that is shed immediately rather than queued, because replay work
//!    parked behind a mutex would still pin its worker thread. The
//!    accept queue in the HTTP core is the only buffering layer.
//!
//! Both rejections carry `Retry-After` seconds. The current admitted
//! count is exported as the `serve_queue_depth` gauge.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Cached handles for admission metrics.
mod obs_handles {
    use ariadne_obs::metrics::{Counter, Gauge};
    use std::sync::OnceLock;

    macro_rules! serve_counter {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().counter($name, $help, false))
            }
        };
    }

    serve_counter!(
        admitted,
        "serve_admitted_total",
        "queries admitted past quota and capacity gates"
    );
    serve_counter!(
        rejected_quota,
        "serve_rejected_quota_total",
        "queries rejected 429 by a per-tenant token bucket"
    );
    serve_counter!(
        rejected_busy,
        "serve_rejected_busy_total",
        "queries shed 503 by the in-flight capacity gate"
    );

    pub fn queue_depth() -> &'static Gauge {
        static H: OnceLock<Gauge> = OnceLock::new();
        H.get_or_init(|| {
            ariadne_obs::registry().gauge(
                "serve_queue_depth",
                "queries currently admitted and executing",
                false,
            )
        })
    }
}

/// Admission knobs. See the module docs for semantics.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Concurrent queries allowed past the capacity gate.
    pub max_in_flight: usize,
    /// Token-bucket capacity per tenant (burst size).
    pub quota_burst: f64,
    /// Token refill rate per tenant, tokens/second. `0.0` never
    /// refills — useful for tests and hard per-session budgets.
    pub quota_per_sec: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 8,
            quota_burst: 32.0,
            quota_per_sec: 8.0,
        }
    }
}

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// The admission gate. One per [`crate::QueryService`].
pub struct Admission {
    config: AdmissionConfig,
    in_flight: AtomicUsize,
    tenants: Mutex<HashMap<String, Bucket>>,
}

/// The outcome of [`Admission::admit`].
pub enum Admit<'a> {
    /// Run the query; drop the guard when done.
    Granted(InFlightGuard<'a>),
    /// Tenant out of tokens: `429` with this `Retry-After`.
    Throttled {
        /// Whole seconds until a token will be available.
        retry_after_secs: u64,
    },
    /// Capacity gate full: `503` with this `Retry-After`.
    Busy {
        /// Suggested back-off.
        retry_after_secs: u64,
    },
}

/// RAII slot in the in-flight gate; releases on drop.
pub struct InFlightGuard<'a> {
    gate: &'a Admission,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::AcqRel);
        obs_handles::queue_depth().add(-1);
    }
}

impl Admission {
    /// A gate with the given knobs.
    pub fn new(config: AdmissionConfig) -> Admission {
        Admission {
            config,
            in_flight: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Queries currently admitted and executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Try to admit one query for `tenant`.
    pub fn admit(&self, tenant: &str) -> Admit<'_> {
        // Gate 1: tenant quota.
        {
            let mut tenants = self.tenants.lock().unwrap();
            let now = Instant::now();
            let bucket = tenants.entry(tenant.to_string()).or_insert(Bucket {
                tokens: self.config.quota_burst,
                last_refill: now,
            });
            let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * self.config.quota_per_sec)
                .min(self.config.quota_burst);
            bucket.last_refill = now;
            if bucket.tokens < 1.0 {
                let retry = if self.config.quota_per_sec > 0.0 {
                    ((1.0 - bucket.tokens) / self.config.quota_per_sec).ceil() as u64
                } else {
                    // Never refills: the quota is a per-session budget;
                    // "retry in a minute" is the most honest constant.
                    60
                };
                obs_handles::rejected_quota().inc();
                return Admit::Throttled {
                    retry_after_secs: retry.max(1),
                };
            }
            bucket.tokens -= 1.0;
        }

        // Gate 2: shared capacity. CAS loop so a burst cannot overshoot
        // the bound between load and store.
        let mut cur = self.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= self.config.max_in_flight {
                obs_handles::rejected_busy().inc();
                return Admit::Busy {
                    retry_after_secs: 1,
                };
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        obs_handles::admitted().inc();
        obs_handles::queue_depth().add(1);
        Admit::Granted(InFlightGuard { gate: self })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_exhausts_and_throttles() {
        let gate = Admission::new(AdmissionConfig {
            max_in_flight: 16,
            quota_burst: 2.0,
            quota_per_sec: 0.0,
        });
        assert!(matches!(gate.admit("alice"), Admit::Granted(_)));
        assert!(matches!(gate.admit("alice"), Admit::Granted(_)));
        match gate.admit("alice") {
            Admit::Throttled { retry_after_secs } => assert!(retry_after_secs >= 1),
            _ => panic!("third request must throttle"),
        }
        // Quotas are per tenant: bob is unaffected by alice's burn.
        assert!(matches!(gate.admit("bob"), Admit::Granted(_)));
    }

    #[test]
    fn capacity_sheds_and_releases() {
        let gate = Admission::new(AdmissionConfig {
            max_in_flight: 1,
            quota_burst: 100.0,
            quota_per_sec: 0.0,
        });
        let g1 = match gate.admit("a") {
            Admit::Granted(g) => g,
            _ => panic!("first must pass"),
        };
        assert_eq!(gate.in_flight(), 1);
        assert!(matches!(gate.admit("b"), Admit::Busy { .. }));
        drop(g1);
        assert_eq!(gate.in_flight(), 0);
        assert!(matches!(gate.admit("b"), Admit::Granted(_)));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let gate = Admission::new(AdmissionConfig {
            max_in_flight: 0,
            quota_burst: 100.0,
            quota_per_sec: 0.0,
        });
        assert!(matches!(gate.admit("a"), Admit::Busy { .. }));
    }

    #[test]
    fn refill_restores_tokens() {
        let gate = Admission::new(AdmissionConfig {
            max_in_flight: 16,
            quota_burst: 1.0,
            quota_per_sec: 1000.0,
        });
        assert!(matches!(gate.admit("t"), Admit::Granted(_)));
        // At 1000 tokens/sec the bucket is full again almost instantly.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(matches!(gate.admit("t"), Admit::Granted(_)));
    }
}
