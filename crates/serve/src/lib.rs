//! `ariadne-serve`: the long-lived query service.
//!
//! The batch CLI pays graph load, spool open, and query compilation on
//! every invocation — fine for one-shot experiments, wrong for the
//! interactive debugging loop the paper targets (§7: an investigator
//! iterates dozens of lineage queries against one captured run). This
//! crate keeps those expensive artifacts resident in a daemon:
//!
//! * a [`QueryService`] owns an opened [`ProvStore`] + [`Csr`] graph,
//!   a fingerprint-keyed table of compiled PQL programs, a
//!   byte-budgeted LRU [`ReplayCache`] of
//!   materialized replay results, and an [`Admission`] gate;
//! * [`serve`] mounts it on the shared HTTP core from `ariadne-obs`
//!   (`GET /query`), so the query API and the observability plane
//!   (`/metrics`, `/trace`, `/report`, `/healthz`) run on one listener;
//! * results are paginated with opaque [`Cursor`]
//!   tokens that are bit-stable across requests, workers, and thread
//!   counts — layered replay is deterministic and the service flattens
//!   results in a fixed order, so a row offset is a durable address.
//!
//! [`QueryService::execute`] is the transport-independent entry point;
//! the HTTP handler in [`api`] is a thin JSON shim over it, and tests
//! drive it directly.

pub mod admission;
pub mod api;
pub mod cache;
pub mod cursor;

pub use admission::{Admission, AdmissionConfig, Admit};
pub use cache::{CacheKey, CachedResult, ReplayCache, ReplaySummary};
pub use cursor::{fnv1a64, Cursor, CursorError};

use ariadne::{
    column_masks, compile, run_layered_range, CompiledQuery, LayeredConfig, ReadPolicy,
};
use ariadne_graph::Csr;
use ariadne_pql::{Params, Tuple, Value};
use ariadne_provenance::{EpochStats, ProvStore};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

/// Cached handles for service-level metrics.
mod obs_handles {
    use ariadne_obs::metrics::Counter;
    use std::sync::OnceLock;

    macro_rules! serve_counter {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().counter($name, $help, false))
            }
        };
    }

    serve_counter!(
        queries,
        "serve_queries_total",
        "query pages served (cache hits included)"
    );
    serve_counter!(
        rows,
        "serve_rows_returned_total",
        "result rows returned across all pages"
    );
    serve_counter!(
        replay_bytes,
        "serve_replay_bytes_total",
        "encoded store bytes decoded by service-initiated replays (cache hits add zero)"
    );
}

/// Service knobs; the CLI `serve` subcommand maps flags onto this.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads per layered replay.
    pub threads: usize,
    /// Byte budget for the materialized-result LRU cache.
    pub cache_budget_bytes: usize,
    /// Page size when the client sends no `limit`.
    pub default_limit: usize,
    /// Hard ceiling on any requested `limit`.
    pub max_limit: usize,
    /// How replays treat damaged store data. Part of the cache key: a
    /// degraded replay never satisfies a strict request.
    pub read_policy: ReadPolicy,
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 1,
            cache_budget_bytes: 64 << 20,
            default_limit: 256,
            max_limit: 4096,
            read_policy: ReadPolicy::Strict,
            admission: AdmissionConfig::default(),
        }
    }
}

/// One query request, transport-independent. The HTTP layer parses a
/// `GET /query` into this; tests construct it directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryRequest<'a> {
    /// PQL source. Optional on continuation pages: a cursor alone
    /// resumes against the daemon's compiled-program table.
    pub pql: Option<&'a str>,
    /// `$name` parameter bindings as raw strings: `vN` parses as a
    /// vertex id, integers as `Int`, floats as `Float`, anything else
    /// as `Str`. Part of the query's fingerprint: the same source with
    /// different bindings is a different result sequence.
    pub params: &'a [(&'a str, &'a str)],
    /// Opaque continuation token from a previous page.
    pub cursor: Option<&'a str>,
    /// Page size; clamped to the service's `max_limit`.
    pub limit: Option<usize>,
    /// Requested inclusive layer range; clamped to the store's extent.
    /// Ignored on continuation pages (the cursor pins the range).
    pub layers: Option<(u32, u32)>,
    /// Quota identity (the `X-Ariadne-Tenant` header over HTTP).
    pub tenant: &'a str,
}

/// Why a request was refused. [`ServeError::status`] maps each variant
/// to its HTTP status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Neither `pql` nor `cursor` was supplied.
    MissingQuery,
    /// The cursor token failed to decode.
    Cursor(CursorError),
    /// The cursor was minted for a different query than the supplied
    /// PQL source.
    ForeignCursor,
    /// A cursor arrived without PQL and the daemon has no compiled
    /// program under its fingerprint (e.g. the daemon restarted).
    /// Re-send the PQL with the cursor to resume.
    UnknownCursorQuery,
    /// The cursor was minted before a graph mutation: the result
    /// sequence its offset addresses was superseded. HTTP 410 — the
    /// client must re-issue the query from page one at the new epoch.
    StaleCursor {
        /// The epoch embedded in the token.
        cursor_epoch: u64,
        /// The store's current mutation epoch.
        store_epoch: u64,
    },
    /// The PQL source failed to compile.
    Compile(String),
    /// The query's direction cannot run layered (forward-only modes).
    Unsupported(String),
    /// The replay itself failed (store corruption under strict reads).
    Replay(String),
    /// Per-tenant quota exhausted: HTTP 429.
    Throttled {
        /// Seconds until a token will be available.
        retry_after_secs: u64,
    },
    /// In-flight capacity exhausted: HTTP 503.
    Busy {
        /// Suggested back-off.
        retry_after_secs: u64,
    },
}

impl ServeError {
    /// The HTTP status this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::MissingQuery
            | ServeError::Cursor(_)
            | ServeError::ForeignCursor
            | ServeError::UnknownCursorQuery
            | ServeError::Compile(_)
            | ServeError::Unsupported(_) => 400,
            ServeError::StaleCursor { .. } => 410,
            ServeError::Throttled { .. } => 429,
            ServeError::Replay(_) => 500,
            ServeError::Busy { .. } => 503,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::MissingQuery => write!(f, "request needs pql= or cursor="),
            ServeError::Cursor(e) => write!(f, "{e}"),
            ServeError::ForeignCursor => {
                write!(f, "cursor was minted for a different query")
            }
            ServeError::UnknownCursorQuery => write!(
                f,
                "cursor's query is not resident; re-send pql= alongside the cursor"
            ),
            ServeError::StaleCursor {
                cursor_epoch,
                store_epoch,
            } => write!(
                f,
                "cursor was minted at mutation epoch {cursor_epoch} but the store is at epoch \
                 {store_epoch}; re-issue the query from the first page"
            ),
            ServeError::Compile(e) => write!(f, "compile error: {e}"),
            ServeError::Unsupported(e) => write!(f, "{e}"),
            ServeError::Replay(e) => write!(f, "replay failed: {e}"),
            ServeError::Throttled { retry_after_secs } => {
                write!(f, "tenant quota exhausted; retry after {retry_after_secs}s")
            }
            ServeError::Busy { retry_after_secs } => {
                write!(f, "service at capacity; retry after {retry_after_secs}s")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One page of results. Rows are shared with the cache (no clone);
/// [`QueryPage::rows`] yields the page's slice.
#[derive(Clone, Debug)]
pub struct QueryPage {
    /// Fingerprint of the compiled source (cursors embed this).
    pub fingerprint: u64,
    /// Effective (clamped) inclusive layer range the result covers.
    pub layer_range: (u32, u32),
    /// Rows in the whole result sequence.
    pub total_rows: usize,
    /// This page's starting row.
    pub offset: usize,
    /// Token for the next page, `None` on the last.
    pub next_cursor: Option<String>,
    /// Whether the sequence came from the replay cache (this request
    /// read zero store bytes).
    pub cache_hit: bool,
    /// What the replay that materialized the sequence cost.
    pub replay: ReplaySummary,
    result: Arc<CachedResult>,
    page_len: usize,
}

impl QueryPage {
    /// The rows on this page: `(predicate, tuple)` in the stable
    /// pagination order.
    pub fn rows(&self) -> &[(String, Tuple)] {
        &self.result.rows[self.offset..self.offset + self.page_len]
    }
}

/// The resident query service: one opened store, one graph, shared
/// compiled programs, replay cache, and admission gate.
pub struct QueryService {
    graph: Csr,
    /// RwLock, not Mutex: queries are concurrent readers within one
    /// mutation epoch; [`QueryService::append_epoch`] is the only
    /// writer and runs at a barrier between query batches.
    store: RwLock<ProvStore>,
    config: ServeConfig,
    compiled: Mutex<HashMap<u64, Arc<CompiledQuery>>>,
    cache: Mutex<ReplayCache>,
    admission: Admission,
}

impl QueryService {
    /// A service over an opened store and its graph.
    pub fn new(graph: Csr, store: ProvStore, config: ServeConfig) -> QueryService {
        let cache = ReplayCache::new(config.cache_budget_bytes);
        let admission = Admission::new(config.admission);
        QueryService {
            graph,
            store: RwLock::new(store),
            config,
            compiled: Mutex::new(HashMap::new()),
            cache: Mutex::new(cache),
            admission,
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Read-access to the store being served (for reporting).
    pub fn with_store<R>(&self, f: impl FnOnce(&ProvStore) -> R) -> R {
        f(&self.store.read().unwrap())
    }

    /// The store's current mutation epoch. Tokens minted before the
    /// current epoch are refused with a 410.
    pub fn store_epoch(&self) -> u64 {
        self.store.read().unwrap().mutation_epoch()
    }

    /// Append a post-mutation capture to the served store as a delta
    /// epoch and invalidate every cursor and cached result minted
    /// before it. In-flight queries finish against the old epoch (the
    /// write lock waits for their read locks); everything after sees
    /// the new epoch only.
    pub fn append_epoch(&self, next: &ProvStore) -> Result<EpochStats, ServeError> {
        let stats = self
            .store
            .write()
            .unwrap()
            .append_epoch(next)
            .map_err(|e| ServeError::Replay(e.to_string()))?;
        // Stale keys are already unreachable (the epoch is in the key);
        // clearing frees their bytes now rather than under LRU pressure.
        self.cache.lock().unwrap().clear();
        Ok(stats)
    }

    /// Execute one request end to end: admission, cursor resolution,
    /// compile (cached), replay (cached), pagination.
    pub fn execute(&self, req: &QueryRequest<'_>) -> Result<QueryPage, ServeError> {
        let _guard = match self.admission.admit(req.tenant) {
            Admit::Granted(g) => g,
            Admit::Throttled { retry_after_secs } => {
                return Err(ServeError::Throttled { retry_after_secs })
            }
            Admit::Busy { retry_after_secs } => {
                return Err(ServeError::Busy { retry_after_secs })
            }
        };

        // One read lock for the whole request: every decision below
        // (epoch check, clamp, replay) sees one consistent store state.
        let store = self.store.read().unwrap();
        let epoch = store.mutation_epoch();

        // Resolve the cursor first: it pins fingerprint, range, offset,
        // and the mutation epoch it was minted at. A pre-mutation token
        // addresses a superseded sequence — refuse it (410), never
        // serve rows from the old epoch at its offsets.
        let cursor = match req.cursor {
            Some(token) => {
                let c = Cursor::decode(token).map_err(ServeError::Cursor)?;
                if c.epoch != epoch {
                    return Err(ServeError::StaleCursor {
                        cursor_epoch: c.epoch,
                        store_epoch: epoch,
                    });
                }
                Some(c)
            }
            None => None,
        };

        // Resolve the compiled program. PQL source wins as identity; a
        // cursor must agree with it when both are present.
        let (fingerprint, query) = match (req.pql, &cursor) {
            (Some(src), c) => {
                let fp = query_fingerprint(src, req.params);
                if let Some(c) = c {
                    if c.fingerprint != fp {
                        return Err(ServeError::ForeignCursor);
                    }
                }
                (fp, self.compiled_for(fp, src, req.params)?)
            }
            (None, Some(c)) => {
                let resident = self.compiled.lock().unwrap().get(&c.fingerprint).cloned();
                match resident {
                    Some(q) => (c.fingerprint, q),
                    None => return Err(ServeError::UnknownCursorQuery),
                }
            }
            (None, None) => return Err(ServeError::MissingQuery),
        };

        // The effective layer range is part of the result's identity;
        // clamp before keying the cache so `0..=MAX` and the store's
        // true extent share an entry.
        let requested = match &cursor {
            Some(c) => Some((c.layer_lo, c.layer_hi)),
            None => req.layers,
        };
        let max_step = store.max_superstep();
        let effective = match (requested, max_step) {
            (_, None) => (0, 0),
            (None, Some(max)) => (0, max),
            (Some((lo, hi)), Some(max)) => (lo, hi.min(max)),
        };

        let layered = LayeredConfig {
            threads: self.config.threads,
            read_policy: self.config.read_policy,
            ..LayeredConfig::default()
        };
        let key = CacheKey {
            fingerprint,
            layer_range: effective,
            mask_sig: mask_signature(&query, &layered),
            read_policy: match self.config.read_policy {
                ReadPolicy::Strict => 0,
                ReadPolicy::Degraded => 1,
            },
            epoch,
        };

        let cached = self.cache.lock().unwrap().get(&key);
        let (result, cache_hit) = match cached {
            Some(r) => (r, true),
            None => {
                let run = run_layered_range(
                    &self.graph,
                    &store,
                    &query,
                    &layered,
                    requested,
                )
                .map_err(|e| ServeError::Replay(e.to_string()))?;
                debug_assert_eq!(
                    run.layer_range,
                    if run.layers == 0 { run.layer_range } else { effective },
                    "service clamp must agree with the replay's"
                );
                obs_handles::replay_bytes().add(run.bytes_read as u64);
                let mut rows = Vec::new();
                for (pred, _) in run.query_results.iter() {
                    let pred = pred.to_string();
                    for tuple in run.query_results.sorted(&pred) {
                        rows.push((pred.clone(), tuple));
                    }
                }
                let result = Arc::new(CachedResult::new(
                    rows,
                    ReplaySummary {
                        layers: run.layers,
                        bytes_read: run.bytes_read,
                        segments_read: run.segments_read,
                        segments_skipped: run.segments_skipped,
                    },
                ));
                self.cache
                    .lock()
                    .unwrap()
                    .insert(key, Arc::clone(&result));
                (result, false)
            }
        };

        let total = result.rows.len();
        let offset = (cursor.map_or(0, |c| c.offset) as usize).min(total);
        let limit = req
            .limit
            .unwrap_or(self.config.default_limit)
            .clamp(1, self.config.max_limit);
        let page_len = limit.min(total - offset);
        let next_cursor = if offset + page_len < total {
            Some(
                Cursor {
                    fingerprint,
                    layer_lo: effective.0,
                    layer_hi: effective.1,
                    offset: (offset + page_len) as u64,
                    epoch,
                }
                .encode(),
            )
        } else {
            None
        };

        obs_handles::queries().inc();
        obs_handles::rows().add(page_len as u64);
        Ok(QueryPage {
            fingerprint,
            layer_range: effective,
            total_rows: total,
            offset,
            next_cursor,
            cache_hit,
            replay: result.replay,
            result,
            page_len,
        })
    }

    /// Compile `src` with `params` (or return the resident program for
    /// `fp`).
    fn compiled_for(
        &self,
        fp: u64,
        src: &str,
        params: &[(&str, &str)],
    ) -> Result<Arc<CompiledQuery>, ServeError> {
        if let Some(q) = self.compiled.lock().unwrap().get(&fp) {
            return Ok(Arc::clone(q));
        }
        let mut p = Params::new();
        for (k, v) in params {
            p = p.with(k, parse_param_value(v));
        }
        let q = compile(src, p).map_err(|e| ServeError::Compile(e.to_string()))?;
        if !q.direction().supports_layered() {
            return Err(ServeError::Unsupported(format!(
                "query direction {:?} does not support layered replay",
                q.direction()
            )));
        }
        let q = Arc::new(q);
        self.compiled
            .lock()
            .unwrap()
            .insert(fp, Arc::clone(&q));
        Ok(q)
    }
}

/// Mount `service` on the shared HTTP core at `addr`: `GET /query` plus
/// the whole observability surface (`/metrics`, `/trace`, `/report`,
/// `/healthz`) on one listener.
pub fn serve(
    service: Arc<QueryService>,
    addr: &str,
) -> std::io::Result<ariadne_obs::HttpServer> {
    ariadne_obs::HttpServer::bind_with(addr, api::handler(service))
}

/// The stable identity of `(source, parameter bindings)`: what cursors
/// embed and the compiled-program table keys on. Bindings are sorted so
/// `a=1&b=2` and `b=2&a=1` are the same query.
pub fn query_fingerprint(src: &str, params: &[(&str, &str)]) -> u64 {
    let mut canon = String::from(src);
    let mut sorted: Vec<_> = params.to_vec();
    sorted.sort();
    for (k, v) in sorted {
        canon.push('\0');
        canon.push_str(k);
        canon.push('=');
        canon.push_str(v);
    }
    fnv1a64(canon.as_bytes())
}

/// Parse a raw parameter string with the CLI's conventions: `vN` is a
/// vertex id, integers are `Int`, floats are `Float`, everything else
/// is a string.
fn parse_param_value(s: &str) -> Value {
    if let Some(id) = s.strip_prefix('v') {
        if let Ok(n) = id.parse::<u64>() {
            return Value::Id(n);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        return Value::Int(n);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    Value::str(s)
}

/// Stable signature of the replay's column masks + prune/project flags:
/// anything that changes which stored columns are decoded changes the
/// cached result's intermediate stats, so it distinguishes cache keys.
fn mask_signature(query: &CompiledQuery, config: &LayeredConfig) -> u64 {
    let mut canon = format!("prune={};project={};", config.prune, config.project);
    if config.project {
        for (pred, mask) in column_masks(query.query()) {
            canon.push_str(&pred);
            canon.push(':');
            for keep in mask {
                canon.push(if keep { '1' } else { '0' });
            }
            canon.push(';');
        }
    }
    fnv1a64(canon.as_bytes())
}

// The service is shared by HTTP workers: one Arc, many threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne::StoreConfig;
    use ariadne_graph::generators::regular::path;
    use ariadne_pql::Value;

    /// A store with `layers` layers of one `superstep(id, s)` tuple each.
    fn fixture(layers: u32) -> (Csr, ProvStore) {
        let g = path(3);
        let mut store = ProvStore::new(StoreConfig::in_memory());
        for s in 0..layers {
            store
                .ingest(s, "superstep", vec![vec![Value::Id(1), Value::Int(s as i64)]])
                .unwrap();
        }
        (g, store)
    }

    const PQL: &str = "active(x, i) :- superstep(x, i).";

    fn service(layers: u32, config: ServeConfig) -> QueryService {
        let (g, store) = fixture(layers);
        QueryService::new(g, store, config)
    }

    #[test]
    fn paginates_to_the_unpaged_sequence() {
        let svc = service(6, ServeConfig::default());
        let full = svc
            .execute(&QueryRequest { pql: Some(PQL), ..Default::default() })
            .unwrap();
        assert_eq!(full.total_rows, 6);
        assert!(full.next_cursor.is_none());

        let mut paged = Vec::new();
        let mut cursor: Option<String> = None;
        loop {
            let page = svc
                .execute(&QueryRequest {
                    pql: Some(PQL),
                    cursor: cursor.as_deref(),
                    limit: Some(2),
                    ..Default::default()
                })
                .unwrap();
            assert!(page.rows().len() <= 2);
            paged.extend_from_slice(page.rows());
            match page.next_cursor {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(paged, full.rows(), "paged concat equals the un-paged run");
    }

    #[test]
    fn second_query_hits_the_cache_and_reads_nothing() {
        let svc = service(4, ServeConfig::default());
        let req = QueryRequest { pql: Some(PQL), ..Default::default() };
        let cold = svc.execute(&req).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.replay.bytes_read > 0);

        let warm = svc.execute(&req).unwrap();
        assert!(warm.cache_hit);
        // The summary reports the original replay's cost; the *hit*
        // itself decoded nothing — rows are the same Arc.
        assert_eq!(warm.replay.bytes_read, cold.replay.bytes_read);
        assert_eq!(warm.rows(), cold.rows());
    }

    #[test]
    fn cursor_continues_without_resending_pql() {
        let svc = service(5, ServeConfig::default());
        let first = svc
            .execute(&QueryRequest {
                pql: Some(PQL),
                limit: Some(3),
                ..Default::default()
            })
            .unwrap();
        let token = first.next_cursor.expect("more pages");
        let second = svc
            .execute(&QueryRequest {
                cursor: Some(&token),
                limit: Some(3),
                ..Default::default()
            })
            .unwrap();
        assert!(second.cache_hit, "continuation rides the cache");
        assert_eq!(second.offset, 3);
        assert_eq!(second.rows().len(), 2);
        assert!(second.next_cursor.is_none());
    }

    #[test]
    fn cursor_errors_are_typed() {
        let svc = service(3, ServeConfig::default());
        let err = svc
            .execute(&QueryRequest { cursor: Some("zz"), ..Default::default() })
            .unwrap_err();
        assert_eq!(err, ServeError::Cursor(CursorError::Malformed));
        assert_eq!(err.status(), 400);

        // A valid token minted for a different query is foreign.
        let other = Cursor {
            fingerprint: fnv1a64(b"other(x) :- superstep(x, _)."),
            layer_lo: 0,
            layer_hi: 2,
            offset: 1,
            epoch: 0,
        }
        .encode();
        let err = svc
            .execute(&QueryRequest {
                pql: Some(PQL),
                cursor: Some(&other),
                ..Default::default()
            })
            .unwrap_err();
        assert_eq!(err, ServeError::ForeignCursor);

        // Alone against a fresh daemon it is unknown (restart story).
        let err = svc
            .execute(&QueryRequest { cursor: Some(&other), ..Default::default() })
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownCursorQuery);

        assert_eq!(
            svc.execute(&QueryRequest::default()).unwrap_err(),
            ServeError::MissingQuery
        );
    }

    #[test]
    fn mutation_invalidates_cursors_and_cache() {
        let svc = service(4, ServeConfig::default());
        let first = svc
            .execute(&QueryRequest {
                pql: Some(PQL),
                limit: Some(2),
                ..Default::default()
            })
            .unwrap();
        let pre_mutation_rows: Vec<_> = first.rows().to_vec();
        let token = first.next_cursor.expect("more pages");

        // A post-mutation capture: same predicate, different content.
        let mut next = ProvStore::new(StoreConfig::in_memory());
        for s in 0..4u32 {
            next.ingest(
                s,
                "superstep",
                vec![vec![Value::Id(2), Value::Int(i64::from(s) * 10)]],
            )
            .unwrap();
        }
        let stats = svc.append_epoch(&next).expect("epoch append");
        assert_eq!(stats.epoch, 1);
        assert_eq!(svc.store_epoch(), 1);

        // The old cursor is a typed 410, with or without the PQL.
        for req in [
            QueryRequest { cursor: Some(&token), ..Default::default() },
            QueryRequest {
                pql: Some(PQL),
                cursor: Some(&token),
                ..Default::default()
            },
        ] {
            let err = svc.execute(&req).unwrap_err();
            assert_eq!(
                err,
                ServeError::StaleCursor { cursor_epoch: 0, store_epoch: 1 }
            );
            assert_eq!(err.status(), 410);
        }

        // A fresh query sees only the new epoch: no stale rows, no
        // stale cache entry (the replay must re-read the store).
        let fresh = svc
            .execute(&QueryRequest { pql: Some(PQL), ..Default::default() })
            .unwrap();
        assert!(!fresh.cache_hit, "pre-mutation cache must not answer");
        assert!(fresh.replay.bytes_read > 0);
        for row in fresh.rows() {
            assert!(
                !pre_mutation_rows.contains(row),
                "stale pre-mutation row {row:?} served after the epoch bump"
            );
        }
        // And its continuation tokens carry the new epoch.
        let paged = svc
            .execute(&QueryRequest {
                pql: Some(PQL),
                limit: Some(2),
                ..Default::default()
            })
            .unwrap();
        let token = paged.next_cursor.expect("more pages");
        assert_eq!(Cursor::decode(&token).unwrap().epoch, 1);
        svc.execute(&QueryRequest { cursor: Some(&token), ..Default::default() })
            .expect("current-epoch cursor resumes fine");
    }

    #[test]
    fn layer_ranges_are_distinct_results() {
        let svc = service(6, ServeConfig::default());
        let full = svc
            .execute(&QueryRequest { pql: Some(PQL), ..Default::default() })
            .unwrap();
        let slice = svc
            .execute(&QueryRequest {
                pql: Some(PQL),
                layers: Some((1, 3)),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(full.total_rows, 6);
        assert_eq!(slice.total_rows, 3);
        assert_eq!(slice.layer_range, (1, 3));
        assert!(!slice.cache_hit, "different range, different entry");
        // Clamped overshoot shares the full-range entry.
        let clamped = svc
            .execute(&QueryRequest {
                pql: Some(PQL),
                layers: Some((0, 999)),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(clamped.layer_range, (0, 5));
        assert!(clamped.cache_hit, "0..=999 clamps onto the full entry");
    }

    #[test]
    fn quota_and_capacity_map_to_429_and_503() {
        let svc = service(
            3,
            ServeConfig {
                admission: AdmissionConfig {
                    max_in_flight: 4,
                    quota_burst: 1.0,
                    quota_per_sec: 0.0,
                },
                ..ServeConfig::default()
            },
        );
        let req = QueryRequest { pql: Some(PQL), tenant: "t1", ..Default::default() };
        svc.execute(&req).unwrap();
        let err = svc.execute(&req).unwrap_err();
        assert!(matches!(err, ServeError::Throttled { .. }));
        assert_eq!(err.status(), 429);

        let closed = service(
            3,
            ServeConfig {
                admission: AdmissionConfig {
                    max_in_flight: 0,
                    quota_burst: 8.0,
                    quota_per_sec: 0.0,
                },
                ..ServeConfig::default()
            },
        );
        let err = closed
            .execute(&QueryRequest { pql: Some(PQL), ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, ServeError::Busy { .. }));
        assert_eq!(err.status(), 503);
    }

    #[test]
    fn compile_errors_are_400() {
        let svc = service(2, ServeConfig::default());
        let err = svc
            .execute(&QueryRequest { pql: Some("not pql at all"), ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, ServeError::Compile(_)));
        assert_eq!(err.status(), 400);
    }
}
