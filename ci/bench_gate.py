#!/usr/bin/env python3
"""Bench regression gate: compare the deterministic byte/count columns
of two committed BENCH files and fail on unexplained drift.

    python3 ci/bench_gate.py CURRENT.json BASELINE.json [--threshold 0.05]

Only columns flagged deterministic in docs/OBSERVABILITY.md are gated:
they are functions of the graph, analytic, and query alone, so with
matching configs any drift is a real behavior change, not noise.
Wall-clock columns and latency quantiles are never gated.

Column polarity:
  - higher-is-worse (bytes stored / bytes read): only an increase
    beyond the threshold fails;
  - lower-is-worse (skip counters — pruning effectiveness): only a
    decrease beyond the threshold fails;
  - exact workload descriptors (tuple/segment/message counts): drift in
    either direction beyond the threshold fails.

If the two files were generated with different graph configs the
comparison is meaningless; the gate says so and exits 0 (an explained
difference). A baseline with an older schema is compared on whatever
sections both files share.
"""

import argparse
import json
import sys

# Deterministic columns, per section, by polarity.
HIGHER_IS_WORSE = {
    "runs": ["message_bytes"],
    "layered": ["bytes_read"],
    "segments": ["store_bytes", "replay_bytes_read"],
    "spool": ["spool_bytes", "replay_bytes_read"],
    "serve": ["replay_bytes_read"],
    # An epoch append growing means the layer diff got worse at folding
    # the same mutation batch into the same store.
    "mutations": ["bytes_appended"],
}
LOWER_IS_WORSE = {
    "runs": [],
    "layered": ["segments_skipped", "bytes_skipped"],
    "segments": ["replay_cols_skipped", "replay_col_bytes_skipped"],
    "spool": [],
    "serve": ["cache_hits"],
    # Carried pairs shrinking means the diff stopped recognizing
    # unchanged layers (it rewrote content it used to skip).
    "mutations": ["carried"],
}
EXACT = {
    "runs": ["supersteps", "messages", "messages_delivered"],
    "layered": [
        "layers",
        "flush_rounds",
        "shipped_tuples",
        "injected_tuples",
        "evaluated_vertices",
        "segments_read",
    ],
    "segments": ["store_tuples", "segments"],
    "spool": [],
    "serve": ["queries", "rows"],
    # The frontier and diff classification are deterministic functions
    # of (graph, batch, analytic): any drift is a semantics change.
    "mutations": [
        "mode",
        "reset_vertices",
        "activated_vertices",
        "inc_supersteps",
        "cold_supersteps",
        "appended",
        "replaced",
        "tombstoned",
        "cold_bytes",
    ],
}

# What identifies a comparable cell within each section.
CELL_KEY = {
    "runs": ("analytic", "plane", "mode", "threads"),
    "layered": ("threads", "prune"),
    "segments": ("analytic", "format"),
    "spool": ("format", "backend"),
    "serve": ("phase",),
    "mutations": ("analytic", "batch"),
}


def cells(doc, section):
    """The section's rows keyed by CELL_KEY, or {} if absent."""
    if section == "runs":
        rows = doc.get("runs", [])
    elif section == "layered":
        rows = doc.get("layered", {}).get("runs", [])
    else:
        rows = doc.get(section, {}).get("cases", [])
    return {tuple(r[k] for k in CELL_KEY[section]): r for r in rows}


def graph_config(doc):
    g = doc.get("graph", {})
    return tuple(g.get(k) for k in ("generator", "scale", "edge_factor", "vertices", "edges"))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.05)
    args = ap.parse_args()

    cur = json.load(open(args.current))
    base = json.load(open(args.baseline))

    if graph_config(cur) != graph_config(base):
        print(
            f"bench-gate: graph configs differ "
            f"({graph_config(cur)} vs {graph_config(base)}); "
            f"files are not comparable — skipping the gate"
        )
        return 0

    failures = []
    compared = 0
    for section in CELL_KEY:
        cur_cells = cells(cur, section)
        base_cells = cells(base, section)
        for key in sorted(set(cur_cells) & set(base_cells), key=str):
            c, b = cur_cells[key], base_cells[key]
            checks = (
                [(col, "higher") for col in HIGHER_IS_WORSE[section]]
                + [(col, "lower") for col in LOWER_IS_WORSE[section]]
                + [(col, "exact") for col in EXACT[section]]
            )
            for col, polarity in checks:
                if col not in c or col not in b:
                    continue
                compared += 1
                old, new = b[col], c[col]
                if old == new:
                    continue
                if isinstance(old, str) or isinstance(new, str):
                    # Categorical column (e.g. mutations mode): any
                    # change is a semantics change, no threshold.
                    failures.append(
                        f"  {section}{list(key)}.{col}: {old!r} -> {new!r} "
                        f"(categorical, exact-gated)"
                    )
                    continue
                rel = (new - old) / old if old else float("inf")
                bad = (
                    (polarity == "higher" and rel > args.threshold)
                    or (polarity == "lower" and rel < -args.threshold)
                    or (polarity == "exact" and abs(rel) > args.threshold)
                )
                if bad:
                    failures.append(
                        f"  {section}{list(key)}.{col}: {old} -> {new} "
                        f"({rel:+.1%}, {polarity}-gated)"
                    )

    if compared == 0:
        print("bench-gate: no overlapping deterministic columns; nothing gated")
        return 0
    if failures:
        print(
            f"bench-gate: {len(failures)} deterministic column(s) regressed "
            f"beyond {args.threshold:.0%} vs {args.baseline}:"
        )
        print("\n".join(failures))
        print(
            "If the change is intentional, explain it in the PR and "
            "regenerate the committed BENCH file."
        )
        return 1
    print(
        f"bench-gate: ok — {compared} deterministic column comparisons vs "
        f"{args.baseline}, none beyond {args.threshold:.0%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
